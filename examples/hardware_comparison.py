#!/usr/bin/env python3
"""Hardware comparison: which mapping capability wins on which device?

This example reproduces the qualitative message of the paper's Table 1a in
one run: the same QFT circuit is mapped onto the three hardware presets of
Table 1c (shuttling-optimised, gate-optimised, mixed) with all three compiler
settings, and the per-hardware winner is reported.  On shuttling-optimised
hardware the shuttling capability should win, on gate-optimised hardware the
SWAP insertion should win, and on mixed hardware the hybrid mapper should be
at least as good as both.

Run with::

    python examples/hardware_comparison.py [--scale 0.15] [--circuit qft]
"""

from __future__ import annotations

import argparse

from repro.evaluation import run_mode_comparison
from repro.evaluation.table import DEFAULT_ALPHA_GRID
from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.hardware.presets import PRESET_NAMES
from repro.service import ARCHITECTURE_CACHE, ArchitectureSpec
from repro.workloads import scaled_register_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="qft",
                        choices=["graph", "qft", "qpe", "bn", "call", "gray"])
    parser.add_argument("--scale", type=float, default=0.15,
                        help="fraction of the paper's register size to run")
    args = parser.parse_args()

    size = scaled_register_size(args.circuit, args.scale)
    circuit = decompose_mcx_to_mcz(get_benchmark(args.circuit, num_qubits=size))

    print(f"circuit: {args.circuit} with {size} qubits "
          f"({circuit.num_entangling_gates()} entangling gates)")
    spec = ArchitectureSpec.scaled(PRESET_NAMES[0], args.scale,
                                   circuit_names=(args.circuit,))
    print(f"device:  {spec.lattice_rows}x{spec.lattice_rows} lattice, "
          f"{spec.num_atoms} atoms\n")

    for hardware in PRESET_NAMES:
        architecture, _ = ARCHITECTURE_CACHE.get(
            ArchitectureSpec.scaled(hardware, args.scale,
                                    circuit_names=(args.circuit,)))
        results = run_mode_comparison(circuit, architecture,
                                      alpha_grid=DEFAULT_ALPHA_GRID)
        print(f"=== hardware preset: {hardware} ===")
        for mode in ("shuttling_only", "gate_only", "hybrid"):
            metrics = results[mode]
            alpha = "" if metrics.alpha_ratio is None else f"  (alpha={metrics.alpha_ratio:g})"
            print(f"  {mode:<15} dCZ={metrics.delta_cz:5d}  dT={metrics.delta_t_us:9.1f} us"
                  f"  dF={metrics.delta_fidelity:8.4f}{alpha}")
        pure_winner = ("shuttling_only"
                       if results["shuttling_only"].delta_fidelity
                       <= results["gate_only"].delta_fidelity else "gate_only")
        print(f"  -> best pure strategy: {pure_winner}; "
              f"hybrid dF = {results['hybrid'].delta_fidelity:.4f}\n")


if __name__ == "__main__":
    main()
