#!/usr/bin/env python3
"""Quickstart: the persistent result store and the serving gateway.

Compilation in this reproduction is deterministic and bit-identical by
contract, so compiled results can be persisted and *served*: the
content-addressed ``repro.store`` keys every artifact on (circuit digest,
architecture key, config fingerprint, repro version), and the asyncio
``repro.server`` gateway in front of it serves store hits without
compiling, coalesces identical in-flight requests into one compile, and
runs misses on a bounded worker pool.

Part 1 uses the store directly through a ``BatchCompiler``: the second
batch over the same tasks is served entirely from disk.

Part 2 starts the TCP gateway in-process and submits three requests
through the synchronous client — the second, identical request is a store
hit with a byte-identical op-stream digest.

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import (
    ArchitectureSpec,
    BatchCompiler,
    CompilationTask,
    ResultStore,
)
from repro.server import ServingClient, ServingGateway
from repro.server.__main__ import _start_background_server

SPEC = ArchitectureSpec.scaled("mixed", scale=0.1)


def batch_with_store(store: ResultStore) -> None:
    tasks = [
        CompilationTask(f"{name}-{qubits}q", SPEC, circuit_name=name,
                        num_qubits=qubits)
        for name, qubits in (("graph", 20), ("qft", 12))
    ]

    print("Batch 1 (cold store):")
    first = BatchCompiler(max_workers=1, store=store).compile(tasks)
    for entry in first.results:
        print(f"  {entry.task.task_id:<10} compiled in {entry.wall_seconds:5.2f}s")

    print("Batch 2 (same tasks — served from the store):")
    second = BatchCompiler(max_workers=1, store=store).compile(tasks)
    for entry in second.results:
        source = "store" if entry.from_store else "compiled"
        print(f"  {entry.task.task_id:<10} {source:>8} in {entry.wall_seconds:5.2f}s")
    print(f"  -> store stats: {store.stats.as_dict()}")


def serve_over_tcp(store: ResultStore) -> None:
    # The same harness `python -m repro.server` uses: asyncio server on a
    # background thread, ephemeral port.  A thread pool keeps the example
    # light; production serving uses the default process pool.
    gateway = ServingGateway(store, pool="thread", max_workers=2)
    server_thread, port = _start_background_server(gateway, "127.0.0.1")
    print(f"\nServing gateway listening on 127.0.0.1:{port}")

    qft = CompilationTask("req-1", SPEC, circuit_name="qft", num_qubits=14)
    qft_again = CompilationTask("req-2", SPEC, circuit_name="qft", num_qubits=14)
    graph = CompilationTask("req-3", SPEC, circuit_name="graph", num_qubits=16)

    with ServingClient("127.0.0.1", port) as client:
        responses = [client.compile_task(task)
                     for task in (qft, qft_again, graph)]
        for response in responses:
            print(f"  {response.task_id}: source={response.source:<8} "
                  f"sha256={response.digest['sha256'][:16]}… "
                  f"({response.server_seconds * 1000:6.1f} ms)")
        assert responses[1].source == "store", "identical request must hit"
        assert responses[0].digest == responses[1].digest, \
            "served result must be byte-identical to the compiled one"
        print(f"  gateway stats: {client.stats()['gateway']}")
        client.shutdown()
    server_thread.join(timeout=10)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:
        store = ResultStore(store_dir)
        batch_with_store(store)
        serve_over_tcp(store)


if __name__ == "__main__":
    main()
