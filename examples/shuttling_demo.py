#!/usr/bin/env python3
"""Shuttling internals: AOD batches, ghost spots and the Figure-1 geometry.

This example works one level below the mapper and illustrates the hardware
model of Section 2.1 of the paper:

* the interaction and restriction neighbourhoods of a trap for
  ``r_int = r_restr = 2 d`` (the content of Figure 1a),
* a legal multi-atom AOD rearrangement in the spirit of Example 2 /
  Figure 1b — which moves can share a batch, where the ghost spots fall, and
  what the batch costs in time,
* how a shuttling-only mapping of a long-range circuit turns into native AOD
  instruction batches after scheduling.

Run with::

    python examples/shuttling_demo.py
"""

from __future__ import annotations

from repro import MapperConfig, QuantumCircuit, compile_circuit, preset
from repro.hardware import SiteConnectivity
from repro.scheduling import OperationKind
from repro.shuttling import (
    ghost_spot_positions,
    group_moves,
    moves_compatible,
    schedule_batch,
)


def print_neighbourhood(architecture, connectivity) -> None:
    lattice = architecture.lattice
    centre = lattice.site_at(lattice.rows // 2, lattice.cols // 2)
    interacting = set(connectivity.interaction_neighbours(centre))
    print(f"Figure 1a — interaction region of the centre trap "
          f"(r_int = {architecture.interaction_radius} d):")
    for row in range(lattice.rows):
        line = []
        for col in range(lattice.cols):
            site = lattice.site_at(row, col)
            if site == centre:
                line.append("Q")
            elif site in interacting:
                line.append("x")
            else:
                line.append(".")
        print("   " + " ".join(line))
    print(f"   {len(interacting)} traps can host a gate partner for the centre atom\n")


def demonstrate_aod_batch(architecture) -> None:
    lattice = architecture.lattice
    print("Example 2 — packing moves into one AOD batch:")
    # Three atoms move in parallel rows towards the right; a fourth crosses
    # against them and must go into its own batch.
    def make_move(atom, src_rc, dst_rc):
        source = lattice.site_at(*src_rc)
        destination = lattice.site_at(*dst_rc)
        from repro.shuttling import Move
        return Move(atom=atom, source=source, destination=destination,
                    source_position=lattice.position(source),
                    destination_position=lattice.position(destination))

    parallel = [make_move(0, (1, 0), (1, 4)), make_move(1, (2, 0), (2, 4)),
                make_move(2, (3, 1), (3, 5))]
    crossing = make_move(3, (4, 5), (4, 0))

    for move in parallel:
        assert moves_compatible(parallel[0], move) or move is parallel[0]
    assert not moves_compatible(parallel[0], crossing)

    batches = group_moves(parallel + [crossing])
    print(f"   {len(parallel) + 1} moves -> {len(batches)} AOD batches "
          f"(the crossing move cannot share rows/columns)")
    for index, batch in enumerate(batches):
        schedule = schedule_batch(batch, architecture)
        ghosts = ghost_spot_positions(batch)
        print(f"   batch {index}: {len(batch)} atoms, duration {schedule.duration:7.1f} us, "
              f"{len(ghosts)} ghost spots, instructions: "
              + " -> ".join(instr.kind for instr in schedule.instructions))
    print()


def demonstrate_mapped_shuttling(architecture, connectivity) -> None:
    print("Shuttling-only mapping of a long-range circuit:")
    circuit = QuantumCircuit(12, name="long-range")
    circuit.cz(0, 11)
    circuit.cz(1, 10)
    circuit.cz(2, 9)
    context = compile_circuit(circuit, architecture, MapperConfig.shuttling_only(),
                              connectivity=connectivity)
    result = context.result
    schedule = context.mapped_schedule
    shuttles = [op for op in schedule if op.kind == OperationKind.SHUTTLE]
    print(f"   {result.num_moves} moves emitted, scheduled as {len(shuttles)} AOD batches")
    print(f"   total circuit time {schedule.makespan:.1f} us, "
          f"no additional CZ gates ({result.num_swaps} SWAPs inserted)")
    for op in shuttles:
        print(f"   t = {op.start:8.1f} us  batch of {len(op.atoms)} atom(s), "
              f"duration {op.duration:7.1f} us")


def main() -> None:
    architecture = preset("shuttling", lattice_rows=9, num_atoms=40)
    connectivity = SiteConnectivity(architecture)
    print_neighbourhood(architecture, connectivity)
    demonstrate_aod_batch(architecture)
    demonstrate_mapped_shuttling(architecture, connectivity)


if __name__ == "__main__":
    main()
