#!/usr/bin/env python3
"""Quickstart: map one circuit with the hybrid mapper and inspect the result.

The example builds a small graph-state preparation circuit, maps it onto the
"mixed" neutral-atom hardware preset (Table 1c of the paper) with all three
compiler settings — shuttling-only, gate-only and the hybrid approach — and
prints the routing overheads and the fidelity decrease `delta_F` of each.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    HybridMapper,
    MapperConfig,
    evaluate,
    get_benchmark,
    preset,
)
from repro.hardware import SiteConnectivity


def main() -> None:
    # 1. Pick a hardware preset.  The presets mirror Table 1c of the paper;
    #    `lattice_rows` / `num_atoms` scale the device down so the example
    #    finishes in a couple of seconds.
    architecture = preset("mixed", lattice_rows=8, num_atoms=40)
    connectivity = SiteConnectivity(architecture)
    print(f"hardware: {architecture.name}, "
          f"{architecture.lattice.rows}x{architecture.lattice.cols} lattice, "
          f"{architecture.num_atoms} atoms, r_int = {architecture.interaction_radius} d")

    # 2. Pick a benchmark circuit (here: graph-state preparation on 30 qubits).
    circuit = get_benchmark("graph", num_qubits=30)
    print(f"circuit:  {circuit.name}, {circuit.num_qubits} qubits, "
          f"{circuit.num_entangling_gates()} entangling gates\n")

    # 3. Map it with the three compiler settings of the paper's evaluation.
    configs = {
        "shuttling-only (A)": MapperConfig.shuttling_only(),
        "gate-only      (B)": MapperConfig.gate_only(),
        "hybrid         (C)": MapperConfig.hybrid(alpha_ratio=1.0),
    }
    header = (f"{'setting':<20} {'SWAPs':>6} {'moves':>6} {'dCZ':>6} "
              f"{'dT [us]':>10} {'dF':>8} {'RT [s]':>7}")
    print(header)
    print("-" * len(header))
    for label, config in configs.items():
        mapper = HybridMapper(architecture, config, connectivity=connectivity)
        result = mapper.map(circuit)
        metrics = evaluate(circuit, result, architecture, connectivity=connectivity)
        print(f"{label:<20} {result.num_swaps:>6} {result.num_moves:>6} "
              f"{metrics.delta_cz:>6} {metrics.delta_t_us:>10.1f} "
              f"{metrics.delta_fidelity:>8.3f} {result.runtime_seconds:>7.2f}")

    print("\nInterpretation: shuttling adds no CZ gates but costs circuit time;")
    print("SWAP insertion is fast but adds error-prone CZ gates; the hybrid mapper")
    print("chooses per gate and matches (or beats) the better of the two.")


if __name__ == "__main__":
    main()
