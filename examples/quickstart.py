#!/usr/bin/env python3
"""Quickstart: the compilation pipeline and the batch service.

The canonical way to compile circuits in this reproduction is the pass-based
pipeline: ``compile_circuit`` runs decompose → initial layout → routing →
scheduling → evaluation over one shared ``CompilationContext`` and returns
it, carrying the mapped operation stream (``context.result``), the Table-1a
metrics (``context.metrics``) and per-pass timings.

Part 1 compiles one graph-state circuit with the three compiler settings of
the paper's evaluation — shuttling-only (A), gate-only (B) and hybrid (C) —
and prints the routing overheads and the fidelity decrease ``delta_F``.

Part 2 shows the service layer: a ``BatchCompiler`` fans independent
``CompilationTask``s out over worker processes, sharing the prebuilt
architecture artifacts through a keyed cache, and returns per-task metrics
plus failures in one structured ``BatchResult``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ArchitectureSpec,
    BatchCompiler,
    CompilationTask,
    MapperConfig,
    compile_circuit,
    get_benchmark,
    preset,
)
from repro.hardware import SiteConnectivity


def single_circuit_pipeline() -> None:
    # 1. Pick a hardware preset.  The presets mirror Table 1c of the paper;
    #    `lattice_rows` / `num_atoms` scale the device down so the example
    #    finishes in a couple of seconds.
    architecture = preset("mixed", lattice_rows=8, num_atoms=40)
    connectivity = SiteConnectivity(architecture)
    print(f"hardware: {architecture.name}, "
          f"{architecture.lattice.rows}x{architecture.lattice.cols} lattice, "
          f"{architecture.num_atoms} atoms, r_int = {architecture.interaction_radius} d")

    # 2. Pick a benchmark circuit (here: graph-state preparation on 30 qubits).
    circuit = get_benchmark("graph", num_qubits=30)
    print(f"circuit:  {circuit.name}, {circuit.num_qubits} qubits, "
          f"{circuit.num_entangling_gates()} entangling gates\n")

    # 3. Compile it with the three compiler settings of the paper's evaluation.
    #    Every consumer in the repository uses this same pipeline entry point.
    configs = {
        "shuttling-only (A)": MapperConfig.shuttling_only(),
        "gate-only      (B)": MapperConfig.gate_only(),
        "hybrid         (C)": MapperConfig.hybrid(alpha_ratio=1.0),
    }
    header = (f"{'setting':<20} {'SWAPs':>6} {'moves':>6} {'dCZ':>6} "
              f"{'dT [us]':>10} {'dF':>8} {'RT [s]':>7}")
    print(header)
    print("-" * len(header))
    for label, config in configs.items():
        context = compile_circuit(circuit, architecture, config,
                                  connectivity=connectivity)
        result, metrics = context.result, context.metrics
        print(f"{label:<20} {result.num_swaps:>6} {result.num_moves:>6} "
              f"{metrics.delta_cz:>6} {metrics.delta_t_us:>10.1f} "
              f"{metrics.delta_fidelity:>8.3f} {result.runtime_seconds:>7.2f}")

    print("\nInterpretation: shuttling adds no CZ gates but costs circuit time;")
    print("SWAP insertion is fast but adds error-prone CZ gates; the hybrid mapper")
    print("chooses per gate and matches (or beats) the better of the two.")


def batch_compilation() -> None:
    # The service workload: many independent circuits against a handful of
    # devices.  Tasks carry a hashable ArchitectureSpec instead of built
    # objects; the keyed cache builds each architecture (and its costly
    # SiteConnectivity) exactly once, and forked workers inherit it.
    spec = ArchitectureSpec.scaled("mixed", scale=0.1)
    tasks = [
        CompilationTask(f"{name}-{qubits}q", spec, circuit_name=name,
                        num_qubits=qubits, mode="hybrid", alpha=1.0)
        for name, qubits in (("graph", 20), ("qft", 12), ("qpe", 12),
                             ("gray", 10))
    ]
    batch = BatchCompiler(max_workers=2).compile(tasks)

    print("\nBatch compilation (2 workers):")
    for entry in batch.results:
        status = "ok" if entry.ok else f"FAILED: {entry.error}"
        extra = (f"dCZ={entry.metrics.delta_cz:4d} "
                 f"dF={entry.metrics.delta_fidelity:6.3f}" if entry.ok else "")
        print(f"  {entry.task.task_id:<12} [{status}] {extra}")
    summary = batch.summary()
    print(f"  -> {summary['num_succeeded']}/{summary['num_tasks']} tasks ok in "
          f"{summary['wall_seconds']:.2f}s "
          f"({summary['circuits_per_second']:.1f} circuits/s)")


def main() -> None:
    single_circuit_pipeline()
    batch_compilation()


if __name__ == "__main__":
    main()
