#!/usr/bin/env python3
"""Multi-qubit gate mapping: reversible-logic circuits with CCZ / CCCZ gates.

The paper's distinguishing feature over earlier neutral-atom mappers is
native support for gates on three or more qubits in *both* routing
capabilities: the gate-based router searches an explicit geometric position
(a set of mutually interacting traps) for each multi-qubit gate, and the
shuttling router gathers the participating atoms with move chains.

This example maps the ``call`` reversible benchmark (CCX/CCCX network,
decomposed to CCZ/CCCZ) and reports, per compiler setting, how the
multi-qubit gates were realised.  It also demonstrates importing a circuit
from OpenQASM.

Run with::

    python examples/multiqubit_reversible.py
"""

from __future__ import annotations

from repro import (
    MapperConfig,
    compile_circuit,
    decompose_mcx_to_mcz,
    preset,
)
from repro.circuit import qasm
from repro.circuit.library import call
from repro.hardware import SiteConnectivity


def main() -> None:
    architecture = preset("mixed", lattice_rows=8, num_atoms=40)
    connectivity = SiteConnectivity(architecture)

    # The `call` profile from Table 1b: 25 lines, 192 CCX + 56 CCCX gates
    # (scaled down to 16 lines here so the example runs in seconds).
    circuit = call(num_qubits=16, seed=7)
    print("original gate mix:", dict(circuit.count_by_arity()))

    # Round-trip through OpenQASM to show the interchange path.
    text = qasm.dumps(circuit)
    circuit = qasm.loads(text, name="call_16")
    native = decompose_mcx_to_mcz(circuit)
    print("native (CmZ) gate mix:", dict(native.count_by_arity()))
    print()

    for label, config in [
        ("shuttling-only", MapperConfig.shuttling_only()),
        ("gate-only", MapperConfig.gate_only()),
        ("hybrid", MapperConfig.hybrid(1.0)),
    ]:
        context = compile_circuit(native, architecture, config,
                                  connectivity=connectivity)
        result, metrics = context.result, context.metrics
        multiqubit_ops = [op for op in result.circuit_gate_ops()
                          if op.gate.num_qubits >= 3]
        print(f"{label:<15} swaps={result.num_swaps:4d}  moves={result.num_moves:4d}  "
              f"dF={metrics.delta_fidelity:7.3f}  "
              f"gate-routed={result.num_gate_routed:4d}  "
              f"shuttle-routed={result.num_shuttle_routed:4d}  "
              f"fallback-reroutes={result.num_fallback_reroutes}")
        # Every multi-qubit gate was executed at a mutually interacting position.
        for op in multiqubit_ops:
            assert connectivity.sites_mutually_interacting(op.sites)
    print("\nAll multi-qubit gates were executed at mutually interacting trap positions.")


if __name__ == "__main__":
    main()
