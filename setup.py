"""Setuptools shim so that editable installs work in offline environments.

All project metadata lives in ``pyproject.toml``; this file only exists
because the execution environment lacks the ``wheel`` package that PEP-517
editable installs require.
"""

from setuptools import setup

setup()
