"""Property-based tests for the AOD move compatibility and batching rules."""

from hypothesis import given, settings, strategies as st

from repro.hardware import SquareLattice
from repro.shuttling import Move, group_moves, moves_compatible, schedule_batch
from repro.hardware.presets import mixed


LATTICE = SquareLattice(8, 8, 3.0)


@st.composite
def random_moves(draw, max_moves=8):
    """Distinct atoms moving between distinct sites of an 8x8 lattice."""
    num_moves = draw(st.integers(1, max_moves))
    sources = draw(st.lists(st.integers(0, LATTICE.num_sites - 1), min_size=num_moves,
                            max_size=num_moves, unique=True))
    destinations = draw(st.lists(st.integers(0, LATTICE.num_sites - 1),
                                 min_size=num_moves, max_size=num_moves, unique=True))
    moves = []
    for atom, (source, destination) in enumerate(zip(sources, destinations)):
        if source == destination:
            destination = (destination + 1) % LATTICE.num_sites
            if destination in sources or destination in destinations:
                continue
        moves.append(Move(atom=atom, source=source, destination=destination,
                          source_position=LATTICE.position(source),
                          destination_position=LATTICE.position(destination)))
    if not moves:
        source, destination = 0, 1
        moves.append(Move(atom=0, source=source, destination=destination,
                          source_position=LATTICE.position(source),
                          destination_position=LATTICE.position(destination)))
    return moves


class TestCompatibilityProperties:
    @given(random_moves(max_moves=4))
    @settings(max_examples=100, deadline=None)
    def test_compatibility_is_symmetric(self, moves):
        for a in moves:
            for b in moves:
                if a is b:
                    continue
                assert moves_compatible(a, b) == moves_compatible(b, a)

    @given(random_moves())
    @settings(max_examples=100, deadline=None)
    def test_compatible_moves_preserve_ordering(self, moves):
        """If two moves are compatible, their x and y orderings never invert."""
        for a in moves:
            for b in moves:
                if a is b or not moves_compatible(a, b):
                    continue
                for axis in (0, 1):
                    start = a.source_position[axis] - b.source_position[axis]
                    end = a.destination_position[axis] - b.destination_position[axis]
                    assert not (start > 1e-9 and end < -1e-9)
                    assert not (start < -1e-9 and end > 1e-9)


class TestBatchingProperties:
    @given(random_moves())
    @settings(max_examples=80, deadline=None)
    def test_batches_partition_the_moves(self, moves):
        batches = group_moves(moves)
        flattened = [m for batch in batches for m in batch]
        assert sorted(m.atom for m in flattened) == sorted(m.atom for m in moves)

    @given(random_moves())
    @settings(max_examples=80, deadline=None)
    def test_every_batch_is_internally_compatible(self, moves):
        for batch in group_moves(moves):
            for i, a in enumerate(batch):
                for b in batch[i + 1:]:
                    assert moves_compatible(a, b)

    @given(random_moves())
    @settings(max_examples=60, deadline=None)
    def test_batch_duration_dominated_by_slowest_move(self, moves):
        architecture = mixed(lattice_rows=8, num_atoms=40)
        for batch in group_moves(moves):
            schedule = schedule_batch(batch, architecture)
            slowest = max(m.rectangular_distance for m in batch)
            minimum = (architecture.durations.aod_activation
                       + architecture.shuttle_move_duration(slowest)
                       + architecture.durations.aod_deactivation)
            assert schedule.duration >= minimum - 1e-9
