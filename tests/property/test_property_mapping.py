"""Property-based tests for the mapping state and the end-to-end mapper."""

from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice
from repro.mapping import HybridMapper, MapperConfig, MappingState
from repro.mapping.result import CircuitGateOp, ShuttleOp, SwapOp


ARCHITECTURE = NeutralAtomArchitecture(
    name="prop-mapping", lattice=SquareLattice(6, 6, 3.0), num_atoms=18,
    interaction_radius=2.0, restriction_radius=2.0)
CONNECTIVITY = SiteConnectivity(ARCHITECTURE)
NUM_QUBITS = 10


@st.composite
def random_entangling_circuit(draw, max_gates=15):
    circuit = QuantumCircuit(NUM_QUBITS, name="prop")
    num_gates = draw(st.integers(1, max_gates))
    for _ in range(num_gates):
        width = draw(st.sampled_from([2, 2, 2, 3]))
        qubits = draw(st.lists(st.integers(0, NUM_QUBITS - 1), min_size=width,
                               max_size=width, unique=True))
        circuit.cz(*qubits)
    return circuit


@st.composite
def state_operations(draw, max_operations=20):
    """A random interleaving of legal SWAPs and moves applied to a fresh state."""
    operations = draw(st.lists(st.tuples(st.sampled_from(["swap", "move"]),
                                         st.integers(0, 10_000)),
                               min_size=0, max_size=max_operations))
    return operations


class TestMappingStateInvariants:
    @given(state_operations())
    @settings(max_examples=80, deadline=None)
    def test_random_swap_move_sequences_keep_maps_consistent(self, operations):
        state = MappingState(ARCHITECTURE, NUM_QUBITS, connectivity=CONNECTIVITY)
        for kind, seed in operations:
            if kind == "swap":
                qubit = seed % NUM_QUBITS
                neighbours = state.vicinity_of_qubit(qubit)
                if not neighbours:
                    continue
                partner_site = neighbours[seed % len(neighbours)]
                partner_atom = state.atom_at_site(partner_site)
                state.apply_swap_with_atom(qubit, partner_atom)
            else:
                atom = seed % ARCHITECTURE.num_atoms
                free = sorted(state.free_sites())
                destination = free[seed % len(free)]
                if destination != state.site_of_atom(atom):
                    state.move_atom(atom, destination)
        state.consistency_check()
        # Each circuit qubit still resolves to exactly one occupied site.
        sites = [state.site_of_qubit(q) for q in range(NUM_QUBITS)]
        assert len(set(sites)) == NUM_QUBITS
        assert len(state.occupied_sites()) == ARCHITECTURE.num_atoms


class TestMapperInvariants:
    @given(random_entangling_circuit(),
           st.sampled_from(["gate_only", "shuttling_only", "hybrid"]))
    @settings(max_examples=25, deadline=None)
    def test_mapping_preserves_circuit_and_respects_mode(self, circuit, mode):
        config = {"gate_only": MapperConfig.gate_only(),
                  "shuttling_only": MapperConfig.shuttling_only(),
                  "hybrid": MapperConfig.hybrid(1.0)}[mode]
        mapper = HybridMapper(ARCHITECTURE, config, connectivity=CONNECTIVITY)
        result = mapper.map(circuit)
        result.verify_complete()
        if mode == "shuttling_only":
            assert result.num_swaps == 0
        # Replay the stream: every entangling gate must be executable when emitted.
        state = MappingState(ARCHITECTURE, circuit.num_qubits, connectivity=CONNECTIVITY)
        for operation in result.operations:
            if isinstance(operation, ShuttleOp):
                state.apply_move(operation.move)
            elif isinstance(operation, SwapOp):
                state.apply_swap_with_atom(operation.qubit_a, operation.atom_b)
            elif isinstance(operation, CircuitGateOp) and operation.gate.is_entangling:
                assert state.gate_executable(operation.gate)
                assert operation.sites == tuple(
                    state.site_of_qubit(q) for q in operation.gate.qubits)

    @given(random_entangling_circuit())
    @settings(max_examples=15, deadline=None)
    def test_gate_emission_order_is_a_valid_topological_order(self, circuit):
        from repro.circuit import CircuitDAG
        mapper = HybridMapper(ARCHITECTURE, MapperConfig.hybrid(1.0),
                              connectivity=CONNECTIVITY)
        result = mapper.map(circuit)
        dag = CircuitDAG(circuit)
        order = {op.gate_index: position
                 for position, op in enumerate(result.circuit_gate_ops())}
        for node in dag.nodes:
            for predecessor in node.predecessors:
                assert order[predecessor] < order[node.index]
