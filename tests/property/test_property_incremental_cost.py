"""Property tests: the incremental delta-cost SWAP engine is exact.

The gate-based router scores candidates as ``baseline + delta``
(:class:`repro.mapping.SwapCostCache`), re-evaluating only the gates that
touch the two swapped qubits.  On random circuits, lattices, and scrambled
mapping states the incremental cost of *every* candidate must equal the
naive full recomputation bit-for-bit, and :meth:`GateRouter.best_swap` must
pick the identical candidate with and without the engine.
"""

from hypothesis import given, settings, strategies as st

from repro.circuit import QuantumCircuit
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice
from repro.mapping import GateRouter, LayerManager, MappingState, find_gate_position


ARCHITECTURE = NeutralAtomArchitecture(
    name="prop-cost", lattice=SquareLattice(6, 6, 3.0), num_atoms=18,
    interaction_radius=2.0, restriction_radius=2.0)
CONNECTIVITY = SiteConnectivity(ARCHITECTURE)
NUM_QUBITS = 10


@st.composite
def routing_scenario(draw):
    """A random entangling circuit plus a random legal state scramble."""
    circuit = QuantumCircuit(NUM_QUBITS, name="prop-cost")
    num_gates = draw(st.integers(1, 12))
    for _ in range(num_gates):
        width = draw(st.sampled_from([2, 2, 2, 3]))
        qubits = draw(st.lists(st.integers(0, NUM_QUBITS - 1), min_size=width,
                               max_size=width, unique=True))
        circuit.cz(*qubits)
    operations = draw(st.lists(st.tuples(st.sampled_from(["swap", "move"]),
                                         st.integers(0, 10_000)),
                               min_size=0, max_size=12))
    return circuit, operations


def scrambled_state(operations) -> MappingState:
    state = MappingState(ARCHITECTURE, NUM_QUBITS, connectivity=CONNECTIVITY)
    for kind, seed in operations:
        if kind == "swap":
            qubit = seed % NUM_QUBITS
            neighbours = state.vicinity_of_qubit(qubit)
            if not neighbours:
                continue
            partner_atom = state.atom_at_site(neighbours[seed % len(neighbours)])
            state.apply_swap_with_atom(qubit, partner_atom)
        else:
            atom = seed % ARCHITECTURE.num_atoms
            free = sorted(state.free_sites())
            destination = free[seed % len(free)]
            if destination != state.site_of_atom(atom):
                state.move_atom(atom, destination)
    return state


def routing_round(circuit, operations):
    """State, layers, and (multi-qubit) positions as the mapper would see them."""
    state = scrambled_state(operations)
    layers = LayerManager(circuit)
    front, lookahead = layers.layers()
    positions = {}
    for node in front + lookahead:
        if node.gate.num_qubits >= 3:
            position = find_gate_position(state, node.gate)
            if position is not None:
                positions[node.index] = position
    return state, layers, front, lookahead, positions


class TestDeltaCostExactness:
    @given(routing_scenario(), st.sampled_from([0.0, 0.1, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_incremental_cost_equals_naive_for_every_candidate(
            self, scenario, lookahead_weight):
        circuit, operations = scenario
        state, layers, front, lookahead, positions = routing_round(circuit, operations)
        if not front:
            return
        router = GateRouter(ARCHITECTURE, lookahead_weight=lookahead_weight)
        candidates = router.candidate_swaps(state, front)
        # Once with the LayerManager-maintained index, once self-built.
        for qubit_index in (layers.qubit_node_index(), None):
            cache = router.cost_cache(state, front, lookahead, positions,
                                      qubit_index=qubit_index)
            assert cache.exact
            for candidate in candidates:
                naive = router.swap_cost(state, candidate, front, lookahead,
                                         positions)
                assert cache.cost(candidate) == naive

    @given(routing_scenario())
    @settings(max_examples=60, deadline=None)
    def test_best_swap_identical_with_and_without_engine(self, scenario):
        circuit, operations = scenario
        state, layers, front, lookahead, positions = routing_round(circuit, operations)
        if not front:
            return
        router = GateRouter(ARCHITECTURE)
        fast = router.best_swap(state, front, lookahead, positions,
                                qubit_index=layers.qubit_node_index())
        router.incremental = False
        naive = router.best_swap(state, front, lookahead, positions)
        assert fast == naive

    @given(routing_scenario(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_exactness_holds_under_recency_damping(self, scenario, num_applied):
        """decay_rate > 0 exercises the exponential recency factor."""
        circuit, operations = scenario
        state, layers, front, lookahead, positions = routing_round(circuit, operations)
        if not front:
            return
        router = GateRouter(ARCHITECTURE, decay_rate=0.5, recency_window=4)
        candidates = router.candidate_swaps(state, front)
        for candidate in candidates[:num_applied]:
            router.note_swap_applied(state, candidate)
        cache = router.cost_cache(state, front, lookahead, positions,
                                  qubit_index=layers.qubit_node_index())
        for candidate in candidates:
            naive = router.swap_cost(state, candidate, front, lookahead, positions)
            assert cache.cost(candidate) == naive

    def test_duplicate_nodes_disable_the_engine(self):
        """Hand-crafted duplicate layers fall back to the naive scorer."""
        circuit = QuantumCircuit(NUM_QUBITS)
        circuit.cz(0, 9)
        state = MappingState(ARCHITECTURE, NUM_QUBITS, connectivity=CONNECTIVITY)
        layers = LayerManager(circuit)
        front, _ = layers.layers()
        router = GateRouter(ARCHITECTURE)
        cache = router.cost_cache(state, front + front, [], {})
        assert not cache.exact
        best = router.best_swap(state, front + front, [], {})
        router.incremental = False
        assert best == router.best_swap(state, front + front, [], {})
