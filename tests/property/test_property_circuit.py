"""Property-based tests for the circuit substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitDAG, QuantumCircuit, decompose_to_native
from repro.circuit.commutation import gates_commute
from repro.circuit.gate import GateKind, controlled_x, controlled_z, single_qubit_gate
from repro.circuit.qasm import dumps, loads


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
NUM_QUBITS = 8


@st.composite
def random_gate(draw, num_qubits=NUM_QUBITS):
    kind = draw(st.sampled_from(["single", "cz", "cx", "swap"]))
    if kind == "single":
        name = draw(st.sampled_from(["h", "x", "z", "s", "t", "rz"]))
        qubit = draw(st.integers(0, num_qubits - 1))
        if name == "rz":
            return single_qubit_gate("rz", qubit, draw(st.floats(-3.14, 3.14,
                                                                 allow_nan=False)))
        return single_qubit_gate(name, qubit)
    width = draw(st.integers(2, 4))
    qubits = draw(st.lists(st.integers(0, num_qubits - 1), min_size=width,
                           max_size=width, unique=True))
    if kind == "cz":
        return controlled_z(qubits)
    if kind == "cx":
        return controlled_x(qubits[:-1], qubits[-1])
    from repro.circuit.gate import swap_gate
    return swap_gate(qubits[0], qubits[1])


@st.composite
def random_circuit(draw, max_gates=30):
    circuit = QuantumCircuit(NUM_QUBITS, name="random")
    for gate in draw(st.lists(random_gate(), min_size=1, max_size=max_gates)):
        circuit.append(gate)
    return circuit


# ----------------------------------------------------------------------
# Circuit invariants
# ----------------------------------------------------------------------
class TestCircuitProperties:
    @given(random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_depth_bounds(self, circuit):
        """Depth is at least entangling depth and at most the gate count."""
        assert circuit.entangling_depth() <= circuit.depth() <= len(circuit)

    @given(random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_arity_histogram_counts_every_entangling_gate(self, circuit):
        assert sum(circuit.count_by_arity().values()) == circuit.num_entangling_gates()

    @given(random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_native_decomposition_preserves_entangling_structure(self, circuit):
        """Decomposition keeps one entangling pulse per CX/CZ and 3 per SWAP."""
        native = decompose_to_native(circuit)
        swaps = sum(1 for g in circuit if g.kind == GateKind.SWAP)
        others = circuit.num_entangling_gates() - swaps
        assert native.num_entangling_gates() == others + 3 * swaps
        assert all(g.kind != GateKind.CONTROLLED_X for g in native)
        assert all(g.kind != GateKind.SWAP for g in native)

    @given(random_circuit())
    @settings(max_examples=30, deadline=None)
    def test_qasm_round_trip_preserves_structure(self, circuit):
        reparsed = loads(dumps(circuit))
        assert len(reparsed) == len(circuit)
        assert [g.qubits for g in reparsed] == [g.qubits for g in circuit]
        assert [g.kind for g in reparsed] == [g.kind for g in circuit]


class TestDagProperties:
    @given(random_circuit())
    @settings(max_examples=40, deadline=None)
    def test_greedy_execution_covers_every_gate_exactly_once(self, circuit):
        dag = CircuitDAG(circuit)
        executed = []
        while not dag.is_finished():
            front = dag.front_layer()
            assert front
            node = front[0]
            dag.execute(node.index)
            executed.append(node.index)
        assert sorted(executed) == list(range(len(circuit)))

    @given(random_circuit())
    @settings(max_examples=40, deadline=None)
    def test_front_layer_gates_are_mutually_independent(self, circuit):
        """No two front-layer gates may be ordered by a dependency edge."""
        dag = CircuitDAG(circuit)
        front = dag.front_layer()
        indices = {node.index for node in front}
        for node in front:
            assert not (node.predecessors & indices)

    @given(random_circuit())
    @settings(max_examples=40, deadline=None)
    def test_edges_only_connect_non_commuting_overlapping_gates(self, circuit):
        dag = CircuitDAG(circuit)
        for node in dag.nodes:
            for predecessor in node.predecessors:
                other = dag.nodes[predecessor]
                assert other.gate.overlaps(node.gate)
                assert not gates_commute(other.gate, node.gate)

    @given(random_circuit())
    @settings(max_examples=40, deadline=None)
    def test_dependencies_point_backwards(self, circuit):
        dag = CircuitDAG(circuit)
        for node in dag.nodes:
            assert all(p < node.index for p in node.predecessors)
            assert all(s > node.index for s in node.successors)


class TestCommutationProperties:
    @given(random_gate(), random_gate())
    @settings(max_examples=200, deadline=None)
    def test_commutation_is_symmetric(self, first, second):
        assert gates_commute(first, second) == gates_commute(second, first)

    @given(random_gate())
    @settings(max_examples=50, deadline=None)
    def test_disjoint_gates_always_commute(self, gate):
        other_qubits = [q + NUM_QUBITS for q in range(2)]
        other = controlled_z(other_qubits)
        assert gates_commute(gate, other)
