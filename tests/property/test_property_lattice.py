"""Property-based tests for lattice geometry and connectivity."""

import math

from hypothesis import given, settings, strategies as st

from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice


lattice_strategy = st.builds(
    SquareLattice,
    st.integers(2, 9),
    st.integers(2, 9),
    st.floats(1.0, 5.0, allow_nan=False),
)


class TestLatticeProperties:
    @given(lattice_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_index_roundtrip(self, lattice, data):
        site = data.draw(st.integers(0, lattice.num_sites - 1))
        row, col = lattice.row_col(site)
        assert lattice.site_at(row, col) == site
        x, y = lattice.position(site)
        assert lattice.site_near(x, y) == site

    @given(lattice_strategy, st.data())
    @settings(max_examples=60, deadline=None)
    def test_metric_properties(self, lattice, data):
        a = data.draw(st.integers(0, lattice.num_sites - 1))
        b = data.draw(st.integers(0, lattice.num_sites - 1))
        c = data.draw(st.integers(0, lattice.num_sites - 1))
        euclid = lattice.euclidean_distance
        # symmetry, identity, triangle inequality
        assert euclid(a, b) == euclid(b, a)
        assert euclid(a, a) == 0.0
        assert euclid(a, c) <= euclid(a, b) + euclid(b, c) + 1e-9
        # rectangular distance dominates euclidean
        assert lattice.rectangular_distance(a, b) >= euclid(a, b) - 1e-9

    @given(lattice_strategy, st.data(), st.floats(0.5, 4.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_sites_within_radius_are_exactly_the_close_ones(self, lattice, data, factor):
        site = data.draw(st.integers(0, lattice.num_sites - 1))
        radius = factor * lattice.spacing
        within = set(lattice.sites_within(site, radius))
        for other in range(lattice.num_sites):
            if other == site:
                continue
            close = lattice.euclidean_distance(site, other) <= radius + 1e-9
            assert (other in within) == close


class TestConnectivityProperties:
    @given(st.integers(3, 7), st.floats(1.0, 3.0, allow_nan=False), st.data())
    @settings(max_examples=30, deadline=None)
    def test_hop_distance_is_a_metric_on_the_site_graph(self, rows, radius_factor, data):
        architecture = NeutralAtomArchitecture(
            name="prop", lattice=SquareLattice(rows, rows, 3.0),
            num_atoms=rows * rows - 1,
            interaction_radius=radius_factor, restriction_radius=radius_factor)
        connectivity = SiteConnectivity(architecture)
        a = data.draw(st.integers(0, architecture.lattice.num_sites - 1))
        b = data.draw(st.integers(0, architecture.lattice.num_sites - 1))
        assert connectivity.hop_distance(a, b) == connectivity.hop_distance(b, a)
        assert connectivity.hop_distance(a, a) == 0
        if a != b and connectivity.are_adjacent(a, b):
            assert connectivity.hop_distance(a, b) == 1

    @given(st.integers(3, 7), st.data())
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_length_matches_hop_distance(self, rows, data):
        architecture = NeutralAtomArchitecture(
            name="prop", lattice=SquareLattice(rows, rows, 3.0),
            num_atoms=rows * rows - 1,
            interaction_radius=2.0, restriction_radius=2.0)
        connectivity = SiteConnectivity(architecture)
        a = data.draw(st.integers(0, architecture.lattice.num_sites - 1))
        b = data.draw(st.integers(0, architecture.lattice.num_sites - 1))
        path = connectivity.shortest_path(a, b)
        assert path is not None
        assert len(path) - 1 == connectivity.hop_distance(a, b)
        for u, v in zip(path, path[1:]):
            assert connectivity.are_adjacent(u, v)
