"""Unit tests for the commutation-aware circuit DAG."""

import pytest

from repro.circuit import CircuitDAG, QuantumCircuit


def build_layered_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(4, name="layered")
    circuit.cz(0, 1)       # 0
    circuit.cz(2, 3)       # 1 (parallel with 0)
    circuit.cx(1, 2)       # 2 (depends on 0 and 1)
    circuit.cz(0, 3)       # 3 (depends on ... commutes with 0 and 1? shares q0 with cz(0,1): both diagonal -> commute; shares q3 with cz(2,3): commute; shares q3... but cx(1,2) disjoint)
    return circuit


class TestConstruction:
    def test_front_layer_initially_contains_independent_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1)
        circuit.cz(2, 3)
        dag = CircuitDAG(circuit)
        assert {node.index for node in dag.front_layer()} == {0, 1}

    def test_dependent_gate_not_in_front(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        front = {node.index for node in dag.front_layer()}
        assert 0 in front
        assert 1 not in front

    def test_commuting_cz_chain_is_fully_in_front(self):
        # CZ gates are mutually diagonal: the whole chain is available at once.
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1)
        circuit.cz(1, 2)
        circuit.cz(2, 3)
        dag = CircuitDAG(circuit)
        assert {node.index for node in dag.front_layer()} == {0, 1, 2}

    def test_commutation_disabled_restores_wire_order(self):
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1)
        circuit.cz(1, 2)
        dag = CircuitDAG(circuit, use_commutation=False)
        assert {node.index for node in dag.front_layer()} == {0}

    def test_non_commuting_gates_are_ordered(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        circuit.h(0)
        dag = CircuitDAG(circuit)
        assert {node.index for node in dag.front_layer()} == {0}

    def test_transitive_ordering_through_commuting_gates(self):
        # h(0); cz(0,1); h(1): the final h(1) must wait for the cz even though
        # it commutes with nothing in between on its own wire.
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.h(1)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        node = dag.nodes[2]
        assert 1 in node.predecessors


class TestExecution:
    def test_execute_releases_successors(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        dag.execute(0)
        assert {node.index for node in dag.front_layer()} == {1}

    def test_execute_requires_front_membership(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        with pytest.raises(ValueError):
            dag.execute(1)

    def test_double_execution_rejected(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        dag = CircuitDAG(circuit)
        dag.execute(0)
        with pytest.raises(ValueError):
            dag.execute(0)

    def test_is_finished(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        assert not dag.is_finished()
        dag.execute_many([0])
        dag.execute_many([1])
        assert dag.is_finished()

    def test_reset_restores_initial_front(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        dag.execute(0)
        dag.reset()
        assert {node.index for node in dag.front_layer()} == {0}
        assert dag.num_executed == 0


class TestLayers:
    def test_lookahead_layer(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)           # 0
        circuit.cx(0, 1)       # 1 depends on 0
        circuit.cx(1, 2)       # 2 depends on 1
        dag = CircuitDAG(circuit)
        lookahead = {node.index for node in dag.lookahead_layer(1)}
        assert lookahead == {1}
        deep = {node.index for node in dag.lookahead_layer(3)}
        assert deep == {1, 2}

    def test_lookahead_zero_depth_is_empty(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        dag = CircuitDAG(circuit)
        assert dag.lookahead_layer(0) == []

    def test_layers_partition_all_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).cx(0, 1).cx(1, 2).cx(2, 3).h(3)
        dag = CircuitDAG(circuit)
        layers = dag.layers()
        indices = sorted(node.index for layer in layers for node in layer)
        assert indices == list(range(len(circuit)))
        # layers() must not consume the execution state
        assert dag.num_executed == 0

    def test_entangling_front_filters_single_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cz(1, 2)
        dag = CircuitDAG(circuit)
        assert [n.index for n in dag.entangling_front()] == [1]
        assert [n.index for n in dag.executable_trivially()] == [0]

    def test_successor_predecessor_queries(self, small_qft_circuit):
        dag = CircuitDAG(small_qft_circuit)
        for node in dag.nodes:
            for succ in dag.successors_of(node.index):
                assert node.index in {p.index for p in dag.predecessors_of(succ.index)}


class TestLargerCircuits:
    def test_qft_dag_is_consistent(self, small_qft_circuit):
        dag = CircuitDAG(small_qft_circuit)
        executed = 0
        while not dag.is_finished():
            front = dag.front_layer()
            assert front, "front layer must never be empty before completion"
            dag.execute(front[0].index)
            executed += 1
        assert executed == len(small_qft_circuit)
