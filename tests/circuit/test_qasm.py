"""Unit tests for the OpenQASM 2 subset reader/writer."""

import math

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gate import GateKind
from repro.circuit.qasm import QasmError, dumps, load, loads, dump


SAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
// a comment line
qreg q[4];
creg c[4];
h q[0];
rz(pi/4) q[1];
cx q[0],q[1];
cz q[1],q[2];
ccz q[0],q[1],q[2];
ccx q[0], q[1], q[3];
cp(pi/8) q[2],q[3];
u3(0.1,0.2,0.3) q[2];
swap q[0],q[3];
barrier q[0],q[1];
measure q[3] -> c[3];
"""


class TestLoads:
    def test_parses_all_statements(self):
        circuit = loads(SAMPLE)
        assert circuit.num_qubits == 4
        names = [g.name for g in circuit]
        assert names == ["h", "rz", "cx", "cz", "ccz", "ccx", "cp", "u3", "swap",
                         "barrier", "measure"]

    def test_parameter_expressions(self):
        circuit = loads(SAMPLE)
        rz = circuit[1]
        assert rz.params[0] == pytest.approx(math.pi / 4)
        cp = circuit[6]
        assert cp.params[0] == pytest.approx(math.pi / 8)

    def test_negative_and_nested_parameters(self):
        circuit = loads("qreg q[1]; rz(-pi/2) q[0]; rz(2*(pi+1)) q[0];")
        assert circuit[0].params[0] == pytest.approx(-math.pi / 2)
        assert circuit[1].params[0] == pytest.approx(2 * (math.pi + 1))

    def test_multiple_registers_are_concatenated(self):
        text = "qreg a[2]; qreg b[2]; cz a[1],b[0];"
        circuit = loads(text)
        assert circuit.num_qubits == 4
        assert circuit[0].qubits == (1, 2)

    def test_missing_qreg_raises(self):
        with pytest.raises(QasmError):
            loads("h q[0];")

    def test_unknown_register_raises(self):
        with pytest.raises(QasmError):
            loads("qreg q[2]; h r[0];")

    def test_unsupported_gate_raises(self):
        with pytest.raises(QasmError):
            loads("qreg q[3]; rxx(0.1) q[0],q[1];")

    def test_malformed_parameter_raises(self):
        with pytest.raises(QasmError):
            loads("qreg q[1]; rz(pi//2) q[0];")

    def test_kinds_are_assigned(self):
        circuit = loads(SAMPLE)
        kinds = {g.name: g.kind for g in circuit}
        assert kinds["cx"] == GateKind.CONTROLLED_X
        assert kinds["cz"] == GateKind.CONTROLLED_Z
        assert kinds["cp"] == GateKind.CONTROLLED_Z
        assert kinds["swap"] == GateKind.SWAP
        assert kinds["barrier"] == GateKind.BARRIER
        assert kinds["measure"] == GateKind.MEASURE


class TestRoundTrip:
    def test_dump_load_round_trip_structure(self):
        original = loads(SAMPLE)
        text = dumps(original)
        reparsed = loads(text)
        assert [g.name for g in reparsed] == [g.name for g in original]
        assert [g.qubits for g in reparsed] == [g.qubits for g in original]

    def test_round_trip_preserves_parameters(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.12345, 0).cp(0.5, 0, 1)
        reparsed = loads(dumps(circuit))
        assert reparsed[0].params[0] == pytest.approx(0.12345)
        assert reparsed[1].params[0] == pytest.approx(0.5)

    def test_wide_mcx_round_trip(self):
        circuit = QuantumCircuit(5)
        circuit.mcx([0, 1, 2], 4)
        reparsed = loads(dumps(circuit))
        assert reparsed[0].num_qubits == 4
        assert reparsed[0].kind == GateKind.CONTROLLED_X

    def test_file_io(self, tmp_path):
        circuit = QuantumCircuit(3, name="file-io")
        circuit.h(0).cz(0, 2).measure_all()
        path = tmp_path / "circuit.qasm"
        dump(circuit, str(path))
        loaded = load(str(path))
        assert len(loaded) == len(circuit)
        assert loaded.num_qubits == 3


class TestLibraryRoundTrips:
    """QASM round-trip stability for the benchmark circuit library.

    For every benchmark family: serialising, reparsing and reserialising is a
    fixed point (``dumps(loads(dumps(c)))`` equals ``dumps(loads(...))`` of
    itself), and the reparsed circuit preserves the gate count and the
    per-arity gate mix of the original.
    """

    #: (name, size) pairs kept small so the whole class runs in milliseconds.
    CASES = (("qft", 8), ("graph", 12), ("qpe", 8),
             ("bn", 10), ("call", 10), ("gray", 10))

    @pytest.mark.parametrize("name,size", CASES, ids=[c[0] for c in CASES])
    def test_dumps_loads_dumps_is_stable(self, name, size):
        from repro.circuit.library import get_benchmark
        circuit = get_benchmark(name, num_qubits=size, seed=11)
        first = dumps(circuit)
        second = dumps(loads(first))
        third = dumps(loads(second))
        assert second == third

    @pytest.mark.parametrize("name,size", CASES, ids=[c[0] for c in CASES])
    def test_round_trip_preserves_gate_counts(self, name, size):
        from repro.circuit.library import get_benchmark
        circuit = get_benchmark(name, num_qubits=size, seed=11)
        reparsed = loads(dumps(circuit))
        assert reparsed.num_qubits == circuit.num_qubits
        assert len(reparsed) == len(circuit)
        assert reparsed.count_by_arity() == circuit.count_by_arity()
        assert [g.qubits for g in reparsed] == [g.qubits for g in circuit]

    @pytest.mark.parametrize("name,size", CASES, ids=[c[0] for c in CASES])
    def test_round_trip_preserves_native_decomposition(self, name, size):
        """Decomposing before or after the round trip gives the same gate mix."""
        from repro.circuit import decompose_mcx_to_mcz
        from repro.circuit.library import get_benchmark
        circuit = get_benchmark(name, num_qubits=size, seed=11)
        direct = decompose_mcx_to_mcz(circuit)
        round_tripped = decompose_mcx_to_mcz(loads(dumps(circuit)))
        assert round_tripped.count_by_arity() == direct.count_by_arity()
        assert len(round_tripped) == len(direct)


