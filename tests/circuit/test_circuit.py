"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuit import Gate, GateKind, QuantumCircuit
from repro.circuit.gate import controlled_z


class TestBuilders:
    def test_empty_circuit(self):
        circuit = QuantumCircuit(3)
        assert len(circuit) == 0
        assert circuit.num_qubits == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_named_single_qubit_builders(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).x(1).y(0).z(1).s(0).sdg(1).t(0).tdg(1)
        assert len(circuit) == 8
        assert all(g.is_single_qubit for g in circuit)

    def test_rotation_builders(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u3(0.5, 0.6, 0.7, 0)
        assert [g.params for g in circuit] == [(0.1,), (0.2,), (0.3,), (0.4,),
                                               (0.5, 0.6, 0.7)]

    def test_entangling_builders(self):
        circuit = QuantumCircuit(5)
        circuit.cz(0, 1).ccz(0, 1, 2).cccz(0, 1, 2, 3)
        circuit.cx(0, 4).ccx(0, 1, 4).mcx([0, 1, 2], 4).mcz([1, 2, 3, 4])
        widths = [g.num_qubits for g in circuit]
        assert widths == [2, 3, 4, 2, 3, 4, 4]

    def test_cp_behaves_like_cz_for_mapping(self):
        circuit = QuantumCircuit(2)
        circuit.cp(0.5, 0, 1)
        gate = circuit[0]
        assert gate.kind == GateKind.CONTROLLED_Z
        assert gate.is_diagonal
        assert gate.params == (0.5,)

    def test_out_of_range_qubit_rejected(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cz(0, 2)

    def test_barrier_defaults_to_all_qubits(self):
        circuit = QuantumCircuit(3)
        circuit.barrier()
        assert circuit[0].qubits == (0, 1, 2)

    def test_measure_all(self):
        circuit = QuantumCircuit(3)
        circuit.measure_all()
        assert len(circuit) == 3
        assert all(g.kind == GateKind.MEASURE for g in circuit)

    def test_extend_and_append_validation(self):
        circuit = QuantumCircuit(3)
        circuit.extend([controlled_z((0, 1)), controlled_z((1, 2))])
        assert len(circuit) == 2
        with pytest.raises(ValueError):
            circuit.append(controlled_z((2, 5)))


class TestAnalysis:
    def test_count_ops(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cz(0, 1).cz(1, 2)
        assert circuit.count_ops() == {"h": 2, "cz": 2}

    def test_count_by_arity(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).cz(0, 1).ccz(0, 1, 2).cccz(0, 1, 2, 3).cz(2, 3)
        assert circuit.count_by_arity() == {2: 2, 3: 1, 4: 1}

    def test_entangling_and_single_counts(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cz(0, 1).measure(2)
        assert circuit.num_entangling_gates() == 1
        assert circuit.num_single_qubit_gates() == 2

    def test_used_qubits(self):
        circuit = QuantumCircuit(6)
        circuit.cz(1, 4)
        assert circuit.used_qubits() == frozenset({1, 4})

    def test_depth_sequential_gates(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0).h(0)
        assert circuit.depth() == 3

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1).cz(2, 3)
        assert circuit.depth() == 1

    def test_depth_with_barrier_fence(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().h(1)
        # The barrier forces qubit 1's gate to start after qubit 0's gate.
        assert circuit.depth() == 2

    def test_entangling_depth_ignores_single_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(0).cz(0, 1).cz(1, 2)
        assert circuit.entangling_depth() == 2
        assert circuit.depth() == 4


class TestTransformations:
    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        clone = circuit.copy()
        clone.h(0)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_remapped(self):
        circuit = QuantumCircuit(3)
        circuit.cz(0, 2)
        remapped = circuit.remapped({0: 2, 1: 1, 2: 0})
        assert remapped[0].qubits == (2, 0)

    def test_remapped_to_larger_register(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        bigger = circuit.remapped({0: 7, 1: 9}, num_qubits=10)
        assert bigger.num_qubits == 10
        assert bigger[0].qubits == (7, 9)

    def test_filtered(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cz(0, 1).h(1)
        only_entangling = circuit.filtered(lambda g: g.is_entangling)
        assert len(only_entangling) == 1

    def test_without_trivial_ops(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).barrier().cz(0, 1).measure_all()
        cleaned = circuit.without_trivial_ops()
        assert [g.name for g in cleaned] == ["h", "cz"]

    def test_compose(self):
        base = QuantumCircuit(4)
        base.h(0)
        other = QuantumCircuit(2)
        other.cz(0, 1)
        combined = base.compose(other, qubit_offset=2)
        assert combined[1].qubits == (2, 3)

    def test_compose_rejects_overflow(self):
        base = QuantumCircuit(2)
        other = QuantumCircuit(3)
        with pytest.raises(ValueError):
            base.compose(other)

    def test_equality(self):
        a = QuantumCircuit(2)
        a.cz(0, 1)
        b = QuantumCircuit(2)
        b.cz(0, 1)
        assert a == b
        b.h(0)
        assert a != b
