"""Unit tests for the benchmark circuit library (Table 1b workloads)."""

import pytest

from repro.circuit.library import (
    BENCHMARK_NAMES,
    REVERSIBLE_PROFILES,
    benchmark_graph,
    bn,
    call,
    default_benchmark_size,
    get_benchmark,
    graph_state,
    graph_state_from_edges,
    gray,
    qft,
    qpe,
    synthesize_reversible,
)
from repro.circuit.decompose import decompose_mcx_to_mcz
from repro.circuit.gate import GateKind


class TestQft:
    def test_gate_count_formula(self):
        for n in (2, 5, 10):
            circuit = qft(n)
            assert circuit.count_by_arity().get(2, 0) == n * (n - 1) // 2
            assert circuit.count_ops()["h"] == n

    def test_approximate_qft_drops_long_range_rotations(self):
        full = qft(12)
        approx = qft(12, max_distance=3)
        assert approx.count_by_arity()[2] < full.count_by_arity()[2]
        expected = sum(min(12 - 1 - i, 3) for i in range(12))
        assert approx.count_by_arity()[2] == expected

    def test_with_swaps_adds_reversal_network(self):
        swapped = qft(6, with_swaps=True)
        assert any(g.kind == GateKind.SWAP for g in swapped)
        assert sum(1 for g in swapped if g.kind == GateKind.SWAP) == 3

    def test_rejects_empty_register(self):
        with pytest.raises(ValueError):
            qft(0)


class TestQpe:
    def test_structure(self):
        circuit = qpe(6)
        assert circuit.num_qubits == 6
        # one X (eigenstate prep), n-1 Hadamards up front, n-1 at the end of iQFT
        assert circuit.count_ops()["x"] == 1
        assert circuit.count_ops()["h"] == 2 * (6 - 1)

    def test_two_qubit_count_exceeds_qft_of_same_width(self):
        n = 10
        assert qpe(n).count_by_arity()[2] > qft(n - 1).count_by_arity()[2]

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            qpe(1)

    def test_all_entangling_gates_are_two_qubit(self):
        assert set(qpe(8).count_by_arity()) == {2}


class TestGraphState:
    def test_one_cz_per_edge(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        circuit = graph_state_from_edges(4, edges)
        assert circuit.count_by_arity() == {2: 3}
        assert circuit.count_ops()["h"] == 4

    def test_duplicate_edges_collapse(self):
        circuit = graph_state_from_edges(3, [(0, 1), (1, 0)])
        assert circuit.count_by_arity() == {2: 1}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            graph_state_from_edges(3, [(1, 1)])

    def test_deterministic_given_seed(self):
        a = graph_state(20, seed=3)
        b = graph_state(20, seed=3)
        assert a == b

    def test_benchmark_graph_edge_count_profile(self):
        graph = benchmark_graph(200)
        assert abs(graph.number_of_edges() - 215) <= 5

    def test_regular_graph_variant(self):
        graph = benchmark_graph(20, degree=3, seed=1)
        assert all(d == 3 for _n, d in graph.degree())


class TestReversible:
    def test_profiles_match_table_1b(self):
        assert REVERSIBLE_PROFILES["bn"] == (48, {2: 133, 3: 87})
        assert REVERSIBLE_PROFILES["call"] == (25, {3: 192, 4: 56})
        assert REVERSIBLE_PROFILES["gray"] == (33, {3: 62})

    @pytest.mark.parametrize("factory,name", [(bn, "bn"), (call, "call"), (gray, "gray")])
    def test_default_sizes_and_arities(self, factory, name):
        base_qubits, profile = REVERSIBLE_PROFILES[name]
        circuit = factory()
        assert circuit.num_qubits == base_qubits
        decomposed = decompose_mcx_to_mcz(circuit)
        arity = decomposed.count_by_arity()
        for width, count in profile.items():
            assert arity.get(width, 0) == count

    def test_scaling_preserves_mix(self):
        circuit = bn(num_qubits=24)
        assert circuit.num_qubits == 24
        arity = circuit.count_by_arity()
        assert arity[2] > arity[3] > 0

    def test_synthesize_rejects_too_few_qubits(self):
        with pytest.raises(ValueError):
            synthesize_reversible(2, {4: 3})

    def test_no_adjacent_identical_gates(self):
        circuit = synthesize_reversible(12, {3: 40}, seed=5)
        entangling = [g for g in circuit if g.is_entangling]
        for first, second in zip(entangling, entangling[1:]):
            assert first.qubit_set() != second.qubit_set() or first.target != second.target

    def test_deterministic_given_seed(self):
        assert call(seed=9) == call(seed=9)
        assert call(seed=9) != call(seed=10)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in BENCHMARK_NAMES:
            circuit = get_benchmark(name, num_qubits=max(8, default_benchmark_size(name) // 10))
            assert len(circuit) > 0

    def test_default_sizes_match_paper(self):
        assert default_benchmark_size("qft") == 200
        assert default_benchmark_size("bn") == 48
        assert default_benchmark_size("call") == 25
        assert default_benchmark_size("gray") == 33

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            get_benchmark("does-not-exist")
        with pytest.raises(ValueError):
            default_benchmark_size("nope")
