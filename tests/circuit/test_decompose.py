"""Unit tests for the decomposition passes."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.decompose import (
    cx_decomposition,
    decompose_mcx_to_mcz,
    decompose_swaps_to_cz,
    decompose_to_native,
    mcx_decomposition,
    swap_decomposition,
)
from repro.circuit.gate import GateKind, controlled_x, controlled_z


class TestCxDecomposition:
    def test_cx_becomes_h_cz_h(self):
        gates = cx_decomposition(0, 1)
        assert [g.name for g in gates] == ["h", "cz", "h"]
        assert gates[0].qubits == (1,)
        assert gates[1].qubits == (0, 1)

    def test_mcx_keeps_all_controls(self):
        gate = controlled_x((0, 1, 2), 3)
        gates = mcx_decomposition(gate)
        assert gates[1].qubits == (0, 1, 2, 3)
        assert gates[1].kind == GateKind.CONTROLLED_Z
        assert gates[0].qubits == gates[2].qubits == (3,)

    def test_mcx_decomposition_rejects_non_cx(self):
        with pytest.raises(ValueError):
            mcx_decomposition(controlled_z((0, 1)))


class TestSwapDecomposition:
    def test_swap_has_three_cz(self):
        gates = swap_decomposition(0, 1)
        cz_count = sum(1 for g in gates if g.kind == GateKind.CONTROLLED_Z)
        assert cz_count == 3

    def test_circuit_level_swap_decomposition_counts(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        native = decompose_swaps_to_cz(circuit)
        arity = native.count_by_arity()
        assert arity == {2: 3}
        # Canonical form: 3 CZ + 6 Hadamards.
        assert native.num_single_qubit_gates() == 6

    def test_unoptimised_swap_decomposition(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        native = decompose_swaps_to_cz(circuit, optimised=False)
        assert native.count_by_arity() == {2: 3}
        assert native.num_single_qubit_gates() == 6

    def test_non_swap_gates_pass_through(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cz(0, 1).swap(1, 2).cz(0, 2)
        native = decompose_swaps_to_cz(circuit)
        assert native.count_by_arity()[2] == 2 + 3
        assert not any(g.kind == GateKind.SWAP for g in native)


class TestMcxToMcz:
    def test_counts_match_table_1b_convention(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.mcx([0, 1, 2], 3)
        native = decompose_mcx_to_mcz(circuit)
        assert native.count_by_arity() == {2: 1, 3: 1, 4: 1}
        assert not any(g.kind == GateKind.CONTROLLED_X for g in native)

    def test_hadamard_pair_surrounds_target(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        native = decompose_mcx_to_mcz(circuit)
        assert [g.name for g in native] == ["h", "cz", "h"]

    def test_existing_cz_untouched(self):
        circuit = QuantumCircuit(3)
        circuit.ccz(0, 1, 2)
        native = decompose_mcx_to_mcz(circuit)
        assert len(native) == 1
        assert native[0].name == "ccz"


class TestNativeDecomposition:
    def test_native_gate_set_only(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 1).swap(1, 2).ccx(0, 1, 3).measure(3)
        native = decompose_to_native(circuit)
        for gate in native:
            assert gate.kind in (GateKind.SINGLE, GateKind.CONTROLLED_Z,
                                 GateKind.MEASURE, GateKind.BARRIER)

    def test_entangling_count_preserved_up_to_swaps(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).ccx(1, 2, 3).swap(0, 3)
        native = decompose_to_native(circuit)
        # cx -> 1 CZ, ccx -> 1 CCZ, swap -> 3 CZ
        assert native.count_by_arity() == {2: 4, 3: 1}
