"""Unit tests for the gate model."""

import math

import pytest

from repro.circuit.gate import (
    DIAGONAL_SINGLE_QUBIT_NAMES,
    Gate,
    GateKind,
    barrier,
    controlled_x,
    controlled_z,
    euler_angles_of,
    gate_arity_name,
    measurement,
    single_qubit_gate,
    swap_gate,
)


class TestGateConstruction:
    def test_single_qubit_gate_basic(self):
        gate = single_qubit_gate("h", 3)
        assert gate.name == "h"
        assert gate.qubits == (3,)
        assert gate.kind == GateKind.SINGLE
        assert gate.is_single_qubit
        assert not gate.is_entangling

    def test_single_qubit_gate_with_params(self):
        gate = single_qubit_gate("rz", 0, math.pi / 4)
        assert gate.params == (math.pi / 4,)

    def test_single_qubit_gate_unknown_name(self):
        with pytest.raises(ValueError):
            single_qubit_gate("foo", 0)

    def test_controlled_z_two_qubits(self):
        gate = controlled_z((2, 5))
        assert gate.name == "cz"
        assert gate.kind == GateKind.CONTROLLED_Z
        assert gate.num_qubits == 2
        assert not gate.is_multi_qubit

    def test_controlled_z_names_scale_with_width(self):
        assert controlled_z((0, 1, 2)).name == "ccz"
        assert controlled_z((0, 1, 2, 3)).name == "cccz"

    def test_controlled_z_needs_two_qubits(self):
        with pytest.raises(ValueError):
            controlled_z((1,))

    def test_controlled_x_controls_and_target(self):
        gate = controlled_x((1, 2), 7)
        assert gate.name == "ccx"
        assert gate.controls == (1, 2)
        assert gate.target == 7
        assert gate.kind == GateKind.CONTROLLED_X

    def test_controlled_x_needs_controls(self):
        with pytest.raises(ValueError):
            controlled_x((), 3)

    def test_swap_gate(self):
        gate = swap_gate(1, 2)
        assert gate.kind == GateKind.SWAP
        assert gate.is_entangling
        assert gate.num_qubits == 2

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("cz", (1, 1), (), GateKind.CONTROLLED_Z)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Gate("weird", (0,), (), "weird-kind")

    def test_single_kind_with_two_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("h", (0, 1), (), GateKind.SINGLE)

    def test_barrier_and_measurement(self):
        fence = barrier([0, 1, 2])
        assert fence.kind == GateKind.BARRIER
        meas = measurement(4)
        assert meas.kind == GateKind.MEASURE
        assert not meas.is_entangling


class TestGateProperties:
    def test_multi_qubit_flag(self):
        assert controlled_z((0, 1, 2)).is_multi_qubit
        assert not controlled_z((0, 1)).is_multi_qubit
        assert not single_qubit_gate("x", 0).is_multi_qubit

    def test_cz_is_diagonal(self):
        assert controlled_z((0, 1)).is_diagonal
        assert controlled_z((0, 1, 2, 3)).is_diagonal

    def test_cx_is_not_diagonal(self):
        assert not controlled_x((0,), 1).is_diagonal

    def test_diagonal_single_qubit_gates(self):
        for name in DIAGONAL_SINGLE_QUBIT_NAMES:
            if name in ("rz", "p", "u1"):
                gate = single_qubit_gate(name, 0, 0.3)
            else:
                gate = single_qubit_gate(name, 0)
            assert gate.is_diagonal, name
        assert not single_qubit_gate("h", 0).is_diagonal

    def test_overlaps(self):
        a = controlled_z((0, 1))
        b = controlled_z((1, 2))
        c = controlled_z((3, 4))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_remapped(self):
        gate = controlled_x((0, 1), 2)
        remapped = gate.remapped({0: 5, 1: 6, 2: 7})
        assert remapped.qubits == (5, 6, 7)
        assert remapped.name == gate.name
        assert remapped.kind == gate.kind

    def test_qubit_set(self):
        assert controlled_z((3, 1)).qubit_set() == frozenset({1, 3})

    def test_target_of_single(self):
        assert single_qubit_gate("x", 4).target == 4

    def test_gate_arity_name(self):
        assert gate_arity_name(2, "z") == "cz"
        assert gate_arity_name(4, "x") == "cccx"
        with pytest.raises(ValueError):
            gate_arity_name(1, "z")


class TestEulerAngles:
    @pytest.mark.parametrize("name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
                                      "sx", "sxdg"])
    def test_named_cliffords_have_angles(self, name):
        theta, phi, lam = euler_angles_of(single_qubit_gate(name, 0))
        assert all(isinstance(v, float) for v in (theta, phi, lam))

    def test_rotation_gates_pass_angle_through(self):
        assert euler_angles_of(single_qubit_gate("rz", 0, 0.7))[2] == pytest.approx(0.7)
        assert euler_angles_of(single_qubit_gate("ry", 0, 0.7))[0] == pytest.approx(0.7)
        assert euler_angles_of(single_qubit_gate("rx", 0, 0.7))[0] == pytest.approx(0.7)

    def test_u3_passthrough(self):
        gate = single_qubit_gate("u3", 0, 0.1, 0.2, 0.3)
        assert euler_angles_of(gate) == (0.1, 0.2, 0.3)

    def test_entangling_gate_rejected(self):
        with pytest.raises(ValueError):
            euler_angles_of(controlled_z((0, 1)))
