"""Unit tests for the randomised workload generators."""

import pytest

from repro.circuit.library import (
    local_window_circuit,
    qaoa_maxcut_circuit,
    random_layered_circuit,
)
from repro.hardware.presets import mixed
from repro.mapping import HybridMapper, MapperConfig


class TestRandomLayered:
    def test_deterministic_given_seed(self):
        assert random_layered_circuit(8, 3, seed=1) == random_layered_circuit(8, 3, seed=1)
        assert random_layered_circuit(8, 3, seed=1) != random_layered_circuit(8, 3, seed=2)

    def test_layer_structure(self):
        circuit = random_layered_circuit(10, 4)
        # Each layer applies one rz per qubit and floor(n/2) CZ gates.
        assert circuit.count_ops()["rz"] == 40
        assert circuit.count_by_arity()[2] == 4 * 5

    def test_multi_qubit_fraction_produces_ccz(self):
        circuit = random_layered_circuit(12, 6, multi_qubit_fraction=0.8, seed=3)
        arity = circuit.count_by_arity()
        assert arity.get(3, 0) > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            random_layered_circuit(1, 2)
        with pytest.raises(ValueError):
            random_layered_circuit(4, 2, multi_qubit_fraction=1.5)


class TestQaoa:
    def test_structure(self):
        circuit = qaoa_maxcut_circuit(10, edge_probability=0.4, rounds=2, seed=5)
        assert circuit.count_ops()["h"] == 10
        assert circuit.count_ops()["rx"] == 20
        assert circuit.count_by_arity()[2] % 2 == 0  # same edge set per round

    def test_at_least_one_edge(self):
        circuit = qaoa_maxcut_circuit(5, edge_probability=0.01, seed=1)
        assert circuit.num_entangling_gates() >= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(1)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(5, edge_probability=0.0)


class TestLocalWindow:
    def test_gates_stay_within_window(self):
        window = 2
        circuit = local_window_circuit(20, 50, window=window, seed=9)
        for gate in circuit:
            if gate.is_entangling:
                a, b = gate.qubits
                assert abs(a - b) <= window

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            local_window_circuit(1, 5)
        with pytest.raises(ValueError):
            local_window_circuit(5, 5, window=0)


class TestMappability:
    def test_random_workloads_map_end_to_end(self):
        architecture = mixed(lattice_rows=7, num_atoms=24)
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0))
        for circuit in (random_layered_circuit(12, 2, multi_qubit_fraction=0.3, seed=4),
                        qaoa_maxcut_circuit(12, edge_probability=0.3, seed=4),
                        local_window_circuit(12, 20, seed=4)):
            result = mapper.map(circuit)
            result.verify_complete()
