"""Unit tests for the commutation rules."""

import pytest

from repro.circuit.commutation import gates_commute
from repro.circuit.gate import (
    barrier,
    controlled_x,
    controlled_z,
    measurement,
    single_qubit_gate,
    swap_gate,
)


class TestDisjointSupports:
    def test_disjoint_gates_commute(self):
        assert gates_commute(controlled_z((0, 1)), controlled_z((2, 3)))

    def test_disjoint_cx_gates_commute(self):
        assert gates_commute(controlled_x((0,), 1), controlled_x((2,), 3))

    def test_disjoint_single_qubit_gates_commute(self):
        assert gates_commute(single_qubit_gate("h", 0), single_qubit_gate("x", 1))


class TestDiagonalGates:
    def test_cz_gates_sharing_a_qubit_commute(self):
        assert gates_commute(controlled_z((0, 1)), controlled_z((1, 2)))

    def test_cz_and_ccz_sharing_qubits_commute(self):
        assert gates_commute(controlled_z((0, 1)), controlled_z((0, 1, 2)))

    def test_rz_commutes_with_cz_on_same_qubit(self):
        assert gates_commute(single_qubit_gate("rz", 1, 0.4), controlled_z((0, 1)))

    def test_t_commutes_with_cz(self):
        assert gates_commute(single_qubit_gate("t", 0), controlled_z((0, 1)))

    def test_h_does_not_commute_with_cz_on_same_qubit(self):
        assert not gates_commute(single_qubit_gate("h", 0), controlled_z((0, 1)))

    def test_x_does_not_commute_with_cz_on_same_qubit(self):
        assert not gates_commute(single_qubit_gate("x", 0), controlled_z((0, 1)))


class TestControlledX:
    def test_cx_commutes_with_diagonal_on_control(self):
        cx = controlled_x((0,), 1)
        assert gates_commute(cx, single_qubit_gate("rz", 0, 0.2))
        assert gates_commute(cx, controlled_z((0, 2)))

    def test_cx_does_not_commute_with_diagonal_on_target(self):
        cx = controlled_x((0,), 1)
        assert not gates_commute(cx, single_qubit_gate("rz", 1, 0.2))
        assert not gates_commute(cx, controlled_z((1, 2)))

    def test_cx_gates_sharing_only_controls_commute(self):
        assert gates_commute(controlled_x((0,), 1), controlled_x((0,), 2))

    def test_cx_gates_sharing_target_commute(self):
        assert gates_commute(controlled_x((0,), 2), controlled_x((1,), 2))

    def test_cx_gates_control_target_clash_do_not_commute(self):
        assert not gates_commute(controlled_x((0,), 1), controlled_x((1,), 2))

    def test_ccx_commutes_with_diagonal_on_controls(self):
        ccx = controlled_x((0, 1), 2)
        assert gates_commute(ccx, controlled_z((0, 1)))

    def test_x_commutes_with_cx_target(self):
        assert gates_commute(single_qubit_gate("x", 1), controlled_x((0,), 1))

    def test_x_does_not_commute_with_cx_control(self):
        assert not gates_commute(single_qubit_gate("x", 0), controlled_x((0,), 1))


class TestFences:
    def test_barrier_blocks_everything(self):
        fence = barrier([0, 1])
        assert not gates_commute(fence, controlled_z((0, 2)))
        assert not gates_commute(controlled_z((0, 2)), fence)

    def test_measurement_blocks_shared_qubit(self):
        meas = measurement(0)
        assert not gates_commute(meas, controlled_z((0, 1)))
        assert gates_commute(meas, controlled_z((1, 2)))

    def test_swap_conservatively_blocks(self):
        assert not gates_commute(swap_gate(0, 1), controlled_z((0, 2)))


class TestSymmetry:
    @pytest.mark.parametrize("a,b", [
        (controlled_z((0, 1)), controlled_z((1, 2))),
        (controlled_x((0,), 1), single_qubit_gate("rz", 0, 0.1)),
        (controlled_x((0,), 1), controlled_x((1,), 2)),
        (single_qubit_gate("h", 0), controlled_z((0, 1))),
    ])
    def test_commutation_is_symmetric(self, a, b):
        assert gates_commute(a, b) == gates_commute(b, a)
