"""Ugly-input robustness of the TCP front-end (ISSUE satellite coverage).

Malformed JSON lines, oversized lines, clients that vanish mid-request or
mid-response: the server must log, count, and keep serving *other*
connections.  Also covers the new ``health`` verb, ``request_id`` echo and
client-side reconnect/retry.
"""

import json
import socket
import threading

import pytest

from repro.resilience import RetryPolicy
from repro.server import (
    ServingClient,
    ServingGateway,
    ServingUnavailable,
    wait_until_ready,
)
from repro.server.tcp import ServingServer
from repro.service import ArchitectureSpec, CompilationTask
from repro.store import ResultStore

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="module")
def robust_server(tmp_path_factory):
    """A live server whose ServerStats the tests can inspect directly."""
    gateway = ServingGateway(
        ResultStore(tmp_path_factory.mktemp("robust-store")),
        pool="thread", max_workers=2)
    box = {}
    ready = threading.Event()

    def runner():
        import asyncio

        async def main():
            server = ServingServer(gateway, "127.0.0.1", 0,
                                   max_line_bytes=64 * 1024)
            await server.start()
            box["server"] = server
            box["port"] = server.port
            ready.set()
            await server.serve_until_shutdown()
        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=30)
    assert wait_until_ready("127.0.0.1", box["port"], timeout=15)
    yield box["server"], box["port"]
    with ServingClient("127.0.0.1", box["port"]) as client:
        client.shutdown()
    thread.join(timeout=10)


def _raw_lines(port, payload_bytes):
    """Send raw bytes, return every response line before the server closes.

    Tolerates the server resetting the connection first (e.g. right after
    rejecting an oversized line): whatever was received is returned.
    """
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        data = b""
        try:
            sock.sendall(payload_bytes)
            sock.shutdown(socket.SHUT_WR)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        except OSError:
            pass
    return data.splitlines()


def _poll_until(predicate, timeout_s=5.0):
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestUglyInput:
    def test_malformed_json_line_gets_error_and_connection_survives(
            self, robust_server):
        server, port = robust_server
        before = server.stats.malformed_lines
        lines = _raw_lines(port, b"this is not json\n"
                                 b'{"op": "ping"}\n')
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["ok"] is False and "JSON" in first["error"]
        assert second["ok"] is True and second["op"] == "pong"
        assert server.stats.malformed_lines == before + 1

    def test_non_object_json_and_unknown_op_are_counted(self, robust_server):
        server, port = robust_server
        before = server.stats.malformed_lines
        lines = _raw_lines(port, b'[1, 2, 3]\n{"op": "frobnicate"}\n')
        assert all(not json.loads(line)["ok"] for line in lines)
        assert server.stats.malformed_lines == before + 2

    def test_oversized_line_rejected_and_listener_keeps_serving(
            self, robust_server):
        server, port = robust_server
        before = server.stats.oversized_lines
        huge = b'{"op": "compile", "task": "' + b"x" * (128 * 1024) + b'"}\n'
        lines = _raw_lines(port, huge)
        if lines:  # response can be lost to the connection reset
            payload = json.loads(lines[0])
            assert payload["ok"] is False
            assert "exceeds" in payload["error"]
        assert _poll_until(
            lambda: server.stats.oversized_lines == before + 1)
        # The listener is unharmed: a fresh connection works.
        with ServingClient("127.0.0.1", port) as client:
            assert client.ping()

    def test_disconnect_mid_request_only_kills_its_handler(self, robust_server):
        server, port = robust_server
        before = server.stats.disconnects_mid_request
        with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
            sock.sendall(b'{"op": "ping"')   # no newline: mid-request
        # Closing without the newline registers as a mid-request disconnect
        # (poll briefly: the handler notices asynchronously).
        assert _poll_until(
            lambda: server.stats.disconnects_mid_request == before + 1)
        with ServingClient("127.0.0.1", port) as client:
            assert client.ping()

    def test_bad_timeout_is_a_request_error(self, robust_server):
        _, port = robust_server
        lines = _raw_lines(
            port, b'{"op": "compile", "task": {}, "timeout_s": -3}\n')
        payload = json.loads(lines[0])
        assert payload["ok"] is False
        assert "timeout_s" in payload["error"]


class TestHealthVerb:
    def test_health_reports_supervision_surface(self, robust_server):
        _, port = robust_server
        with ServingClient("127.0.0.1", port) as client:
            health = client.health()
        assert health["ok"] is True
        assert health["status"] in ("ok", "degraded", "draining")
        assert health["breaker"]["state"] in ("closed", "open", "half_open")
        assert health["pool"]["kind"] == "thread"
        assert "workers_alive" in health["pool"]
        assert health["retry"]["max_attempts"] >= 1
        assert "fsyncs" in health["store"]
        assert "orphans_swept" in health["store"]

    def test_stats_include_server_counters(self, robust_server):
        _, port = robust_server
        with ServingClient("127.0.0.1", port) as client:
            stats = client.stats()
        assert "server" in stats
        for counter in ("connections", "malformed_lines", "oversized_lines",
                        "disconnects_mid_request", "disconnects_mid_response"):
            assert counter in stats["server"]


class TestRequestIdEcho:
    def test_compile_echoes_request_id(self, robust_server):
        _, port = robust_server
        task = CompilationTask("echo-1", SPEC, circuit_name="qft",
                               num_qubits=8)
        with ServingClient("127.0.0.1", port) as client:
            response = client.compile_task(task, request_id="my-token-17")
        assert response.ok
        assert response.request_id == "my-token-17"

    def test_non_compile_ops_echo_too(self, robust_server):
        _, port = robust_server
        lines = _raw_lines(
            port, b'{"op": "ping", "request_id": "abc"}\n')
        assert json.loads(lines[0])["request_id"] == "abc"


class TestClientRetry:
    def test_client_reconnects_after_server_drops_connection(
            self, robust_server):
        server, port = robust_server
        task = CompilationTask("retry-1", SPEC, circuit_name="graph",
                               num_qubits=8)
        client = ServingClient(
            "127.0.0.1", port,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01))
        try:
            # Sabotage the client's socket so the next round trip fails and
            # the bounded retry loop reconnects + resubmits.  (shutdown, not
            # close: the makefile handle keeps the fd alive through close.)
            client._sock.shutdown(socket.SHUT_RDWR)
            response = client.compile_task(task)
        finally:
            client.close()
        assert response.ok
        assert client.reconnects == 1

    def test_retry_budget_exhausts_to_serving_unavailable(self):
        # Nothing listens on this port: connect itself fails.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with pytest.raises(ServingUnavailable):
            ServingClient("127.0.0.1", dead_port, timeout=1.0)
