"""End-to-end TCP serving: server + wire protocol + synchronous client.

Runs a real :class:`ServingServer` on an ephemeral port (asyncio loop on a
background thread — the same harness ``python -m repro.server`` uses) and
drives it with blocking clients, exactly like CI's serving smoke job.
"""

import socket

import pytest

from repro.server import (
    ProtocolError,
    ServingClient,
    ServingGateway,
    spec_from_wire,
    spec_to_wire,
    task_from_wire,
    task_to_wire,
    wait_until_ready,
)
from repro.server.__main__ import _start_background_server
from repro.service import ArchitectureSpec, CompilationTask
from repro.store import ResultStore

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="module")
def serving_port(tmp_path_factory):
    gateway = ServingGateway(
        ResultStore(tmp_path_factory.mktemp("serving-store")),
        pool="thread", max_workers=2)
    thread, port = _start_background_server(gateway, "127.0.0.1")
    assert wait_until_ready("127.0.0.1", port, timeout=15)
    yield port
    with ServingClient("127.0.0.1", port) as client:
        client.shutdown()
    thread.join(timeout=10)


class TestWireForms:
    def test_task_round_trips(self):
        task = CompilationTask("t-1", SPEC, circuit_name="qft", num_qubits=10,
                               seed=11, mode="gate_only", alpha=2.0)
        assert task_from_wire(task_to_wire(task)) == task

    def test_qasm_task_round_trips(self):
        task = CompilationTask("t-2", SPEC, qasm="OPENQASM 2.0;\nqreg q[2];\n")
        assert task_from_wire(task_to_wire(task)) == task

    def test_zoned_spec_round_trips_through_json_lists(self):
        spec = ArchitectureSpec("mixed", lattice_rows=9, topology="zoned",
                                zone_layout=(("storage", 2), ("entangling", 4),
                                             ("storage", 3)))
        assert spec_from_wire(spec_to_wire(spec)) == spec

    def test_malformed_wire_payloads_raise(self):
        with pytest.raises(ProtocolError):
            task_from_wire({"architecture": spec_to_wire(SPEC)})  # no task_id
        with pytest.raises(ProtocolError):
            spec_from_wire({"hardware": "mixed", "bogus_field": 1})
        with pytest.raises(ProtocolError):
            spec_from_wire({"lattice_rows": 7})  # no hardware


class TestTcpServing:
    def test_ping(self, serving_port):
        with ServingClient("127.0.0.1", serving_port) as client:
            assert client.ping()

    def test_duplicate_request_hits_store_with_identical_digest(
            self, serving_port):
        task_a = CompilationTask("tcp-a", SPEC, circuit_name="graph",
                                 num_qubits=12, seed=5)
        task_b = CompilationTask("tcp-b", SPEC, circuit_name="graph",
                                 num_qubits=12, seed=5)
        with ServingClient("127.0.0.1", serving_port) as client:
            first = client.compile_task(task_a)
            second = client.compile_task(task_b)
        assert first.ok and first.source == "compiled"
        assert second.ok and second.source == "store"
        assert first.digest == second.digest
        # Library tasks are labelled by the library (same structure → same
        # name), so the served metrics equal the compiled metrics verbatim.
        assert second.metrics == first.metrics

    def test_stats_op_reports_counters(self, serving_port):
        with ServingClient("127.0.0.1", serving_port) as client:
            payload = client.stats()
        assert payload["ok"]
        assert "gateway" in payload and "store" in payload
        assert payload["gateway"]["requests"] >= 1

    def test_failed_request_is_isolated(self, serving_port):
        with ServingClient("127.0.0.1", serving_port) as client:
            bad = client.compile_task(CompilationTask("tcp-bad", SPEC))
            assert not bad.ok and "neither" in bad.error
            assert client.ping(), "connection must survive a failed request"

    def test_malformed_line_gets_error_response_not_disconnect(
            self, serving_port):
        with socket.create_connection(("127.0.0.1", serving_port),
                                      timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            line = stream.readline()
            assert b'"ok":false' in line.replace(b" ", b"")
            stream.write(b'{"op": "ping"}\n')
            stream.flush()
            assert b"pong" in stream.readline()
