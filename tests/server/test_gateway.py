"""ServingGateway semantics: hits, coalescing, admission, failure isolation.

Deterministic tests inject a controllable ``compile_fn`` (the pool contract:
``(task, store_spec, evaluate) -> CompiledArtifact``) so concurrency races
never decide outcomes; the end-to-end bit-identity tests run the real
pipeline through a thread pool with a real store.
"""

import asyncio
import hashlib
import threading

import pytest

from repro.mapping import MapperConfig
from repro.pipeline import compile_circuit
from repro.service import (
    ARCHITECTURE_CACHE,
    ArchitectureSpec,
    CompilationTask,
)
from repro.store import CompiledArtifact, ResultStore
from repro.server import ServingGateway

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


def fake_artifact(label: str) -> CompiledArtifact:
    lines = (f"G 0 h/single q=(0,) p=[] a=(0,) s=(0,)", f"# {label}")
    return CompiledArtifact(
        circuit_name=label, mode="hybrid", num_qubits=2,
        op_stream=lines,
        op_stream_sha256=hashlib.sha256("\n".join(lines).encode()).hexdigest(),
        num_operations=2, num_swaps=0, num_moves=0, runtime_seconds=0.0)


def library_task(task_id: str, circuit: str = "graph", qubits: int = 12,
                 seed: int = 7) -> CompilationTask:
    return CompilationTask(task_id, SPEC, circuit_name=circuit,
                           num_qubits=qubits, seed=seed)


class ControlledCompile:
    """compile_fn double: blocks on an event, counts calls, can raise."""

    def __init__(self, release: threading.Event,
                 fail_ids: frozenset = frozenset()) -> None:
        self.release = release
        self.fail_ids = fail_ids
        self.calls = []
        self._lock = threading.Lock()
        self.started = threading.Event()

    def __call__(self, task, store_spec, evaluate) -> CompiledArtifact:
        with self._lock:
            self.calls.append(task.task_id)
        self.started.set()
        assert self.release.wait(timeout=60), "test forgot to release compiles"
        if task.task_id in self.fail_ids:
            raise RuntimeError(f"injected failure for {task.task_id}")
        return fake_artifact(task.task_id)


async def _let_requests_reach_the_pool() -> None:
    """Yield the loop until queued coroutines have hit their await points."""
    for _ in range(10):
        await asyncio.sleep(0.01)


class TestCoalescing:
    def test_n_identical_concurrent_requests_trigger_exactly_one_compile(self):
        async def scenario():
            release = threading.Event()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", max_workers=2,
                                      evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                task = library_task("dup")
                pending = [asyncio.create_task(gateway.compile(task))
                           for _ in range(5)]
                await _let_requests_reach_the_pool()
                release.set()
                responses = await asyncio.gather(*pending)
                return gateway.stats, compile_fn.calls, responses

        stats, calls, responses = asyncio.run(scenario())
        assert len(calls) == 1, "exactly one compile must run"
        assert stats.compiles == 1
        assert stats.coalesced == 4
        assert stats.requests == 5
        assert all(response.ok for response in responses)
        assert {response.source for response in responses} == \
            {"compiled", "coalesced"}
        assert len({response.digest["sha256"]
                    for response in responses}) == 1

    def test_distinct_requests_compile_separately(self):
        async def scenario():
            release = threading.Event()
            release.set()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", max_workers=2,
                                      evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                first = await gateway.compile(library_task("a", qubits=12))
                second = await gateway.compile(library_task("b", qubits=14))
                return gateway.stats, first, second

        stats, first, second = asyncio.run(scenario())
        assert stats.compiles == 2 and stats.coalesced == 0
        assert first.ok and second.ok

    def test_sequential_duplicate_without_store_recompiles(self):
        """Coalescing only spans in-flight requests; across time the
        persistent store is the dedupe layer."""
        async def scenario():
            release = threading.Event()
            release.set()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                await gateway.compile(library_task("x"))
                await gateway.compile(library_task("x"))
                return gateway.stats

        stats = asyncio.run(scenario())
        assert stats.compiles == 2


class TestAdmission:
    def test_requests_beyond_max_pending_are_rejected(self):
        async def scenario():
            release = threading.Event()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", max_workers=1,
                                      max_pending=1, evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                blocked = asyncio.create_task(
                    gateway.compile(library_task("occupies", qubits=12)))
                await _let_requests_reach_the_pool()
                rejected = await gateway.compile(
                    library_task("overflow", qubits=14))
                # Identical in-flight requests still coalesce for free.
                rides_along = asyncio.create_task(
                    gateway.compile(library_task("occupies", qubits=12)))
                await _let_requests_reach_the_pool()
                release.set()
                first = await blocked
                waiter = await rides_along
                return gateway.stats, first, rejected, waiter

        stats, first, rejected, waiter = asyncio.run(scenario())
        assert first.ok and waiter.ok
        assert not rejected.ok
        assert rejected.error.startswith("rejected")
        assert stats.rejected == 1
        assert stats.compiles == 1 and stats.coalesced == 1

    def test_capacity_recovers_after_completion(self):
        async def scenario():
            release = threading.Event()
            release.set()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", max_pending=1,
                                      evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                await gateway.compile(library_task("a", qubits=12))
                after = await gateway.compile(library_task("b", qubits=14))
                return gateway.stats, after

        stats, after = asyncio.run(scenario())
        assert after.ok and stats.rejected == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ServingGateway(max_pending=0)
        with pytest.raises(ValueError):
            ServingGateway(pool="coroutine")


class TestFailureIsolation:
    def test_failing_compile_fails_request_but_not_gateway(self):
        async def scenario():
            release = threading.Event()
            release.set()
            compile_fn = ControlledCompile(release,
                                           fail_ids=frozenset({"bad"}))
            async with ServingGateway(pool="thread", evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                bad = await gateway.compile(library_task("bad", qubits=12))
                good = await gateway.compile(library_task("good", qubits=14))
                return gateway.stats, bad, good

        stats, bad, good = asyncio.run(scenario())
        assert not bad.ok and "injected failure" in bad.error
        assert good.ok
        assert stats.failures == 1 and stats.compiles == 1

    def test_failure_propagates_to_coalesced_waiters_and_is_not_cached(self):
        async def scenario():
            release = threading.Event()
            compile_fn = ControlledCompile(release,
                                           fail_ids=frozenset({"bad"}))
            async with ServingGateway(pool="thread", evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                task = library_task("bad")
                pending = [asyncio.create_task(gateway.compile(task))
                           for _ in range(3)]
                await _let_requests_reach_the_pool()
                release.set()
                responses = await asyncio.gather(*pending)
                # The failure is not cached: a retry compiles afresh.
                retry = await gateway.compile(task)
                return gateway.stats, compile_fn.calls, responses, retry

        stats, calls, responses, retry = asyncio.run(scenario())
        assert all(not response.ok for response in responses)
        assert all("injected failure" in response.error
                   for response in responses)
        assert calls == ["bad", "bad"], "retry must re-run the compile"
        assert not retry.ok  # fake still fails; the point is it re-ran
        assert stats.failures == len(responses) + 1

    def test_cancelled_primary_fails_waiters_instead_of_hanging(self):
        """Cancelling the primary request must resolve the shared in-flight
        future: coalesced waiters get an error response, never a hang."""
        async def scenario():
            release = threading.Event()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                task = library_task("doomed")
                primary = asyncio.create_task(gateway.compile(task))
                await _let_requests_reach_the_pool()
                waiter = asyncio.create_task(gateway.compile(task))
                await _let_requests_reach_the_pool()
                primary.cancel()
                release.set()
                waiter_response = await asyncio.wait_for(waiter, timeout=30)
                with pytest.raises(asyncio.CancelledError):
                    await primary
                # The key is free again: a retry starts a fresh compile.
                retry = await asyncio.wait_for(gateway.compile(task),
                                               timeout=30)
                return gateway.stats, waiter_response, retry

        stats, waiter_response, retry = asyncio.run(scenario())
        assert not waiter_response.ok
        assert "cancelled" in waiter_response.error
        assert retry.ok
        assert stats.compiles == 1  # only the retry completed as a compile

    def test_malformed_task_fails_without_touching_pool(self):
        async def scenario():
            release = threading.Event()
            compile_fn = ControlledCompile(release)
            async with ServingGateway(pool="thread", evaluate=False,
                                      compile_fn=compile_fn) as gateway:
                response = await gateway.compile(
                    CompilationTask("payload-less", SPEC))
                return gateway.stats, compile_fn.calls, response

        stats, calls, response = asyncio.run(scenario())
        assert not response.ok and "neither" in response.error
        assert calls == []
        assert stats.failures == 1


class TestStoreIntegration:
    def test_hit_skips_pool_and_digest_matches_fresh_compile(self, tmp_path):
        """Acceptance: a store-served result is byte-identical to a fresh
        compile of the same request (digest equality, end to end)."""
        async def scenario():
            store = ResultStore(tmp_path)
            async with ServingGateway(store, pool="thread",
                                      max_workers=2) as gateway:
                first = await gateway.compile(library_task("first"))
                second = await gateway.compile(library_task("second"))
                return gateway.stats, first, second

        stats, first, second = asyncio.run(scenario())
        assert first.ok and first.source == "compiled"
        assert second.ok and second.source == "store"
        assert stats.compiles == 1 and stats.store_hits == 1
        assert first.digest == second.digest

        # Reference: an in-process pipeline compile of the same request.
        task = library_task("reference")
        architecture, connectivity = ARCHITECTURE_CACHE.get(SPEC)
        context = compile_circuit(task.build_circuit(), architecture,
                                  MapperConfig.for_mode("hybrid", 1.0),
                                  connectivity=connectivity, alpha_ratio=1.0)
        fresh = context.require_result().op_stream_digest()
        assert second.digest == fresh
        assert second.metrics["delta_cz"] == context.require_metrics().delta_cz

    def test_concurrent_identical_requests_with_store_compile_once(self,
                                                                   tmp_path):
        async def scenario():
            store = ResultStore(tmp_path)
            async with ServingGateway(store, pool="thread",
                                      max_workers=2) as gateway:
                task = library_task("fanout")
                responses = await asyncio.gather(
                    *[gateway.compile(task) for _ in range(4)])
                return gateway.stats, responses

        stats, responses = asyncio.run(scenario())
        assert all(response.ok for response in responses)
        assert stats.compiles == 1
        assert stats.store_hits + stats.coalesced == 3
        assert len({response.digest["sha256"]
                    for response in responses}) == 1

    def test_qasm_text_request_dedupes_with_library_structure(self, tmp_path):
        from repro.circuit.library import get_benchmark
        from repro.circuit.qasm import dumps

        async def scenario():
            store = ResultStore(tmp_path)
            text = dumps(get_benchmark("graph", num_qubits=12, seed=7))
            async with ServingGateway(store, pool="thread") as gateway:
                compiled = await gateway.compile(library_task("lib"))
                served = await gateway.compile(
                    CompilationTask("as-qasm", SPEC, qasm=text))
                return gateway.stats, compiled, served

        stats, compiled, served = asyncio.run(scenario())
        assert compiled.ok and served.ok
        assert served.source == "store", \
            "same structure submitted as QASM must hit the library entry"
        assert served.digest == compiled.digest
        assert served.metrics["circuit_name"] == "as-qasm"
        assert stats.compiles == 1
