"""Gateway counter integrity under mixed load (ISSUE satellite).

Every admitted request must land in exactly one outcome bucket, and the
registry-backed counters must equal what a client independently observes
from the responses themselves.  This is the regression net for the
historical drift bug where a shed request (degraded lane full) bumped
``shed`` at the raise site *and* ``failures`` in the outer handler.
"""

import asyncio
import hashlib
import threading
from collections import Counter

from repro.service import ArchitectureSpec, CompilationTask
from repro.store import CompiledArtifact, ResultStore
from repro.server import ServingGateway
from repro.telemetry.registry import get_registry

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)

#: Outcome buckets of GatewayStats: every request lands in exactly one.
OUTCOMES = ("store_hits", "coalesced", "compiles", "degraded", "failures",
            "rejected", "shed")


def _task(task_id: str, circuit: str = "graph", qubits: int = 12,
          seed: int = 7) -> CompilationTask:
    return CompilationTask(task_id, SPEC, circuit_name=circuit,
                          num_qubits=qubits, seed=seed)


def fake_artifact(label: str) -> CompiledArtifact:
    lines = ("G 0 h/single q=(0,) p=[] a=(0,) s=(0,)", f"# {label}")
    return CompiledArtifact(
        circuit_name=label, mode="hybrid", num_qubits=2,
        op_stream=lines,
        op_stream_sha256=hashlib.sha256("\n".join(lines).encode()).hexdigest(),
        num_operations=2, num_swaps=0, num_moves=0, runtime_seconds=0.0)


class ControlledCompile:
    """compile_fn double: blocks on an event, can fail designated ids."""

    def __init__(self, release: threading.Event,
                 fail_ids: frozenset = frozenset()) -> None:
        self.release = release
        self.fail_ids = fail_ids

    def __call__(self, task, store_spec, evaluate) -> CompiledArtifact:
        assert self.release.wait(timeout=60), "test forgot to release"
        if task.task_id in self.fail_ids:
            raise RuntimeError(f"injected failure for {task.task_id}")
        return fake_artifact(task.task_id)


def _classify(response) -> str:
    """Independent client-side view of which bucket a response fell in."""
    if response.ok:
        return {"store": "store_hits", "coalesced": "coalesced",
                "compiled": "compiles", "degraded": "degraded"}[response.source]
    if response.error.startswith("rejected"):
        return "rejected"
    if response.error_class == "shed":
        return "shed"
    return "failures"


async def _settle():
    for _ in range(10):
        await asyncio.sleep(0.01)


def _assert_counts_match(gateway, responses):
    """The three views must agree: responses, stats object, registry."""
    observed = Counter(_classify(response) for response in responses)
    stats = gateway.stats.as_dict()

    assert stats["requests"] == len(responses)
    assert sum(stats[bucket] for bucket in OUTCOMES) == stats["requests"], \
        f"outcome buckets must partition requests: {stats}"
    for bucket in OUTCOMES:
        assert stats[bucket] == observed.get(bucket, 0), \
            f"{bucket}: gateway says {stats[bucket]}, " \
            f"client observed {observed.get(bucket, 0)}"

    counters = get_registry().snapshot()["counters"]
    instance = gateway.stats.instance
    for field, value in stats.items():
        series = f'repro_gateway_{field}_total{{instance="{instance}"}}'
        assert counters[series] == value, \
            f"registry snapshot diverged from stats for {series}"
    histograms = get_registry().snapshot()["histograms"]
    latency = histograms[
        f'repro_gateway_request_seconds{{instance="{instance}"}}']
    assert latency["count"] == len(responses)


def test_mixed_load_counters_match_independent_observation():
    """Success, coalescing, rejection, task failure, malformed input,
    degraded fallback, lane-full shed and draining shed in one run."""

    async def scenario():
        release = threading.Event()
        compile_fn = ControlledCompile(release,
                                       fail_ids=frozenset({"bad"}))
        responses = []
        async with ServingGateway(pool="thread", max_workers=2,
                                  max_pending=2, max_degraded=1,
                                  evaluate=False,
                                  compile_fn=compile_fn) as gateway:
            # Two primaries occupy max_pending; two waiters coalesce.
            dup = _task("dup", qubits=12)
            blocked = [asyncio.create_task(gateway.compile(dup))
                       for _ in range(3)]
            blocked.append(asyncio.create_task(
                gateway.compile(_task("other", qubits=14))))
            await _settle()
            # Admission full: a new key is rejected.
            responses.append(await gateway.compile(_task("overflow",
                                                         qubits=16)))
            release.set()
            responses.extend(await asyncio.gather(*blocked))

            # Task-level failure and malformed (pool-less) failure.
            responses.append(await gateway.compile(_task("bad", qubits=12)))
            responses.append(await gateway.compile(
                CompilationTask("payload-less", SPEC)))

            # Open the breaker: requests flow through the degraded lane.
            for _ in range(gateway.breaker.failure_threshold):
                gateway.breaker.record_failure()
            assert gateway.breaker.state == "open"
            release.clear()
            occupying = asyncio.create_task(
                gateway.compile(_task("deg-a", qubits=18)))
            await _settle()
            # Lane (max_degraded=1) is busy: the next request is shed —
            # and must NOT also be counted as a failure (the drift bug).
            responses.append(await gateway.compile(_task("deg-b",
                                                         qubits=20)))
            release.set()
            responses.append(await occupying)

            # Draining: late requests are shed.
            assert await gateway.drain(timeout_s=10)
            responses.append(await gateway.compile(_task("late", qubits=22)))
            return gateway, responses

    gateway, responses = asyncio.run(scenario())
    observed = Counter(_classify(response) for response in responses)
    assert observed == Counter({"compiles": 2, "coalesced": 2, "rejected": 1,
                                "failures": 2, "degraded": 1, "shed": 2})
    _assert_counts_match(gateway, responses)


def test_store_hits_counted_once_per_served_request(tmp_path):
    """Real pipeline + persistent store: hits and compiles partition the
    request count, and the registry sees the same numbers."""

    async def scenario():
        store = ResultStore(tmp_path / "store")
        async with ServingGateway(store, pool="thread",
                                  max_workers=2) as gateway:
            responses = [await gateway.compile(_task("first"))]
            responses.append(await gateway.compile(_task("repeat")))
            responses.append(await gateway.compile(_task("fresh",
                                                         circuit="qft",
                                                         qubits=8)))
            return gateway, responses

    gateway, responses = asyncio.run(scenario())
    assert [response.source for response in responses] == \
        ["compiled", "store", "compiled"]
    _assert_counts_match(gateway, responses)
