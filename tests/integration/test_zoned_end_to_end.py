"""End-to-end tests for zoned neutral-atom architectures.

The acceptance contract of the zoned scenario: a zoned preset compiles the
paper's benchmarks through :func:`repro.pipeline.compile_circuit` and the
:class:`~repro.service.BatchCompiler`, **every** entangling (2Q+) gate in
the emitted operation stream executes with all of its atoms inside an
entangling zone, corridor transit shows up in move durations, and the
cross-round routing caches stay bit-identical to the from-scratch reference
path on zoned topologies too.
"""

from __future__ import annotations

import pytest

from repro import MapperConfig, compile_circuit
from repro.circuit import QuantumCircuit, decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.hardware import SiteConnectivity, preset
from repro.mapping import HybridMapper
from repro.service import ArchitectureSpec, BatchCompiler, CompilationTask
from repro.workloads import build_scaled_architecture


def _zoned_architecture(lattice_rows: int = 9, num_atoms: int = 24):
    architecture = preset("zoned", lattice_rows=lattice_rows, num_atoms=num_atoms)
    return architecture, SiteConnectivity(architecture)


def _assert_entangling_gates_in_entangling_zones(architecture, result):
    """Scheduling-level zone check over the emitted operation stream."""
    checked = 0
    for op in result.circuit_gate_ops():
        gate = op.gate
        if not gate.is_entangling or len(gate.qubits) < 2:
            continue
        checked += 1
        for site in op.sites:
            assert architecture.is_entangling_site(site), (
                f"gate {gate.name} executed with an atom at site {site}, "
                f"which lies in a storage zone")
    assert checked > 0, "the circuit must exercise entangling gates"
    # SWAPs are entangling operations too (three CZ pulses).
    for op in result.swap_ops():
        for site in (op.site_a, op.site_b):
            assert architecture.is_entangling_site(site)


class TestZonedCompileCircuit:
    @pytest.mark.parametrize("circuit_name,num_qubits",
                             [("qft", 10), ("graph", 12)])
    def test_benchmark_compiles_and_respects_zones(self, circuit_name, num_qubits):
        architecture, connectivity = _zoned_architecture()
        circuit = decompose_mcx_to_mcz(
            get_benchmark(circuit_name, num_qubits=num_qubits, seed=2024))
        context = compile_circuit(circuit, architecture, MapperConfig.hybrid(1.0),
                                  connectivity=connectivity, alpha_ratio=1.0)
        result = context.require_result()
        metrics = context.require_metrics()
        _assert_entangling_gates_in_entangling_zones(architecture, result)
        assert result.num_moves > 0, "zoned routing must shuttle into the zone"
        assert metrics.delta_t_us > 0
        reference_schedule, mapped_schedule = context.require_schedules()
        assert mapped_schedule.makespan > reference_schedule.makespan

    def test_scaled_zoned_preset_compiles(self):
        architecture = build_scaled_architecture("mixed", 0.12, topology="zoned")
        assert architecture.topology.kind == "zoned"
        connectivity = SiteConnectivity(architecture)
        circuit = decompose_mcx_to_mcz(get_benchmark("qft", num_qubits=12, seed=2024))
        context = compile_circuit(circuit, architecture, MapperConfig.hybrid(1.0),
                                  connectivity=connectivity)
        _assert_entangling_gates_in_entangling_zones(
            architecture, context.require_result())

    def test_multiqubit_gates_respect_zones(self):
        architecture, connectivity = _zoned_architecture()
        circuit = QuantumCircuit(8, name="zoned-mq")
        circuit.h(0)
        circuit.ccz(0, 3, 6)
        circuit.cz(1, 7)
        circuit.cccz(0, 2, 4, 6)
        circuit.ccz(5, 6, 7)
        context = compile_circuit(circuit, architecture, MapperConfig.hybrid(1.0),
                                  connectivity=connectivity)
        _assert_entangling_gates_in_entangling_zones(
            architecture, context.require_result())


class TestZonedBatchCompiler:
    def test_zoned_specs_compile_through_the_service(self):
        spec = ArchitectureSpec.scaled("mixed", 0.12, topology="zoned")
        tasks = [
            CompilationTask("zoned-qft", spec, circuit_name="qft", num_qubits=10),
            CompilationTask("zoned-graph", spec, circuit_name="graph", num_qubits=12),
        ]
        batch = BatchCompiler(max_workers=2, keep_results=True).compile(tasks)
        assert batch.ok, [entry.error for entry in batch.failed]
        architecture = spec.build()
        for entry in batch.succeeded:
            assert entry.result is not None
            _assert_entangling_gates_in_entangling_zones(architecture, entry.result)


class TestZonedCorridorTransit:
    def test_moves_crossing_corridors_carry_the_penalty(self):
        architecture, connectivity = _zoned_architecture()
        topology = architecture.topology
        assert topology.has_travel_penalties
        circuit = decompose_mcx_to_mcz(get_benchmark("qft", num_qubits=10, seed=2024))
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                              connectivity=connectivity)
        result = mapper.map(circuit)
        crossing_moves = 0
        for move in result.moves():
            plain = (abs(move.destination_position[0] - move.source_position[0])
                     + abs(move.destination_position[1] - move.source_position[1]))
            crossings = topology.zone_crossings(move.source, move.destination)
            assert move.travel_distance_um is not None
            assert move.rectangular_distance == pytest.approx(
                plain + topology.corridor_transit_um * crossings)
            if crossings:
                crossing_moves += 1
        assert crossing_moves > 0, "shuttles must cross the storage corridor"

    def test_corridor_penalty_increases_estimated_time(self):
        def delta_t(corridor):
            architecture = preset("zoned", lattice_rows=9, num_atoms=24,
                                  corridor_transit_um=corridor)
            connectivity = SiteConnectivity(architecture)
            circuit = decompose_mcx_to_mcz(
                get_benchmark("qft", num_qubits=10, seed=2024))
            context = compile_circuit(circuit, architecture,
                                      MapperConfig.hybrid(1.0),
                                      connectivity=connectivity)
            return context.require_metrics().delta_t_us

        assert delta_t(30.0) > delta_t(0.0)


class TestZonedDifferential:
    """Cross-round caches must stay bit-identical on zoned topologies."""

    @pytest.mark.parametrize("circuit_name,num_qubits",
                             [("qft", 10), ("graph", 12), ("qpe", 8)])
    def test_cache_on_off_streams_identical(self, circuit_name, num_qubits):
        architecture, connectivity = _zoned_architecture()
        circuit = decompose_mcx_to_mcz(
            get_benchmark(circuit_name, num_qubits=num_qubits, seed=2024))
        config = MapperConfig.hybrid(1.0)
        cached = HybridMapper(architecture, config,
                              connectivity=connectivity).map(circuit)
        reference = HybridMapper(
            architecture, config.with_overrides(cross_round_cache=False),
            connectivity=connectivity).map(circuit)
        assert cached.operations == reference.operations
        assert cached.op_stream_digest() == reference.op_stream_digest()
        assert cached.final_atom_map == reference.final_atom_map
