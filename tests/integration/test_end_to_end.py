"""End-to-end integration tests: benchmark -> mapper -> scheduler -> evaluation.

These tests exercise the full pipeline on scaled-down versions of the paper's
workloads and assert the *qualitative* claims of Section 4.2:

* shuttling-only mapping adds no CZ gates; gate-based mapping is orders of
  magnitude faster in circuit time,
* on shuttling-optimised hardware the shuttling capability gives the smaller
  fidelity decrease; on gate-optimised hardware the gate capability does,
* the hybrid mapper (best decision ratio) never does meaningfully worse than
  the better of the two pure strategies.
"""

import pytest

from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.evaluation import evaluate, run_mode_comparison
from repro.hardware import SiteConnectivity
from repro.hardware.presets import gate_optimised, mixed, shuttling_optimised
from repro.mapping import HybridMapper, MapperConfig
from repro.scheduling import Scheduler


QUICK_ALPHAS = (0.05, 1.0, 20.0)


@pytest.fixture(scope="module")
def graph_circuit():
    # 28 qubits on a 30-atom / 49-site lattice: dense enough that routing
    # effort differs clearly between the two capabilities.
    return get_benchmark("graph", num_qubits=28, seed=11)


@pytest.fixture(scope="module")
def reversible_circuit():
    return decompose_mcx_to_mcz(get_benchmark("gray", num_qubits=14, seed=11))


class TestQualitativeClaims:
    def test_shuttling_only_adds_no_cz_and_gate_only_is_fast(self, graph_circuit):
        architecture = mixed(lattice_rows=7, num_atoms=30)
        results = run_mode_comparison(graph_circuit, architecture, alpha_grid=(1.0,))
        shuttle = results["shuttling_only"]
        gate = results["gate_only"]
        assert shuttle.delta_cz == 0
        assert gate.delta_cz > 0
        assert gate.delta_t_us < shuttle.delta_t_us

    def test_shuttling_hardware_prefers_shuttling(self, graph_circuit):
        architecture = shuttling_optimised(lattice_rows=7, num_atoms=30)
        results = run_mode_comparison(graph_circuit, architecture,
                                      alpha_grid=QUICK_ALPHAS)
        assert results["shuttling_only"].delta_fidelity < results["gate_only"].delta_fidelity
        assert results["hybrid"].delta_fidelity <= \
            results["shuttling_only"].delta_fidelity + 1e-6

    def test_gate_hardware_prefers_gates(self, graph_circuit):
        architecture = gate_optimised(lattice_rows=7, num_atoms=30)
        results = run_mode_comparison(graph_circuit, architecture,
                                      alpha_grid=QUICK_ALPHAS)
        assert results["gate_only"].delta_fidelity < results["shuttling_only"].delta_fidelity
        assert results["hybrid"].delta_fidelity <= results["gate_only"].delta_fidelity + 1e-6

    def test_hybrid_never_worse_than_best_pure_mode_on_mixed_hardware(
            self, reversible_circuit):
        architecture = mixed(lattice_rows=7, num_atoms=30)
        results = run_mode_comparison(reversible_circuit, architecture,
                                      alpha_grid=QUICK_ALPHAS)
        best_pure = min(results["shuttling_only"].delta_fidelity,
                        results["gate_only"].delta_fidelity)
        assert results["hybrid"].delta_fidelity <= best_pure + 1e-6


class TestPipelineConsistency:
    @pytest.mark.parametrize("hardware_factory", [shuttling_optimised, gate_optimised,
                                                  mixed])
    def test_full_pipeline_on_multiqubit_benchmark(self, hardware_factory,
                                                   reversible_circuit):
        architecture = hardware_factory(lattice_rows=7, num_atoms=30)
        connectivity = SiteConnectivity(architecture)
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                              connectivity=connectivity)
        result = mapper.map(reversible_circuit)
        result.verify_complete()
        schedule = Scheduler(architecture, connectivity).schedule_result(result)
        schedule.verify_no_atom_overlap()
        metrics = evaluate(reversible_circuit, result, architecture,
                           connectivity=connectivity)
        assert metrics.delta_fidelity >= 0
        assert metrics.mapped_makespan_us >= metrics.original_makespan_us

    def test_delta_cz_counts_agree_between_result_and_schedule(self, graph_circuit):
        architecture = mixed(lattice_rows=7, num_atoms=30)
        mapper = HybridMapper(architecture, MapperConfig.gate_only())
        result = mapper.map(graph_circuit)
        metrics = evaluate(graph_circuit, result, architecture)
        assert metrics.delta_cz == result.additional_cz_count()

    def test_qft_and_qpe_complete_on_mixed_hardware(self):
        architecture = mixed(lattice_rows=7, num_atoms=30)
        connectivity = SiteConnectivity(architecture)
        for name in ("qft", "qpe"):
            circuit = get_benchmark(name, num_qubits=12)
            result = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                                  connectivity=connectivity).map(circuit)
            result.verify_complete()
            metrics = evaluate(circuit, result, architecture, connectivity=connectivity)
            assert metrics.delta_fidelity >= 0


class TestIncrementalCostEngineEquivalence:
    """The incremental routing-cost engine must not change one emitted op.

    Perf PRs are only allowed to make the mapper faster: the SWAP/chain
    selections — and therefore the entire operation stream and every Table-1
    metric derived from it — have to stay bit-identical to the naive
    full-recomputation scoring.
    """

    @pytest.mark.parametrize("mode", ["hybrid", "gate_only", "shuttling_only"])
    @pytest.mark.parametrize("circuit_fixture",
                             ["graph_circuit", "reversible_circuit"])
    def test_operation_stream_bit_identical_without_engine(
            self, request, mode, circuit_fixture):
        circuit = request.getfixturevalue(circuit_fixture)
        architecture = mixed(lattice_rows=7, num_atoms=30)
        connectivity = SiteConnectivity(architecture)
        config = {"hybrid": MapperConfig.hybrid(1.0),
                  "gate_only": MapperConfig.gate_only(),
                  "shuttling_only": MapperConfig.shuttling_only()}[mode]

        fast_mapper = HybridMapper(architecture, config, connectivity=connectivity)
        naive_mapper = HybridMapper(architecture, config, connectivity=connectivity)
        naive_mapper.gate_router.incremental = False
        naive_mapper.shuttling_router.incremental = False

        fast = fast_mapper.map(circuit)
        naive = naive_mapper.map(circuit)

        assert fast.operations == naive.operations
        assert fast.num_swaps == naive.num_swaps
        assert fast.num_moves == naive.num_moves
        assert fast.final_qubit_map == naive.final_qubit_map
        assert fast.final_atom_map == naive.final_atom_map
