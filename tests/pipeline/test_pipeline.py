"""Tests for the pass-based compilation pipeline.

The crucial property: the pipeline is a *refactoring* of the hand-wired
decompose → map → schedule → evaluate flow, so its operation streams and
metrics are identical to driving :class:`HybridMapper` directly.
"""

import time

import pytest

from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.evaluation import evaluate
from repro.hardware import SiteConnectivity
from repro.hardware.presets import mixed
from repro.mapping import HybridMapper, MapperConfig
from repro.pipeline import (
    CompilationContext,
    CompilationPass,
    DecomposePass,
    EvaluatePass,
    InitialLayoutPass,
    PassManager,
    PipelineError,
    RoutingPass,
    SchedulePass,
    compile_circuit,
    default_passes,
    default_pipeline,
)


@pytest.fixture(scope="module")
def architecture():
    return mixed(lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="module")
def connectivity(architecture):
    return SiteConnectivity(architecture)


@pytest.fixture(scope="module")
def graph_circuit():
    return get_benchmark("graph", num_qubits=20, seed=9)


@pytest.fixture(scope="module")
def reversible_circuit():
    return get_benchmark("gray", num_qubits=12, seed=9)


class TestDefaultPipeline:
    def test_pass_order(self):
        names = default_pipeline().pass_names()
        assert names == ["decompose", "initial_layout", "routing",
                         "schedule", "evaluate"]

    def test_routing_only_pipeline_skips_evaluation(self, architecture,
                                                    connectivity, graph_circuit):
        context = compile_circuit(graph_circuit, architecture,
                                  MapperConfig.hybrid(1.0),
                                  connectivity=connectivity, evaluate=False)
        assert context.result is not None
        assert context.metrics is None
        assert context.mapped_schedule is None
        assert set(context.pass_seconds) == {"decompose", "initial_layout",
                                             "routing"}

    def test_context_products_all_populated(self, architecture, connectivity,
                                            graph_circuit):
        context = compile_circuit(graph_circuit, architecture,
                                  MapperConfig.hybrid(1.0),
                                  connectivity=connectivity, alpha_ratio=1.0)
        assert context.source_circuit is graph_circuit
        assert context.initial_state is not None
        context.result.verify_complete()
        assert context.reference_schedule is not None
        assert context.mapped_schedule is not None
        assert context.metrics.alpha_ratio == pytest.approx(1.0)
        assert all(seconds >= 0 for seconds in context.pass_seconds.values())

    def test_connectivity_is_built_once_and_shared(self, architecture,
                                                   graph_circuit):
        context = compile_circuit(graph_circuit, architecture,
                                  MapperConfig.shuttling_only())
        assert context.connectivity is not None
        assert context.connectivity is context.initial_state.connectivity


class TestEquivalenceWithDirectMapping:
    @pytest.mark.parametrize("mode", ["hybrid", "gate_only", "shuttling_only"])
    @pytest.mark.parametrize("circuit_fixture",
                             ["graph_circuit", "reversible_circuit"])
    def test_operations_and_metrics_match_hand_wired_flow(
            self, request, architecture, connectivity, mode, circuit_fixture):
        circuit = request.getfixturevalue(circuit_fixture)
        config = MapperConfig.for_mode(mode)
        alpha = 1.0 if mode == "hybrid" else None

        native = decompose_mcx_to_mcz(circuit)
        mapper = HybridMapper(architecture, config, connectivity=connectivity)
        direct_result = mapper.map(native)
        direct_metrics = evaluate(native, direct_result, architecture,
                                  connectivity=connectivity, alpha_ratio=alpha)

        context = compile_circuit(circuit, architecture, config,
                                  connectivity=connectivity, alpha_ratio=alpha)

        assert context.result.operations == direct_result.operations
        assert context.result.num_swaps == direct_result.num_swaps
        assert context.result.num_moves == direct_result.num_moves
        assert context.metrics.delta_cz == direct_metrics.delta_cz
        assert context.metrics.delta_t_us == pytest.approx(direct_metrics.delta_t_us)
        assert context.metrics.delta_fidelity == pytest.approx(
            direct_metrics.delta_fidelity)
        assert context.metrics.circuit_name == direct_metrics.circuit_name


class TestPassComposition:
    def test_custom_pass_sees_and_extends_context(self, architecture,
                                                  connectivity, graph_circuit):
        class CountEntanglingPass(CompilationPass):
            name = "count_entangling"

            def run(self, context):
                context.artifacts["entangling"] = \
                    context.circuit.num_entangling_gates()

        passes = default_passes(evaluate=False)
        passes.insert(1, CountEntanglingPass())
        context = compile_circuit(graph_circuit, architecture,
                                  MapperConfig.hybrid(1.0),
                                  connectivity=connectivity,
                                  pass_manager=PassManager(passes))
        assert context.artifacts["entangling"] == \
            graph_circuit.num_entangling_gates()
        assert "count_entangling" in context.pass_seconds

    def test_caller_supplied_initial_state_is_respected(self, architecture,
                                                        connectivity,
                                                        graph_circuit):
        from repro.mapping.initial_layout import compact_layout
        state = compact_layout(architecture, graph_circuit.num_qubits,
                               connectivity)
        context = CompilationContext(
            circuit=graph_circuit, architecture=architecture,
            config=MapperConfig.hybrid(1.0), connectivity=connectivity,
            initial_state=state)
        default_pipeline(evaluate=False).run(context)
        assert context.initial_state is state
        context.result.verify_complete()

    def test_layout_strategy_must_be_known(self):
        with pytest.raises(ValueError):
            InitialLayoutPass("does-not-exist")

    def test_repeated_pass_accumulates_time(self, architecture, connectivity,
                                            graph_circuit):
        manager = PassManager([DecomposePass(), DecomposePass()])
        context = CompilationContext(
            circuit=graph_circuit, architecture=architecture,
            config=MapperConfig.hybrid(1.0), connectivity=connectivity)
        manager.run(context)
        assert list(context.pass_seconds) == ["decompose"]

    def test_raising_pass_still_books_its_own_time(self, architecture,
                                                   connectivity,
                                                   graph_circuit):
        """A failing pass must record its wall time under its own name.

        Previously the timing was only written after a successful run, so
        the time burnt in a raising ``evaluate`` pass vanished and harness
        reports mis-attributed the compile time to the routing stage.
        """
        class ExplodingEvaluatePass(CompilationPass):
            name = "evaluate"

            def run(self, context):
                time.sleep(0.01)
                raise RuntimeError("boom")

        passes = default_passes(evaluate=False) + [ExplodingEvaluatePass()]
        context = CompilationContext(
            circuit=graph_circuit, architecture=architecture,
            config=MapperConfig.hybrid(1.0), connectivity=connectivity)
        with pytest.raises(RuntimeError, match="boom"):
            PassManager(passes).run(context)
        assert context.pass_seconds["evaluate"] >= 0.01
        assert "routing" in context.pass_seconds


class TestPassOrderingErrors:
    def test_schedule_before_routing_raises(self, architecture, graph_circuit):
        context = CompilationContext(circuit=graph_circuit,
                                     architecture=architecture,
                                     config=MapperConfig.hybrid(1.0))
        with pytest.raises(PipelineError):
            SchedulePass().run(context)

    def test_evaluate_before_schedule_raises(self, architecture, graph_circuit):
        context = CompilationContext(circuit=graph_circuit,
                                     architecture=architecture,
                                     config=MapperConfig.hybrid(1.0))
        RoutingPass().run(context)
        with pytest.raises(PipelineError):
            EvaluatePass().run(context)

    def test_require_metrics_raises_without_evaluation(self, architecture,
                                                       graph_circuit):
        context = compile_circuit(graph_circuit, architecture,
                                  MapperConfig.hybrid(1.0), evaluate=False)
        with pytest.raises(PipelineError):
            context.require_metrics()
