"""Fault-injection (chaos) suite for the supervised serving runtime.

Drives a real TCP serving stack — gateway, supervised pool, persistent
store, wire protocol, synchronous client — under a deterministic
:class:`~repro.resilience.FaultPlan`:

* worker **crashes** on two designated first-occurrence compiles
  (re-dispatched transparently by the supervised pool),
* one worker **hang** (deadline-killed; the client resubmits on the
  structured *retryable* error),
* one **corrupted** store entry (quarantined and recompiled transparently
  on its next lookup),
* one **severed** TCP connection mid-response (the client's bounded
  reconnect/retry resubmits; the answer comes from the store).

Invariants asserted (ISSUE acceptance criteria):

* every one of the 25 requests eventually completes successfully,
* no request is doubly compiled beyond the two *legitimate* recompiles
  (post-corruption, post-deadline-kill) — compile counts are exact,
* no failure is ever cached: the store ends with exactly one quarantined
  file and every surviving entry verifies,
* op-stream digests under faults are byte-identical to a fault-free run.
"""

import asyncio
import threading

import pytest

from repro.resilience import FaultPlan, FaultSpec, FaultyCompile, RetryPolicy
from repro.server import (
    ServingClient,
    ServingGateway,
    wait_until_ready,
)
from repro.server.tcp import ServingServer
from repro.service import ArchitectureSpec, CompilationTask
from repro.store import ResultStore

pytestmark = pytest.mark.chaos

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)

#: 4 distinct circuit structures; first occurrences get the faults.
STRUCTURES = [
    ("qft", 8),
    ("graph", 8),
    ("qpe", 8),
    ("qft", 10),
]


def _workload():
    """25 requests cycling over the 4 structures, unique task ids."""
    tasks = []
    for index in range(25):
        name, qubits = STRUCTURES[index % len(STRUCTURES)]
        tasks.append(CompilationTask(
            f"{name}{qubits}-r{index:02d}", SPEC,
            circuit_name=name, num_qubits=qubits))
    return tasks


def _start_server(gateway, fault_plan=None):
    box = {}
    ready = threading.Event()

    def runner():
        async def main():
            server = ServingServer(gateway, "127.0.0.1", 0,
                                   fault_plan=fault_plan)
            await server.start()
            box["server"] = server
            box["port"] = server.port
            ready.set()
            await server.serve_until_shutdown()
        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=30)
    assert wait_until_ready("127.0.0.1", box["port"], timeout=15)
    return thread, box["server"], box["port"]


def _run_workload(port, tasks):
    """Submit every task sequentially; resubmit on *retryable* failures.

    Connection-level failures (the severed response) are retried inside
    :class:`ServingClient`; request-level retryable failures (the deadline
    kill) are the caller's decision — this harness resubmits up to 3 times,
    exactly what the ``error_class`` taxonomy tells a production client to
    do.
    """
    digests = {}
    retryable_resubmits = 0
    with ServingClient("127.0.0.1", port,
                       retry_policy=RetryPolicy(max_attempts=4,
                                                base_delay_s=0.02)) as client:
        for task in tasks:
            response = None
            for _attempt in range(4):
                response = client.compile_task(task)
                if response.ok or response.error_class != "retryable":
                    break
                retryable_resubmits += 1
            assert response is not None and response.ok, \
                f"{task.task_id} never completed: {response.error!r} " \
                f"({response.error_class})"
            digests[task.task_id] = response.digest["sha256"]
    return digests, retryable_resubmits


def _clean_run(tmp_path, tasks):
    """The fault-free reference: same workload, pristine stack."""
    gateway = ServingGateway(ResultStore(tmp_path / "clean-store"),
                             pool="thread", max_workers=2)
    thread, _server, port = _start_server(gateway)
    try:
        digests, resubmits = _run_workload(port, tasks)
        assert resubmits == 0
    finally:
        with ServingClient("127.0.0.1", port) as client:
            client.shutdown()
        thread.join(timeout=10)
    assert gateway.stats.failures == 0
    return digests


def test_25_request_load_under_faults(tmp_path):
    tasks = _workload()
    clean_digests = _clean_run(tmp_path, tasks)

    plan = FaultPlan(str(tmp_path / "ledger"), (
        # Two worker crashes on first-occurrence compiles: the supervised
        # pool re-dispatches them, no client-visible failure.
        FaultSpec("crash", "worker", match="graph8-r01"),
        FaultSpec("crash", "worker", match="qft10-r03"),
        # One hang: deadline-killed by the pool; the client resubmits on
        # the structured retryable error.
        FaultSpec("hang", "worker", match="qpe8-r02", hang_s=6.0),
        # One corrupted store entry (fires on the first put): quarantined
        # and recompiled transparently on the next lookup of its key.
        FaultSpec("corrupt", "store-put"),
        # One severed connection mid-compile-response: the client
        # reconnects and resubmits.
        FaultSpec("sever", "tcp-response", match="compile"),
    ))
    store = ResultStore(tmp_path / "chaos-store", fault_plan=plan)
    gateway = ServingGateway(
        store, pool="thread", max_workers=2,
        deadline_s=3.0,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.02),
        compile_fn=FaultyCompile(plan))
    thread, server, port = _start_server(gateway, fault_plan=plan)
    try:
        digests, resubmits = _run_workload(port, tasks)

        # Every injected fault actually fired.
        assert plan.fired() == 5

        # Byte-identity: op streams under faults equal the fault-free run.
        assert digests == clean_digests

        # The deadline-killed request needed exactly one resubmission.
        assert resubmits == 1

        # No request doubly compiled: 4 structure-first compiles + 1
        # post-corruption recompile (the killed hang attempt never counts —
        # it produced no result).
        assert gateway.stats.compiles == 5
        assert gateway.stats.failures == 1          # the deadline kill
        # r00..r03 compiled (first occurrences); r04..r24 are store hits.
        assert gateway.stats.store_hits == len(tasks) - 4

        # Supervision observed what the plan injected.
        pool_stats = gateway.stats_dict()["supervision"]
        assert pool_stats["crashes"] == 2
        assert pool_stats["retries"] == 2
        assert pool_stats["deadline_kills"] == 1
        # Thread "crashes" are in-band (the worker survives); only the
        # deadline kill condemns and replaces a worker.
        assert pool_stats["workers_recycled"] == 1

        # Failures are never cached: exactly the one corrupted entry is
        # quarantined, and everything still stored verifies on read.
        assert store.stats.corruptions == 1
        assert len(store.quarantined()) == 1

        # The severed response was counted and the client recovered.
        assert server.stats.disconnects_mid_response == 1

        # Fresh duplicate requests are all served from the (healthy) store
        # with the reference digests.
        with ServingClient("127.0.0.1", port) as client:
            for name, qubits in STRUCTURES:
                response = client.compile_task(CompilationTask(
                    f"{name}{qubits}-verify", SPEC,
                    circuit_name=name, num_qubits=qubits))
                assert response.ok and response.source == "store"
                assert response.digest["sha256"] == \
                    clean_digests[f"{name}{qubits}-r0{STRUCTURES.index((name, qubits))}"]

            # The health verb reports the whole story over the wire.
            health = client.health()
            assert health["ok"] and health["status"] == "ok"
            assert health["pool"]["crashes"] == 2
            assert health["pool"]["deadline_kills"] == 1
            assert health["breaker"]["state"] == "closed"
            assert health["store"]["corruptions"] == 1
    finally:
        with ServingClient("127.0.0.1", port) as client:
            client.shutdown()
        thread.join(timeout=10)


def test_degraded_lane_serves_when_breaker_is_open(tmp_path):
    """With the breaker forced open, requests flow through the bounded
    in-process lane — correct digests, ``source == "degraded"``."""

    async def main():
        store = ResultStore(tmp_path / "degraded-store")
        gateway = ServingGateway(store, pool="thread", max_workers=2)
        async with gateway:
            # Trip the breaker as if the pool had been failing.
            for _ in range(gateway.breaker.failure_threshold):
                gateway.breaker.record_failure()
            assert gateway.breaker.state == "open"
            task = CompilationTask("deg-1", SPEC, circuit_name="qft",
                                   num_qubits=8)
            degraded = await gateway.compile(task)
            assert degraded.ok and degraded.source == "degraded"
            assert gateway.stats.degraded == 1
            # Identical follow-up: the degraded compile was persisted, so
            # the store serves it (degradation never poisons the cache).
            hit = await gateway.compile(CompilationTask(
                "deg-2", SPEC, circuit_name="qft", num_qubits=8))
            assert hit.ok and hit.source == "store"
            assert hit.digest == degraded.digest
            assert gateway.health_dict()["status"] == "degraded"

    asyncio.run(main())


@pytest.mark.slow
def test_batch_compiler_survives_process_worker_death(tmp_path):
    """A real worker process dying mid-batch (``os._exit``) no longer
    poisons the batch: the supervised pool re-dispatches the task."""
    plan = FaultPlan(str(tmp_path / "ledger"),
                     (FaultSpec("exit", "worker", match="b-2"),))
    from repro.service import BatchCompiler

    tasks = [CompilationTask(f"b-{index}", SPEC, circuit_name="qft",
                             num_qubits=8, seed=index) for index in range(4)]
    compiler = BatchCompiler(
        max_workers=2, store=ResultStore(tmp_path / "batch-store"),
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.02),
        fault_plan=plan)
    batch = compiler.compile(tasks)
    assert batch.ok, batch.summary()
    assert len(batch.results) == 4
    assert plan.fired() == 1


@pytest.mark.slow
def test_batch_compiler_deadline_fails_only_the_hung_task(tmp_path):
    """A hung worker is deadline-killed: its task fails with a structured
    error while every other task completes."""
    plan = FaultPlan(str(tmp_path / "ledger"),
                     (FaultSpec("hang", "worker", match="h-1", hang_s=30.0),))
    from repro.service import BatchCompiler

    tasks = [CompilationTask(f"h-{index}", SPEC, circuit_name="qft",
                             num_qubits=8, seed=index) for index in range(3)]
    compiler = BatchCompiler(max_workers=2, deadline_s=3.0, fault_plan=plan)
    batch = compiler.compile(tasks)
    assert len(batch.results) == 3
    failed = {entry.task.task_id for entry in batch.failed}
    assert failed == {"h-1"}
    assert "DeadlineExceeded" in batch.failed[0].error
    assert all(entry.ok for entry in batch.results
               if entry.task.task_id != "h-1")
