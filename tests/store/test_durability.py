"""Durability guarantees of the result store (ISSUE satellite coverage).

The write path fsyncs the temp file before its atomic rename (counted in
``stats.fsyncs``), and a fresh handle sweeps ``*.tmp`` orphans left behind
by crashed writers — but only *stale* ones, so a concurrent live writer is
never disturbed.
"""

import os
import time

from repro.circuit.library import get_benchmark
from repro.mapping.config import MapperConfig
from repro.pipeline.manager import compile_circuit
from repro.store import CompiledArtifact, ResultStore, compute_store_key
from repro.service import ArchitectureSpec
from repro.service.cache import ARCHITECTURE_CACHE

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


def _compiled_artifact_and_key(num_qubits=8):
    circuit = get_benchmark("qft", num_qubits=num_qubits)
    config = MapperConfig.for_mode("hybrid", 1.0)
    architecture, connectivity = ARCHITECTURE_CACHE.get(SPEC)
    context = compile_circuit(circuit, architecture, config,
                              connectivity=connectivity, alpha_ratio=1.0)
    return (CompiledArtifact.from_context(context),
            compute_store_key(circuit, SPEC, config))


class TestFsync:
    def test_put_counts_one_fsync_per_write(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        artifact, key = _compiled_artifact_and_key()
        assert store.stats.fsyncs == 0
        store.put(key, artifact)
        assert store.stats.fsyncs == 1
        store.put(key, artifact)
        assert store.stats.fsyncs == 2
        assert "fsyncs" in store.stats_dict()

    def test_no_tmp_files_survive_a_put(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        artifact, key = _compiled_artifact_and_key()
        store.put(key, artifact)
        assert list((tmp_path / "store").glob(".*.tmp-*")) == []


class TestOrphanSweep:
    def test_stale_orphan_swept_on_startup(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        orphan = root / ".deadbeef.json.tmp-999-abcdef01"
        orphan.write_text('{"partial": ')
        stale = time.time() - 3600
        os.utime(orphan, (stale, stale))
        store = ResultStore(root)
        assert not orphan.exists()
        assert store.stats.orphans_swept == 1
        assert store.stats_dict()["orphans_swept"] == 1

    def test_fresh_tmp_file_survives_startup(self, tmp_path):
        # A live writer's temp file (recent mtime) must never be yanked out
        # from under its upcoming rename.
        root = tmp_path / "store"
        root.mkdir()
        live = root / ".cafecafe.json.tmp-1000-12345678"
        live.write_text('{"partial": ')
        store = ResultStore(root)
        assert live.exists()
        assert store.stats.orphans_swept == 0

    def test_swept_orphans_do_not_affect_entries_or_reads(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root)
        artifact, key = _compiled_artifact_and_key()
        store.put(key, artifact)
        orphan = root / ".feedface.json.tmp-7-00000000"
        orphan.write_text("junk")
        stale = time.time() - 3600
        os.utime(orphan, (stale, stale))
        reopened = ResultStore(root)
        assert reopened.stats.orphans_swept == 1
        assert reopened.num_entries() == 1
        hit = reopened.get(key)
        assert hit is not None
        assert hit.op_stream_digest() == artifact.op_stream_digest()
