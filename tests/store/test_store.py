"""ResultStore behaviour: round trips, failure modes, eviction, counters.

The acceptance property: a store-served artifact is byte-identical to the
fresh compile that produced it, and a store can never serve a corrupted
payload — integrity failures quarantine the file and report a miss.
"""

import json
import threading

import pytest

from repro.mapping import MapperConfig
from repro.pipeline import compile_circuit
from repro.service import ARCHITECTURE_CACHE, ArchitectureSpec
from repro.store import (
    ArtifactError,
    CompiledArtifact,
    ResultStore,
    StoreKey,
    compute_store_key,
)

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="module")
def compiled(small_graph_circuit):
    """One real pipeline compile → (key, artifact, reference digest)."""
    architecture, connectivity = ARCHITECTURE_CACHE.get(SPEC)
    config = MapperConfig.for_mode("hybrid", 1.0)
    context = compile_circuit(small_graph_circuit, architecture, config,
                              connectivity=connectivity, alpha_ratio=1.0)
    key = compute_store_key(small_graph_circuit, SPEC, config)
    return key, CompiledArtifact.from_context(context), \
        context.require_result().op_stream_digest()


def _distinct_key(index: int) -> StoreKey:
    return StoreKey(circuit_digest=f"{index:064d}",
                    architecture_key=SPEC.store_key(),
                    config_fingerprint="f" * 64)


class TestRoundTrip:
    def test_store_served_artifact_is_byte_identical(self, tmp_path, compiled):
        key, artifact, reference_digest = compiled
        store = ResultStore(tmp_path)
        store.put(key, artifact)
        loaded = store.get(key)
        assert loaded == artifact
        assert loaded.op_stream == artifact.op_stream
        # The acceptance criterion: the served digest equals the digest a
        # fresh compile of the same request emits.
        assert loaded.op_stream_digest() == reference_digest
        assert loaded.metrics == artifact.metrics

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(_distinct_key(1)) is None
        assert store.stats.misses == 1 and store.stats.hits == 0

    def test_contains(self, tmp_path, compiled):
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        assert key not in store
        store.put(key, artifact)
        assert key in store

    def test_metrics_renamed_for_request(self, compiled):
        _, artifact, _ = compiled
        renamed = artifact.metrics_for("other-request")
        assert renamed.circuit_name == "other-request"
        assert renamed.delta_cz == artifact.metrics.delta_cz

    def test_require_metrics_treats_metricless_entry_as_miss(self, tmp_path,
                                                             compiled):
        key, artifact, _ = compiled
        from dataclasses import replace
        store = ResultStore(tmp_path)
        store.put(key, replace(artifact, metrics=None))
        assert store.get(key, require_metrics=True) is None
        assert store.get(key, require_metrics=False) is not None


class TestCorruption:
    def test_flipped_payload_is_quarantined_miss(self, tmp_path, compiled):
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        path = store.put(key, artifact)
        data = json.loads(path.read_text())
        data["op_stream"][0] = data["op_stream"][0] + " TAMPERED"
        path.write_text(json.dumps(data))

        assert store.get(key) is None
        assert store.stats.corruptions == 1
        assert store.stats.misses == 1
        quarantined = store.quarantined()
        assert len(quarantined) == 1
        assert quarantined[0].name == path.name + ".corrupt"
        assert not path.exists()
        # Subsequent lookups are plain misses — no double-count, no serve.
        assert store.get(key) is None
        assert store.stats.corruptions == 1

    def test_truncated_payload_is_quarantined_miss(self, tmp_path, compiled):
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        path = store.put(key, artifact)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(key) is None
        assert store.stats.corruptions == 1
        assert store.quarantined()

    def test_wrong_key_payload_is_rejected(self, tmp_path, compiled):
        """A file misplaced under another key's path must not be served."""
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        source = store.put(key, artifact)
        other = _distinct_key(7)
        source.rename(store.path_for(other))
        assert store.get(other) is None
        assert store.stats.corruptions == 1

    def test_recompile_after_quarantine_overwrites(self, tmp_path, compiled):
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        path = store.put(key, artifact)
        path.write_text("not json at all")
        assert store.get(key) is None
        store.put(key, artifact)
        assert store.get(key) == artifact

    def test_artifact_error_messages(self, compiled):
        _, artifact, _ = compiled
        with pytest.raises(ArtifactError, match="JSON"):
            CompiledArtifact.from_json("{broken")
        with pytest.raises(ArtifactError, match="schema"):
            CompiledArtifact.from_json(json.dumps({"schema": "wrong/v9"}))
        with pytest.raises(ArtifactError, match="integrity"):
            tampered = json.loads(artifact.to_json())
            tampered["op_stream"] = list(tampered["op_stream"]) + ["M extra"]
            CompiledArtifact.from_json(json.dumps(tampered))


class TestConcurrentWriters:
    def test_same_key_racing_writers_never_tear(self, tmp_path, compiled):
        """Many threads writing one key: atomic rename wins wholesale, every
        interleaved read observes a complete, integrity-valid payload."""
        key, artifact, _ = compiled
        store = ResultStore(tmp_path)
        errors = []

        def writer() -> None:
            handle = ResultStore.from_spec(store.spec)
            for _ in range(10):
                try:
                    handle.put(key, artifact)
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"put: {exc}")

        def reader() -> None:
            handle = ResultStore.from_spec(store.spec)
            for _ in range(30):
                loaded = handle.get(key)
                if loaded is not None and loaded != artifact:
                    errors.append("torn read: loaded artifact differs")
            if handle.stats.corruptions:
                errors.append(f"reader saw {handle.stats.corruptions} corruptions")

        threads = [threading.Thread(target=writer) for _ in range(4)] + \
                  [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[:5]
        assert store.get(key) == artifact
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert not leftovers, leftovers


class TestEviction:
    def _padded(self, artifact, label: str) -> CompiledArtifact:
        from dataclasses import replace
        return replace(artifact, circuit_name=label)

    def test_lru_eviction_under_tiny_budget(self, tmp_path, compiled):
        key_a, artifact, _ = compiled
        entry_bytes = len(artifact.to_json(key_a).encode())
        store = ResultStore(tmp_path, max_bytes=int(entry_bytes * 2.5))
        key_b, key_c = _distinct_key(2), _distinct_key(3)

        store.put(key_a, artifact)
        store.put(key_b, self._padded(artifact, "entry-b"))
        assert store.num_entries() == 2
        assert store.get(key_a) is not None   # touch a → b is now LRU
        store.put(key_c, self._padded(artifact, "entry-c"))

        assert store.stats.evictions == 1
        assert store.get(key_b) is None       # the LRU entry went
        assert store.get(key_a) is not None
        assert store.get(key_c) is not None
        assert store.total_bytes() <= store.max_bytes

    def test_fresh_write_is_protected_from_its_own_eviction(self, tmp_path,
                                                            compiled):
        key, artifact, _ = compiled
        entry_bytes = len(artifact.to_json(key).encode())
        store = ResultStore(tmp_path, max_bytes=max(1, entry_bytes // 2))
        store.put(key, artifact)
        assert store.get(key) is not None

    def test_unbounded_store_never_evicts(self, tmp_path, compiled):
        _, artifact, _ = compiled
        store = ResultStore(tmp_path)
        for index in range(5):
            store.put(_distinct_key(index), artifact)
        assert store.num_entries() == 5
        assert store.stats.evictions == 0

    def test_invalid_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=0)


class TestStats:
    def test_stats_dict_shape(self, tmp_path, compiled):
        key, artifact, _ = compiled
        store = ResultStore(tmp_path, max_bytes=10_000_000)
        store.put(key, artifact)
        store.get(key)
        store.get(_distinct_key(9))
        payload = store.stats_dict()
        assert payload["hits"] == 1
        assert payload["misses"] == 1
        assert payload["puts"] == 1
        assert payload["num_entries"] == 1
        assert payload["total_bytes"] > 0
        assert payload["max_bytes"] == 10_000_000
        assert payload["num_quarantined"] == 0
