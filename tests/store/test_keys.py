"""Store-key stability: digests, fingerprints and cross-process identity.

The persistent store is only sound if every key component is a pure
function of the *values* that determine compilation output — independent of
object identity, kwargs order, dict order and the process that computed it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.circuit import QuantumCircuit
from repro.circuit.library import get_benchmark
from repro.circuit.qasm import dumps as qasm_dumps, loads as qasm_loads
from repro.mapping import MapperConfig
from repro.service import ArchitectureSpec, CompilationTask, task_store_key
from repro.store import StoreKey, compute_store_key

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestCircuitDigest:
    def test_equal_structure_equal_digest(self):
        a = get_benchmark("qft", num_qubits=10)
        b = get_benchmark("qft", num_qubits=10)
        assert a.canonical_digest() == b.canonical_digest()

    def test_name_does_not_affect_digest(self):
        a = get_benchmark("qft", num_qubits=10)
        b = get_benchmark("qft", num_qubits=10)
        b.name = "completely-different-label"
        assert a.canonical_digest() == b.canonical_digest()

    def test_gate_order_affects_digest(self):
        a = QuantumCircuit(2).h(0).cz(0, 1)
        b = QuantumCircuit(2).cz(0, 1).h(0)
        assert a.canonical_digest() != b.canonical_digest()

    def test_parameters_affect_digest(self):
        a = QuantumCircuit(1).rz(0.5, 0)
        b = QuantumCircuit(1).rz(0.5000001, 0)
        assert a.canonical_digest() != b.canonical_digest()

    def test_register_size_affects_digest(self):
        a = QuantumCircuit(2).cz(0, 1)
        b = QuantumCircuit(3).cz(0, 1)
        assert a.canonical_digest() != b.canonical_digest()

    def test_qasm_round_trip_preserves_digest(self):
        """A circuit re-imported from its own QASM dedupes with the original."""
        circuit = get_benchmark("graph", num_qubits=12, seed=3)
        again = qasm_loads(qasm_dumps(circuit), name="served-under-new-id")
        assert again.canonical_digest() == circuit.canonical_digest()


class TestConfigFingerprint:
    def test_equal_kwargs_equal_fingerprint(self):
        a = MapperConfig(alpha_gate=2.0, lookahead_weight=0.2)
        b = MapperConfig(lookahead_weight=0.2, alpha_gate=2.0)
        assert a.fingerprint() == b.fingerprint()

    def test_mode_helpers_match_explicit_construction(self):
        assert (MapperConfig.for_mode("hybrid", 1.5).fingerprint()
                == MapperConfig(alpha_gate=1.5, alpha_shuttling=1.0).fingerprint())

    def test_any_field_changes_fingerprint(self):
        base = MapperConfig()
        for override in ({"alpha_gate": 2.0}, {"lookahead_depth": 2},
                         {"cross_round_cache": False}, {"chain_kernel": False},
                         {"history_window": 5},
                         {"use_commutation": False}, {"stall_threshold": 7},
                         {"shard_routing": True}, {"shard_workers": 3},
                         {"shard_min_slice": 12}, {"shard_max_slice": 96},
                         {"shard_max_cut_qubits": 6}):
            assert base.with_overrides(**override).fingerprint() != \
                base.fingerprint(), override

    def test_canonical_key_sorted_by_field_name(self):
        names = [part.split("=")[0]
                 for part in MapperConfig().canonical_key().split("|")[1:]]
        assert names == sorted(names)

    def test_int_valued_floats_normalised(self):
        """MapperConfig(alpha_gate=2) == MapperConfig(alpha_gate=2.0); the
        fingerprints must coincide too (repr(2) != repr(2.0) otherwise)."""
        assert (MapperConfig(alpha_gate=2).fingerprint()
                == MapperConfig(alpha_gate=2.0).fingerprint())
        assert (MapperConfig(time_weight=1).fingerprint()
                == MapperConfig(time_weight=1.0).fingerprint())


class TestArchitectureSpecKey:
    def test_equal_kwargs_equal_key(self):
        a = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=40, spacing=3.0)
        b = ArchitectureSpec(num_atoms=40, spacing=3.0, hardware="mixed",
                             lattice_rows=9)
        assert a.store_key() == b.store_key()

    def test_zone_layout_list_vs_tuple_normalised(self):
        a = ArchitectureSpec("mixed", lattice_rows=9, topology="zoned",
                             zone_layout=[["storage", 3], ["entangling", 4],
                                          ["storage", 2]])
        b = ArchitectureSpec("mixed", lattice_rows=9, topology="zoned",
                             zone_layout=(("storage", 3), ("entangling", 4),
                                          ("storage", 2)))
        assert a.store_key() == b.store_key()

    def test_zoned_spelling_aliases_coincide(self):
        assert (ArchitectureSpec("zoned", lattice_rows=9).store_key()
                == ArchitectureSpec("zoned", lattice_rows=9,
                                    topology="zoned").store_key())

    def test_distinct_topologies_distinct_keys(self):
        square = ArchitectureSpec("mixed", lattice_rows=9)
        zoned = ArchitectureSpec("mixed", lattice_rows=9, topology="zoned")
        assert square.store_key() != zoned.store_key()

    def test_int_valued_spacing_normalised(self):
        """JSON wire payloads spell whole floats as ints; equal-valued specs
        must produce the identical store key regardless of spelling."""
        a = ArchitectureSpec("mixed", lattice_rows=9, spacing=3)
        b = ArchitectureSpec("mixed", lattice_rows=9, spacing=3.0)
        assert a == b
        assert a.store_key() == b.store_key()
        c = ArchitectureSpec("mixed", lattice_rows=9,
                             topology="rectangular", spacing_y=2)
        d = ArchitectureSpec("mixed", lattice_rows=9,
                             topology="rectangular", spacing_y=2.0)
        assert c.store_key() == d.store_key()

    def test_v2_built_device_identity(self):
        """v2 keys address the *built* device: spelling out a preset's
        computed default aliases with leaving it unset, while different
        physics still produce different keys."""
        implicit = ArchitectureSpec("mixed", lattice_rows=9)
        explicit = ArchitectureSpec("mixed", lattice_rows=9,
                                    num_atoms=implicit.build().num_atoms)
        assert implicit.store_key().startswith("architecture/v2|")
        assert implicit.store_key() == explicit.store_key()
        assert (ArchitectureSpec("mixed", lattice_rows=9).store_key()
                != ArchitectureSpec("gate", lattice_rows=9).store_key())
        assert (ArchitectureSpec("mixed", lattice_rows=9).store_key()
                != ArchitectureSpec("mixed", lattice_rows=11).store_key())


class TestStoreKey:
    def test_version_changes_invalidate(self):
        circuit = get_benchmark("qft", num_qubits=8)
        spec = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        config = MapperConfig()
        current = compute_store_key(circuit, spec, config)
        assert current.version == __version__
        other = compute_store_key(circuit, spec, config, version="0.0.0")
        assert current.digest() != other.digest()

    def test_task_key_matches_direct_key(self):
        spec = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        task = CompilationTask("t", spec, circuit_name="qft", num_qubits=8)
        direct = compute_store_key(task.build_circuit(), spec,
                                   task.build_config())
        assert task_store_key(task) == direct

    def test_round_trips_through_dict(self):
        key = StoreKey("c" * 64, "architecture/v1|hardware='mixed'", "f" * 64)
        assert StoreKey.from_dict(key.as_dict()) == key


class TestCrossProcessStability:
    """Satellite regression: identical kwargs must produce identical store
    keys in a *different* process (different hash seed, fresh interpreter) —
    no reliance on dict order, hash randomisation or object identity."""

    SCRIPT = """
import sys
from repro.circuit.library import get_benchmark
from repro.mapping import MapperConfig
from repro.service import ArchitectureSpec
from repro.store import compute_store_key

spec = ArchitectureSpec(num_atoms=30, hardware="mixed", lattice_rows=7,
                        topology="zoned",
                        zone_layout=[["storage", 2], ["entangling", 3],
                                     ["storage", 2]])
config = MapperConfig.for_mode("hybrid", 1.5,
                               lookahead_weight=0.2, history_window=6)
circuit = get_benchmark("qft", num_qubits=9)
key = compute_store_key(circuit, spec, config)
print(spec.store_key())
print(config.fingerprint())
print(circuit.canonical_digest())
print(key.digest())
"""

    def _compute_here(self):
        spec = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30,
                                topology="zoned",
                                zone_layout=(("storage", 2), ("entangling", 3),
                                             ("storage", 2)))
        config = MapperConfig(alpha_gate=1.5, alpha_shuttling=1.0,
                              lookahead_weight=0.2, history_window=6)
        circuit = get_benchmark("qft", num_qubits=9)
        key = compute_store_key(circuit, spec, config)
        return [spec.store_key(), config.fingerprint(),
                circuit.canonical_digest(), key.digest()]

    ANISOTROPY_SCRIPT = """
from repro.service import ArchitectureSpec

tall = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                        topology="rectangular", spacing=2.0, spacing_y=3.0)
wide = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                        topology="rectangular", spacing=3.0, spacing_y=2.0)
iso = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                       topology="rectangular", spacing_y=3.0)
print(tall.store_key())
print(wide.store_key())
print(iso.store_key())
"""

    @pytest.mark.parametrize("hash_seed", ["0", "4242"])
    def test_subprocess_reproduces_every_component(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run([sys.executable, "-c", self.SCRIPT],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip().splitlines() == self._compute_here()

    def test_subprocess_keeps_anisotropic_grids_distinct(self):
        """Regression: two anisotropic grids sharing only their *minimum*
        spacing must map to distinct store keys — and the keys must match
        across processes, so the distinction is value-derived, not an
        accident of object identity."""
        from repro.service import ArchitectureSpec
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "4242"
        proc = subprocess.run([sys.executable, "-c", self.ANISOTROPY_SCRIPT],
                              capture_output=True, text=True, env=env,
                              timeout=120)
        assert proc.returncode == 0, proc.stderr
        tall_key, wide_key, iso_key = proc.stdout.strip().splitlines()
        assert tall_key != wide_key
        local = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                 topology="rectangular", spacing=2.0,
                                 spacing_y=3.0)
        assert local.store_key() == tall_key
        # The isotropic spelling folds to the plain square-lattice device.
        square = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30)
        assert square.store_key() == iso_key
