"""Differential harness, sharding axis: metrics parity + validity replay.

Sharded routing (``MapperConfig.shard_routing``) intentionally does *not*
promise a bit-identical stream — the honest gate (ROADMAP item 2) is:

1. **validity** — every sharded op stream replays legally from its initial
   maps (``repro.mapping.replay``), and
2. **metrics parity** — ΔCZ / ΔT / swap / move counts stay within configured
   bounds of the serial mapper's on the same workload.

The suite runs shard-on (both schedulers) vs shard-off across seeded random
circuits × the mixed/shuttling presets, mirroring the cache differential
harness (``test_differential_cache.py``).  Every failed parity comparison is
appended to a JSON report (``SHARD_PARITY_REPORT``, default
``shard-parity-report.json``) which the CI shard-differential job uploads as
an artifact, so a red run ships the numbers with it.

The whole module is marked ``shard``: run it standalone with
``pytest -m shard``.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import pytest

from repro.circuit.library.random_circuits import (
    local_window_circuit,
    qaoa_maxcut_circuit,
    random_layered_circuit,
)
from repro.evaluation.metrics import evaluate
from repro.hardware import SiteConnectivity
from repro.mapping import HybridMapper, MapperConfig, validate_stream
import repro.mapping.shard as shard_module
from repro.workloads import build_scaled_architecture

pytestmark = pytest.mark.shard

HARDWARE_PRESETS = ("mixed", "shuttling")

RANDOM_CIRCUITS = {
    "layered": lambda seed: random_layered_circuit(16, 10, seed=seed),
    "qaoa": lambda seed: qaoa_maxcut_circuit(16, edge_probability=0.25,
                                             seed=seed),
    "local": lambda seed: local_window_circuit(18, 120, window=4, seed=seed),
}

SCHEDULERS = {"chained": 1, "speculative": 2}

#: Parity bounds: sharded <= serial * factor + slack.  Sharding trades some
#: op-count quality at the slice seams for intra-circuit parallelism; the
#: bounds are calibrated from the observed worst case on these seeds
#: (moves ~2.9x + a ~17-move repair overhead, ΔT ~2.7x on the
#: heavily-fragmented small test circuits — seeded stitching keeps every
#: worker move and adds a repair pass where unseeded stitching dropped
#: moves and re-routed at the seams) with headroom, and tight enough that
#: a stitching regression that, e.g., re-routes every slice from scratch
#: blows through them.
PARITY_BOUNDS = {
    "num_swaps": (2.0, 12.0),
    "num_moves": (3.0, 20.0),
    "delta_cz": (2.0, 36.0),
    "delta_t_us": (3.0, 150.0),
}

_REPORT_PATH = os.environ.get("SHARD_PARITY_REPORT",
                              "shard-parity-report.json")


def _record_parity_failure(row: Dict[str, object]) -> None:
    entries = []
    if os.path.exists(_REPORT_PATH):
        try:
            with open(_REPORT_PATH, "r", encoding="utf-8") as handle:
                entries = json.load(handle)
        except (OSError, ValueError):  # pragma: no cover - corrupt report
            entries = []
    entries.append(row)
    with open(_REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, indent=2, sort_keys=True)


def _architecture(hardware: str):
    architecture = build_scaled_architecture(hardware, 0.12)
    return architecture, SiteConnectivity(architecture)


def assert_metrics_parity(case: str, circuit, architecture, connectivity,
                          serial_config: MapperConfig,
                          sharded_config: MapperConfig) -> None:
    """Route serially and sharded; require validity plus bounded metrics."""
    serial = HybridMapper(architecture, serial_config,
                          connectivity=connectivity).map(circuit)
    sharded = HybridMapper(architecture, sharded_config,
                           connectivity=connectivity).map(circuit)
    assert sharded.shard_stats, f"{case}: sharded path did not engage"

    violations = validate_stream(sharded, architecture, connectivity)
    sharded.verify_complete()

    serial_metrics = evaluate(circuit, serial, architecture, connectivity)
    sharded_metrics = evaluate(circuit, sharded, architecture, connectivity)
    out_of_bounds = {}
    for metric, (factor, slack) in PARITY_BOUNDS.items():
        serial_value = getattr(serial_metrics, metric)
        sharded_value = getattr(sharded_metrics, metric)
        bound = serial_value * factor + slack
        if sharded_value > bound:
            out_of_bounds[metric] = {
                "serial": serial_value,
                "sharded": sharded_value,
                "bound": bound,
            }

    if violations or out_of_bounds:
        _record_parity_failure({
            "case": case,
            "circuit": circuit.name,
            "hardware": architecture.name,
            "replay_violations": violations[:10],
            "out_of_bounds": out_of_bounds,
            "serial": serial_metrics.as_row(),
            "sharded": sharded_metrics.as_row(),
            "shard_stats": {
                key: value for key, value in sharded.shard_stats.items()
                if key != "slice_stage_seconds"
            },
        })
    assert not violations, \
        f"{case}: sharded stream fails replay: {violations[:5]}"
    assert not out_of_bounds, \
        f"{case}: metrics out of parity bounds: {out_of_bounds}"


class TestShardMetricsParity:
    @pytest.fixture(autouse=True)
    def _thread_pool(self, monkeypatch):
        # CI runs this axis on 1-CPU runners; thread workers keep the
        # speculative scheduler exercised without fork overhead.  The stream
        # is pool-kind independent (covered by tests/mapping).
        monkeypatch.setattr(shard_module, "_POOL_KIND", "thread")

    @pytest.mark.parametrize("hardware", HARDWARE_PRESETS)
    @pytest.mark.parametrize("workload", sorted(RANDOM_CIRCUITS))
    @pytest.mark.parametrize("seed", (7, 1234))
    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_random_circuit_parity(self, hardware, workload, seed, scheduler):
        architecture, connectivity = _architecture(hardware)
        circuit = RANDOM_CIRCUITS[workload](seed)
        case = f"{hardware}/{workload}/seed{seed}/{scheduler}"
        assert_metrics_parity(
            case, circuit, architecture, connectivity,
            MapperConfig.hybrid(1.0),
            MapperConfig.hybrid(1.0, shard_routing=True,
                                shard_workers=SCHEDULERS[scheduler],
                                shard_min_slice=16),
        )

    @pytest.mark.parametrize("seed_snapshots", (False, True))
    @pytest.mark.parametrize("hierarchical", (False, True))
    @pytest.mark.parametrize("workload", ("layered", "local"))
    def test_seeding_axes_parity(self, workload, hierarchical,
                                 seed_snapshots):
        """seed_snapshots x hierarchical_partition under the speculative
        scheduler: every combination must keep metrics parity and replay
        validity — predictive seeding changes *where* moves happen (worker
        vs seam), never whether the stream is legal or how far the op
        counts may drift from serial."""
        architecture, connectivity = _architecture("mixed")
        circuit = RANDOM_CIRCUITS[workload](7)
        case = (f"mixed/{workload}/seed7/speculative/"
                f"seeded={seed_snapshots}/hier={hierarchical}")
        assert_metrics_parity(
            case, circuit, architecture, connectivity,
            MapperConfig.hybrid(1.0),
            MapperConfig.hybrid(1.0, shard_routing=True,
                                shard_workers=2, shard_min_slice=16,
                                seed_snapshots=seed_snapshots,
                                hierarchical_partition=hierarchical),
        )

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_gate_leaning_parity_exercises_swaps(self, scheduler):
        """A gate-leaning config on the gate preset yields nonzero SWAP/ΔCZ
        counts, keeping those parity axes non-vacuous."""
        architecture, connectivity = _architecture("gate")
        circuit = random_layered_circuit(16, 10, seed=7)
        serial = HybridMapper(architecture, MapperConfig.hybrid(8.0),
                              connectivity=connectivity).map(circuit)
        assert serial.num_swaps > 0, "expected a swap-exercising workload"
        case = f"gate/layered/seed7/{scheduler}"
        assert_metrics_parity(
            case, circuit, architecture, connectivity,
            MapperConfig.hybrid(8.0),
            MapperConfig.hybrid(8.0, shard_routing=True,
                                shard_workers=SCHEDULERS[scheduler],
                                shard_min_slice=16),
        )
