"""Differential harness: vectorised chain kernel vs scalar reference path.

The chain-construction kernel (``MapperConfig.chain_kernel``) promises a
**byte-identical** operation stream: every argmin / stable-argsort
tie-break must resolve exactly as the scalar loops it replaces.  This
harness locks that contract down on *hostile spacings* — lattice constants
whose float expansions accumulate differently under vectorised evaluation
(the PR 3 pitfall axis) — across the kernel-on/off x cache-on/off grid.

On a mismatch the test appends to ``kernel-digest-diff.json`` (working
directory) so the CI differential job can upload the divergence as an
artifact.  The same tests run in the no-numpy CI leg, where
``chain_kernel=True`` degrades to the scalar path and the grid collapses
to the cache axis — keeping the fallback continuously covered.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.circuit.library.random_circuits import random_layered_circuit
from repro.hardware import SiteConnectivity
from repro.mapping import HybridMapper, MapperConfig
from repro.mapping.shuttling_router import _np
from repro.workloads import build_scaled_architecture

DIFF_PATH = Path("kernel-digest-diff.json")

#: Lattice constants with inexact binary expansions: scaled coordinates and
#: travel distances hit the float-accumulation corners where a reordered
#: vector reduction would first diverge from the scalar loops.
HOSTILE_SPACINGS = (0.3, 1.1)

#: (chain_kernel, cross_round_cache) variants compared against the
#: all-scalar, cache-off reference.
GRID = ((True, True), (True, False), (False, True))


@pytest.fixture(scope="module", autouse=True)
def _fresh_diff_file():
    """Drop stale divergence records so the artifact reflects this run only."""
    if DIFF_PATH.exists():
        DIFF_PATH.unlink()


def _record_diff(case: str, expected: str, actual: str) -> None:
    """Append one divergence to the diff artifact (for the CI upload)."""
    existing = []
    if DIFF_PATH.exists():
        try:
            existing = json.loads(DIFF_PATH.read_text())
        except ValueError:
            existing = []
    existing.append({"case": case, "expected": expected, "actual": actual})
    DIFF_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def assert_kernel_grid_identical(circuit, architecture, connectivity,
                                 case: str) -> None:
    """Map under every grid variant and require byte-identical output."""
    reference = HybridMapper(
        architecture,
        MapperConfig.hybrid(1.0).with_overrides(chain_kernel=False,
                                                cross_round_cache=False),
        connectivity=connectivity).map(circuit)
    reference_bytes = "\n".join(reference.op_stream_lines()).encode()
    for chain_kernel, cross_round_cache in GRID:
        config = MapperConfig.hybrid(1.0).with_overrides(
            chain_kernel=chain_kernel, cross_round_cache=cross_round_cache)
        result = HybridMapper(architecture, config,
                              connectivity=connectivity).map(circuit)
        variant = f"{case}/kernel={chain_kernel}/cache={cross_round_cache}"
        if result.op_stream_digest() != reference.op_stream_digest():
            _record_diff(variant, reference.op_stream_digest(),
                         result.op_stream_digest())
        assert "\n".join(result.op_stream_lines()).encode() \
            == reference_bytes, variant
        assert result.op_stream_digest() == reference.op_stream_digest(), (
            f"op stream of {variant} diverged from the scalar reference "
            f"(see {DIFF_PATH})")
        assert result.operations == reference.operations
        assert result.final_qubit_map == reference.final_qubit_map
        assert result.final_atom_map == reference.final_atom_map


class TestKernelDifferentialHostileSpacings:
    @pytest.mark.parametrize("hardware", ("gate", "mixed", "shuttling"))
    @pytest.mark.parametrize("spacing", HOSTILE_SPACINGS)
    def test_layered_stream_identical(self, hardware, spacing):
        architecture = build_scaled_architecture(hardware, 0.12,
                                                 spacing=spacing)
        connectivity = SiteConnectivity(architecture)
        circuit = random_layered_circuit(16, 6, seed=7)
        assert_kernel_grid_identical(
            circuit, architecture, connectivity,
            f"layered/{hardware}/spacing={spacing}")

    @pytest.mark.parametrize("spacing", HOSTILE_SPACINGS)
    def test_qft_stream_identical(self, spacing):
        architecture = build_scaled_architecture("mixed", 0.12,
                                                 spacing=spacing)
        connectivity = SiteConnectivity(architecture)
        circuit = decompose_mcx_to_mcz(
            get_benchmark("qft", num_qubits=14, seed=2024))
        assert_kernel_grid_identical(circuit, architecture, connectivity,
                                     f"qft/mixed/spacing={spacing}")

    @pytest.mark.parametrize("hardware", ("mixed", "shuttling"))
    @pytest.mark.parametrize("spacing", HOSTILE_SPACINGS)
    def test_multi_qubit_stream_identical(self, hardware, spacing):
        """CCZ-promoted layers exercise the *generic* chain kernel — the
        any-width gathering walk with its simulated-occupancy delta
        corrections — which two-qubit-only workloads never reach."""
        architecture = build_scaled_architecture(hardware, 0.12,
                                                 spacing=spacing)
        connectivity = SiteConnectivity(architecture)
        circuit = random_layered_circuit(16, 6, seed=7,
                                         multi_qubit_fraction=0.35)
        assert_kernel_grid_identical(
            circuit, architecture, connectivity,
            f"multiq/{hardware}/spacing={spacing}")

    @pytest.mark.parametrize("spacing", HOSTILE_SPACINGS)
    def test_zoned_multi_qubit_stream_identical(self, spacing):
        """Zoned topology + wide gates drive the generic kernel through the
        anchor-relocation prefix and travel-penalised pooled moves."""
        architecture = build_scaled_architecture("zoned", 0.12,
                                                 spacing=spacing)
        connectivity = SiteConnectivity(architecture)
        circuit = random_layered_circuit(14, 5, seed=11,
                                         multi_qubit_fraction=0.3)
        assert_kernel_grid_identical(
            circuit, architecture, connectivity,
            f"multiq/zoned/spacing={spacing}")

    def test_anisotropic_rectangular_stream_identical(self):
        """Distinct per-axis hostile pitches stress the x/y travel terms
        separately — the axis where a fused vector expression would first
        drift from the scalar two-step composition."""
        from repro.hardware.presets import preset
        reference = build_scaled_architecture("mixed", 0.12, spacing=0.3)
        architecture = preset("mixed", lattice_rows=reference.lattice.rows,
                              spacing=0.3, num_atoms=reference.num_atoms,
                              topology="rectangular", spacing_y=0.7)
        connectivity = SiteConnectivity(architecture)
        circuit = random_layered_circuit(16, 6, seed=1234)
        assert_kernel_grid_identical(circuit, architecture, connectivity,
                                     "layered/rectangular/0.3x0.7")


class TestKernelActuallyEngages:
    """Guard against the kernel silently never firing (dead-code equivalence)."""

    @pytest.mark.skipif(_np is None, reason="scalar-fallback environment")
    def test_kernel_enabled_on_default_config(self):
        architecture = build_scaled_architecture("shuttling", 0.12,
                                                 spacing=0.3)
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                              connectivity=SiteConnectivity(architecture))
        assert mapper.shuttling_router._kernel

    def test_kernel_flag_off_disables_kernel(self):
        architecture = build_scaled_architecture("shuttling", 0.12,
                                                 spacing=0.3)
        mapper = HybridMapper(
            architecture,
            MapperConfig.hybrid(1.0).with_overrides(chain_kernel=False),
            connectivity=SiteConnectivity(architecture))
        assert not mapper.shuttling_router._kernel
