"""Differential harness: cached engine vs from-scratch reference path.

The cross-round routing caches (``repro.mapping.regioncache``) promise a
**bit-identical** operation stream: every replayed capability decision and
candidate move chain must equal what a from-scratch recomputation would
produce.  This harness locks that contract down by compiling seeded random
circuits across all three hardware presets and asserting op-stream equality
between the default engine and the ``MapperConfig(cross_round_cache=False)``
reference path.

The same seeds are used in CI (see the differential job in
``.github/workflows/ci.yml``), so a failure there reproduces locally with
plain ``pytest tests/differential``.
"""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit, decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.circuit.library.random_circuits import (
    local_window_circuit,
    qaoa_maxcut_circuit,
    random_layered_circuit,
)
from repro.hardware import SiteConnectivity
from repro.mapping import HybridMapper, MapperConfig
from repro.workloads import build_scaled_architecture

HARDWARE_PRESETS = ("gate", "mixed", "shuttling")

#: Seeded random workloads: two circuits per hardware preset in CI, plus a
#: multi-qubit-gate workload to exercise position caching under shuttling.
RANDOM_CIRCUITS = {
    "layered": lambda seed: random_layered_circuit(16, 6, seed=seed),
    "layered_ccz": lambda seed: decompose_mcx_to_mcz(
        random_layered_circuit(14, 4, multi_qubit_fraction=0.25, seed=seed)),
    "qaoa": lambda seed: qaoa_maxcut_circuit(16, edge_probability=0.25, seed=seed),
    "local": lambda seed: local_window_circuit(18, 60, window=4, seed=seed),
}


def _architecture(hardware: str):
    architecture = build_scaled_architecture(hardware, 0.12)
    return architecture, SiteConnectivity(architecture)


def assert_streams_identical(circuit: QuantumCircuit, architecture,
                             connectivity, config: MapperConfig) -> None:
    """Map with the cache on and off and require identical output."""
    cached_mapper = HybridMapper(architecture, config, connectivity=connectivity)
    reference_mapper = HybridMapper(
        architecture, config.with_overrides(cross_round_cache=False),
        connectivity=connectivity)
    assert cached_mapper.region_cache is not None
    assert reference_mapper.region_cache is None

    cached = cached_mapper.map(circuit)
    reference = reference_mapper.map(circuit)

    assert cached.operations == reference.operations
    assert cached.op_stream_lines() == reference.op_stream_lines()
    assert cached.op_stream_digest() == reference.op_stream_digest()
    assert cached.num_swaps == reference.num_swaps
    assert cached.num_moves == reference.num_moves
    assert cached.final_qubit_map == reference.final_qubit_map
    assert cached.final_atom_map == reference.final_atom_map


class TestDifferentialRandomCircuits:
    @pytest.mark.parametrize("hardware", HARDWARE_PRESETS)
    @pytest.mark.parametrize("workload", sorted(RANDOM_CIRCUITS))
    @pytest.mark.parametrize("seed", (7, 1234))
    def test_random_circuit_stream_identical(self, hardware, workload, seed):
        architecture, connectivity = _architecture(hardware)
        circuit = RANDOM_CIRCUITS[workload](seed)
        assert_streams_identical(circuit, architecture, connectivity,
                                 MapperConfig.hybrid(1.0))

    @pytest.mark.parametrize("mode", ["gate_only", "shuttling_only"])
    def test_pure_modes_stream_identical(self, mode):
        architecture, connectivity = _architecture("mixed")
        circuit = RANDOM_CIRCUITS["layered"](99)
        assert_streams_identical(circuit, architecture, connectivity,
                                 MapperConfig.for_mode(mode))


class TestDifferentialPaperBenchmarks:
    @pytest.mark.parametrize("hardware", HARDWARE_PRESETS)
    @pytest.mark.parametrize("benchmark_name", ("qft", "graph"))
    def test_benchmark_stream_identical(self, hardware, benchmark_name):
        architecture, connectivity = _architecture(hardware)
        circuit = decompose_mcx_to_mcz(
            get_benchmark(benchmark_name, num_qubits=14, seed=2024))
        assert_streams_identical(circuit, architecture, connectivity,
                                 MapperConfig.hybrid(1.0))


class TestCacheActuallyEngages:
    """Guard against the cache silently never firing (dead-code equivalence)."""

    def test_caches_record_hits_on_shuttling_workload(self):
        architecture, connectivity = _architecture("shuttling")
        circuit = RANDOM_CIRCUITS["layered"](7)
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                              connectivity=connectivity)
        mapper.map(circuit)
        stats = mapper.region_cache.stats()
        assert stats["decision_hits"] > 0
        assert stats["chain_hits"] > 0

    def test_cache_cleared_between_runs(self):
        architecture, connectivity = _architecture("mixed")
        circuit = RANDOM_CIRCUITS["local"](7)
        mapper = HybridMapper(architecture, MapperConfig.hybrid(1.0),
                              connectivity=connectivity)
        first = mapper.map(circuit)
        second = mapper.map(circuit)
        assert first.operations == second.operations
        assert first.final_atom_map == second.final_atom_map
