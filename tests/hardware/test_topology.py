"""Property suite over every registered trap topology.

The topology layer promises a small set of structural invariants that the
routing stack silently relies on; this suite pins them for *all* registered
topology families at once, so a new family (or a regression in an existing
one) fails loudly:

* neighbour tables are symmetric (adjacency is an undirected relation),
* distance rows agree with the pairwise distance queries,
* the zone partition covers every site exactly once,
* numpy-kernel distance rows are bit-identical to the scalar formulas.
"""

from __future__ import annotations

import math

import pytest

from repro.hardware import (
    TOPOLOGY_REGISTRY,
    GridTopology,
    RectangularLattice,
    SquareLattice,
    Zone,
    ZonedTopology,
    banded_zone_layout,
    build_topology,
)

#: Representative instances per registered family — every registered kind
#: must appear here (enforced by test_every_registered_kind_is_covered).
SAMPLE_TOPOLOGIES = [
    SquareLattice(5, 5, 3.0),
    SquareLattice(7, 7, 0.3),
    SquareLattice(6, 9, 2.5),
    RectangularLattice(5, 9, spacing_x=3.0, spacing_y=2.0),
    RectangularLattice(8, 4, spacing_x=1.1, spacing_y=2.7),
    ZonedTopology(banded_zone_layout(9), 9, 3.0, corridor_transit_um=3.0),
    ZonedTopology((Zone("s", "storage", 2),
                   Zone("e1", "entangling", 3),
                   Zone("mid", "storage", 2),
                   Zone("e2", "entangling", 2, interaction_radius=1.5)),
                  7, 2.5, corridor_transit_um=5.0),
]

RADII = (2.0, 3.0, 4.5, 7.5)


def _ids(topology):
    return repr(topology)


class TestRegistry:
    def test_every_registered_kind_is_covered(self):
        covered = {type(topology).kind for topology in SAMPLE_TOPOLOGIES}
        assert set(TOPOLOGY_REGISTRY) <= covered
        assert {"square", "rectangular", "zoned"} <= set(TOPOLOGY_REGISTRY)

    def test_build_topology_round_trips_each_kind(self):
        square = build_topology("square", 6, spacing=2.0)
        assert square.kind == "square" and square.rows == square.cols == 6
        rect = build_topology("rectangular", 5, cols=8, spacing=3.0, spacing_y=1.5)
        assert rect.kind == "rectangular" and (rect.rows, rect.cols) == (5, 8)
        zoned = build_topology("zoned", 9, spacing=3.0)
        assert zoned.kind == "zoned" and zoned.rows == 9
        # Default corridor transit: one lattice constant per crossing.
        assert zoned.corridor_transit_um == 3.0
        with pytest.raises(ValueError):
            build_topology("hexagonal", 5)

    def test_isotropic_kinds_reject_anisotropic_spacing(self):
        # Silently dropping spacing_y would let unequal specs describe the
        # same physical device; isotropic families must refuse it.
        with pytest.raises(ValueError):
            build_topology("square", 6, spacing=3.0, spacing_y=2.0)
        with pytest.raises(ValueError):
            build_topology("zoned", 9, spacing=3.0, spacing_y=2.0)
        # An explicitly isotropic spacing_y is redundant but harmless.
        assert build_topology("square", 6, spacing=3.0, spacing_y=3.0).kind == "square"

    def test_storage_zone_rejects_positive_interaction_radius(self):
        # A band that hosts gates is an entangling band; storage traps with
        # interaction adjacency would contradict the zone predicates.
        with pytest.raises(ValueError, match="storage zone"):
            Zone("s", "storage", 3, interaction_radius=2.5)
        # Explicit zero is the storage default, spelled out.
        assert Zone("s", "storage", 3, interaction_radius=0.0).interaction_radius == 0.0

    def test_zoned_layout_must_agree_with_requested_rows(self):
        # A layout spanning fewer rows than requested must fail loudly at
        # the source instead of silently building a smaller device.
        with pytest.raises(ValueError, match="zone layout spans"):
            build_topology("zoned", 15,
                           zone_layout=(("storage", 3), ("entangling", 3),
                                        ("storage", 3)))
        agreeing = build_topology("zoned", 9,
                                  zone_layout=(("storage", 3), ("entangling", 3),
                                               ("storage", 3)))
        assert agreeing.rows == 9

    def test_cache_keys_distinguish_the_samples(self):
        keys = [topology.cache_key() for topology in SAMPLE_TOPOLOGIES]
        assert len(set(keys)) == len(keys)


@pytest.mark.parametrize("topology", SAMPLE_TOPOLOGIES, ids=_ids)
class TestTopologyProperties:
    def test_neighbour_tables_symmetric(self, topology):
        for radius in RADII:
            table = topology.neighbour_table(radius)
            assert len(table) == topology.num_sites
            for site, neighbours in enumerate(table):
                for other in neighbours:
                    assert site != other
                    assert site in table[other], (
                        f"asymmetric neighbourhood at radius {radius}: "
                        f"{site} -> {other}")

    def test_interaction_tables_symmetric(self, topology):
        for radius in RADII:
            table = topology.interaction_neighbour_table(radius)
            for site, neighbours in enumerate(table):
                for other in neighbours:
                    assert site in table[other]

    def test_neighbours_within_matches_sites_within(self, topology):
        for radius in RADII:
            for site in (0, topology.num_sites // 2, topology.num_sites - 1):
                assert topology.neighbours_within(site, radius) == \
                    topology.sites_within(site, radius)
                assert topology.sites_within_set(site, radius) == \
                    frozenset(topology.sites_within(site, radius))

    def test_neighbour_table_rows_match_per_site_scan(self, topology):
        for radius in RADII:
            table = topology.neighbour_table(radius)
            for site in range(topology.num_sites):
                assert list(table[site]) == topology.sites_within(site, radius)

    def test_euclidean_rows_consistent_with_pairwise_distance(self, topology):
        for site in range(topology.num_sites):
            row = topology.euclidean_row(site)
            assert len(row) == topology.num_sites
            for other in range(topology.num_sites):
                assert row[other] == topology.euclidean_distance(site, other)
            assert row[site] == 0.0

    def test_rectangular_rows_consistent_with_pairwise_distance(self, topology):
        for site in range(topology.num_sites):
            row = topology.rectangular_row(site)
            for other in range(topology.num_sites):
                assert row[other] == topology.rectangular_distance(site, other)

    def test_euclidean_rows_bit_identical_to_scalar_formula(self, topology):
        positions = topology.positions()
        for site in range(topology.num_sites):
            row = topology.euclidean_row(site)
            x, y = positions[site]
            for other, (px, py) in enumerate(positions):
                assert row[other] == math.hypot(x - px, y - py)

    def test_plain_rectangular_metric_bit_identical_to_scalar_formula(self, topology):
        # The *grid* metric (numpy kernel vs scalar |dx|+|dy|).  Zoned
        # topologies layer corridor penalties on top; peel them off via the
        # documented crossing count so the base metric stays pinned.
        positions = topology.positions()
        for site in range(topology.num_sites):
            row = topology.rectangular_row(site)
            x, y = positions[site]
            for other, (px, py) in enumerate(positions):
                expected = abs(x - px) + abs(y - py)
                if isinstance(topology, ZonedTopology):
                    expected += (topology.corridor_transit_um
                                 * topology.zone_crossings(site, other))
                assert row[other] == expected

    def test_zone_partition_covers_every_site_exactly_once(self, topology):
        partition = topology.zone_partition()
        assert len(partition) == topology.num_zones
        seen = [site for group in partition for site in group]
        assert sorted(seen) == list(range(topology.num_sites))
        assert len(seen) == len(set(seen))
        for zone_index, group in enumerate(partition):
            for site in group:
                assert topology.zone_of(site) == zone_index

    def test_entangling_sites_consistent_with_predicate(self, topology):
        entangling = set(topology.entangling_sites())
        for site in range(topology.num_sites):
            assert (site in entangling) == topology.is_entangling_site(site)
        assert topology.all_sites_entangling == (
            len(entangling) == topology.num_sites)

    def test_interaction_predicate_matches_table(self, topology):
        for radius in RADII:
            table = topology.interaction_neighbour_table(radius)
            for site in range(topology.num_sites):
                members = set(table[site])
                for other in range(topology.num_sites):
                    if other == site:
                        continue
                    assert topology.can_interact_within(site, other, radius) == \
                        (other in members)


class TestNumpyFallbackParity:
    """The scalar fallback must produce bit-identical rows and tables."""

    @pytest.mark.parametrize("kind,kwargs", [
        ("square", dict(spacing=3.0)),
        ("square", dict(spacing=0.3)),
        ("rectangular", dict(cols=9, spacing=3.0, spacing_y=2.0)),
        ("zoned", dict(spacing=3.0)),
    ])
    def test_rows_and_tables_identical_without_numpy(self, kind, kwargs,
                                                     monkeypatch):
        import repro.hardware.topology as topology_module
        with_numpy = build_topology(kind, 7, **kwargs)
        # Materialise the kernel-built tables/rows *before* disabling numpy
        # (the kernel is consulted lazily at call time).
        kernel_tables = {radius: with_numpy.neighbour_table(radius)
                         for radius in RADII}
        kernel_interaction = {radius: with_numpy.interaction_neighbour_table(radius)
                              for radius in RADII}
        kernel_rect = [with_numpy.rectangular_row(site)
                       for site in range(with_numpy.num_sites)]
        kernel_euclid = [with_numpy.euclidean_row(site)
                         for site in range(with_numpy.num_sites)]
        monkeypatch.setattr(topology_module, "_np", None)
        without_numpy = build_topology(kind, 7, **kwargs)
        assert without_numpy._xs is None
        for radius in RADII:
            assert kernel_tables[radius] == without_numpy.neighbour_table(radius)
            assert kernel_interaction[radius] == \
                without_numpy.interaction_neighbour_table(radius)
        for site in range(with_numpy.num_sites):
            assert kernel_rect[site] == without_numpy.rectangular_row(site)
            assert kernel_euclid[site] == without_numpy.euclidean_row(site)


class TestGridTopologyValidation:
    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            GridTopology(0, 5)
        with pytest.raises(ValueError):
            GridTopology(5, 0)
        with pytest.raises(ValueError):
            GridTopology(5, 5, spacing_x=0.0)
        with pytest.raises(ValueError):
            GridTopology(5, 5, spacing_x=3.0, spacing_y=-1.0)

    def test_anisotropic_positions_and_site_near(self):
        grid = RectangularLattice(4, 6, spacing_x=2.0, spacing_y=5.0)
        assert grid.position(0) == (0.0, 0.0)
        assert grid.position(grid.site_at(2, 3)) == (6.0, 10.0)
        assert grid.site_near(6.4, 9.0) == grid.site_at(2, 3)
        assert grid.spacing == 2.0  # lattice constant d = min pitch

    def test_anisotropic_offsets_use_per_axis_pitch(self):
        grid = RectangularLattice(5, 5, spacing_x=1.0, spacing_y=10.0)
        centre = grid.site_at(2, 2)
        # radius 2 um reaches two columns but no other row
        neighbours = grid.sites_within(centre, 2.0)
        assert neighbours == [grid.site_at(2, 0), grid.site_at(2, 1),
                              grid.site_at(2, 3), grid.site_at(2, 4)]
