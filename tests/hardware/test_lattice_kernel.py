"""Bit-compatibility of the numpy row-vector kernel with the scalar math.

The mapper's cost functions compare cached distance-row values against each
other, and the op stream must stay bit-identical across engine revisions —
so the numpy kernel in :mod:`repro.hardware.lattice` is only admissible if
its rows match the ``math.hypot`` / ``abs`` scalar formulas to the last
bit, and the vectorised neighbour tables match the per-site scans exactly.
These tests assert that on representative lattices and radii; on a platform
where the kernel diverged they would fail loudly rather than let results
drift silently.
"""

from __future__ import annotations

import math

import pytest

from repro.hardware import SiteConnectivity, SquareLattice
from repro.hardware.presets import preset

LATTICES = [
    SquareLattice(5, 5, 3.0),
    SquareLattice(9, 9, 3.0),
    SquareLattice(7, 12, 2.5),
    SquareLattice(16, 16, 3.0),
    # Non-exactly-representable spacings: these are the cases where a naive
    # vectorised sqrt(dx^2 + dy^2) diverges from math.hypot in the last bit,
    # so they pin the bit-identity contract hardest.
    SquareLattice(8, 8, 0.3),
    SquareLattice(6, 9, 1.1),
    SquareLattice(7, 7, 2.7),
]

RADII = (2.0, 3.0, 4.5, 6.0, 12.0 + 1e-9)


@pytest.mark.parametrize("lattice", LATTICES, ids=repr)
class TestDistanceRowKernel:
    def test_euclidean_rows_bit_identical_to_math_hypot(self, lattice):
        for site in range(lattice.num_sites):
            row = lattice.euclidean_row(site)
            x, y = lattice.position(site)
            for other, (px, py) in enumerate(lattice.positions()):
                assert row[other] == math.hypot(x - px, y - py)
                assert row[other] == lattice.euclidean_distance(site, other)

    def test_rectangular_rows_bit_identical_to_scalar_formula(self, lattice):
        for site in range(lattice.num_sites):
            row = lattice.rectangular_row(site)
            x, y = lattice.position(site)
            for other, (px, py) in enumerate(lattice.positions()):
                assert row[other] == abs(x - px) + abs(y - py)
                assert row[other] == lattice.rectangular_distance(site, other)


@pytest.mark.parametrize("lattice", LATTICES, ids=repr)
@pytest.mark.parametrize("radius", RADII)
class TestNeighbourTableKernel:
    def test_neighbour_table_matches_per_site_scan(self, lattice, radius):
        table = lattice.neighbour_table(radius)
        assert len(table) == lattice.num_sites
        for site in range(lattice.num_sites):
            assert list(table[site]) == lattice.sites_within(site, radius)

    def test_sites_within_set_matches_list(self, lattice, radius):
        for site in (0, lattice.num_sites // 2, lattice.num_sites - 1):
            assert lattice.sites_within_set(site, radius) == \
                frozenset(lattice.sites_within(site, radius))


class TestConnectivityUsesKernel:
    @pytest.mark.parametrize("hardware", ("gate", "mixed", "shuttling"))
    def test_adjacency_matches_per_site_scan(self, hardware):
        architecture = preset(hardware, lattice_rows=8, num_atoms=30)
        connectivity = SiteConnectivity(architecture)
        lattice = architecture.lattice
        for site in range(lattice.num_sites):
            expected = lattice.sites_within(
                site, architecture.interaction_radius_um)
            assert list(connectivity.interaction_neighbours(site)) == expected
            row = connectivity.adjacency_row(site)
            assert [other for other in range(lattice.num_sites) if row[other]] \
                == sorted(expected)
            for other in expected:
                assert connectivity.are_adjacent(site, other)

    def test_restriction_neighbours_match_scan(self):
        architecture = preset("mixed", lattice_rows=7, num_atoms=20)
        connectivity = SiteConnectivity(architecture)
        lattice = architecture.lattice
        for site in range(lattice.num_sites):
            assert list(connectivity.restriction_neighbours(site)) == \
                lattice.sites_within(site, architecture.restriction_radius_um)
