"""Unit tests for the square trap lattice."""

import math

import pytest

from repro.hardware import SquareLattice


class TestConstruction:
    def test_basic_properties(self):
        lattice = SquareLattice(3, 4, 2.0)
        assert lattice.num_sites == 12
        assert len(lattice) == 12
        assert list(lattice) == list(range(12))

    def test_square_default_columns(self):
        lattice = SquareLattice(5, spacing=3.0)
        assert lattice.rows == lattice.cols == 5

    @pytest.mark.parametrize("rows,cols,spacing", [(0, 3, 1.0), (3, 0, 1.0), (3, 3, 0.0)])
    def test_invalid_parameters(self, rows, cols, spacing):
        with pytest.raises(ValueError):
            SquareLattice(rows, cols, spacing)


class TestIndexing:
    def test_row_col_round_trip(self):
        lattice = SquareLattice(4, 5, 1.0)
        for site in lattice:
            row, col = lattice.row_col(site)
            assert lattice.site_at(row, col) == site

    def test_position_scales_with_spacing(self):
        lattice = SquareLattice(3, 3, 3.0)
        assert lattice.position(0) == (0.0, 0.0)
        assert lattice.position(4) == (3.0, 3.0)
        assert lattice.position(8) == (6.0, 6.0)

    def test_site_near(self):
        lattice = SquareLattice(3, 3, 3.0)
        assert lattice.site_near(3.1, 2.9) == 4
        assert lattice.site_near(-5.0, -5.0) == 0
        assert lattice.site_near(100.0, 100.0) == 8

    def test_out_of_range_rejected(self):
        lattice = SquareLattice(2, 2, 1.0)
        with pytest.raises(ValueError):
            lattice.position(4)
        with pytest.raises(ValueError):
            lattice.site_at(2, 0)

    def test_positions_list(self):
        lattice = SquareLattice(2, 2, 1.0)
        assert lattice.positions() == [(0, 0), (1, 0), (0, 1), (1, 1)]


class TestDistances:
    def test_euclidean_distance(self):
        lattice = SquareLattice(3, 3, 3.0)
        assert lattice.euclidean_distance(0, 1) == pytest.approx(3.0)
        assert lattice.euclidean_distance(0, 4) == pytest.approx(3.0 * math.sqrt(2))
        assert lattice.euclidean_distance(0, 8) == pytest.approx(6.0 * math.sqrt(2))

    def test_rectangular_distance(self):
        lattice = SquareLattice(3, 3, 3.0)
        assert lattice.rectangular_distance(0, 8) == pytest.approx(12.0)
        assert lattice.rectangular_distance(0, 1) == pytest.approx(3.0)

    def test_grid_distance(self):
        lattice = SquareLattice(4, 4, 1.0)
        assert lattice.grid_distance(0, 5) == 1
        assert lattice.grid_distance(0, 15) == 3

    def test_distance_symmetry(self):
        lattice = SquareLattice(4, 4, 2.0)
        for a, b in [(0, 7), (3, 12), (5, 10)]:
            assert lattice.euclidean_distance(a, b) == lattice.euclidean_distance(b, a)
            assert lattice.rectangular_distance(a, b) == lattice.rectangular_distance(b, a)


class TestNeighbourhoods:
    def test_sites_within_radius_one_spacing(self):
        lattice = SquareLattice(5, 5, 3.0)
        centre = lattice.site_at(2, 2)
        neighbours = lattice.sites_within(centre, 3.0)
        assert len(neighbours) == 4  # von Neumann neighbourhood

    def test_sites_within_radius_two_spacings(self):
        lattice = SquareLattice(7, 7, 3.0)
        centre = lattice.site_at(3, 3)
        # r = 2d covers offsets with dr^2 + dc^2 <= 4: 12 sites
        assert len(lattice.sites_within(centre, 6.0)) == 12

    def test_sites_within_respects_boundaries(self):
        lattice = SquareLattice(5, 5, 3.0)
        corner = lattice.site_at(0, 0)
        assert len(lattice.sites_within(corner, 3.0)) == 2

    def test_zero_radius(self):
        lattice = SquareLattice(3, 3, 1.0)
        assert lattice.sites_within(4, 0.0) == []
        assert lattice.neighbourhood_size(0.0) == 0

    def test_neighbourhood_size_matches_bulk_site(self):
        lattice = SquareLattice(9, 9, 3.0)
        centre = lattice.site_at(4, 4)
        for radius in (3.0, 4.5, 6.0, 7.5):
            assert lattice.neighbourhood_size(radius) == len(lattice.sites_within(centre, radius))

    def test_all_pairs_within(self):
        lattice = SquareLattice(3, 3, 1.0)
        pairs = list(lattice.all_pairs_within(1.0))
        assert len(pairs) == 12  # grid edges of a 3x3 lattice
        assert all(a < b for a, b in pairs)

    def test_boundary_and_interior_partition(self):
        lattice = SquareLattice(5, 5, 1.0)
        boundary = set(lattice.boundary_sites())
        interior = set(lattice.interior_sites())
        assert boundary | interior == set(range(25))
        assert boundary & interior == set()
        assert len(interior) == 9
