"""Unit tests for the site connectivity graph."""

import pytest

from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice


class TestAdjacency:
    def test_interaction_neighbours_bulk_count(self, small_architecture, small_connectivity):
        centre = small_architecture.lattice.site_at(3, 3)
        assert len(small_connectivity.interaction_neighbours(centre)) == 12

    def test_restriction_neighbours_superset(self, small_connectivity, small_architecture):
        # r_restr == r_int for this architecture -> identical neighbourhoods
        for site in range(small_architecture.lattice.num_sites):
            assert set(small_connectivity.restriction_neighbours(site)) == set(
                small_connectivity.interaction_neighbours(site))

    def test_restriction_radius_larger_than_interaction(self):
        arch = NeutralAtomArchitecture(
            lattice=SquareLattice(7, 7, 3.0), num_atoms=20,
            interaction_radius=1.0, restriction_radius=2.0)
        connectivity = SiteConnectivity(arch)
        centre = arch.lattice.site_at(3, 3)
        assert len(connectivity.restriction_neighbours(centre)) > len(
            connectivity.interaction_neighbours(centre))

    def test_are_adjacent_symmetric(self, small_connectivity):
        for a, b in [(0, 1), (0, 7), (10, 22), (5, 30)]:
            assert small_connectivity.are_adjacent(a, b) == small_connectivity.are_adjacent(b, a)

    def test_coordination_number(self, small_connectivity, small_architecture):
        corner = small_architecture.lattice.site_at(0, 0)
        centre = small_architecture.lattice.site_at(3, 3)
        assert small_connectivity.coordination_number(corner) < \
            small_connectivity.coordination_number(centre)

    def test_mutual_interaction_of_a_cluster(self, small_connectivity, small_architecture):
        lattice = small_architecture.lattice
        block = [lattice.site_at(2, 2), lattice.site_at(2, 3),
                 lattice.site_at(3, 2), lattice.site_at(3, 3)]
        assert small_connectivity.sites_mutually_interacting(block)
        far = block[:3] + [lattice.site_at(5, 5)]
        assert not small_connectivity.sites_mutually_interacting(far)

    def test_mutual_interaction_rejects_duplicates(self, small_connectivity):
        assert not small_connectivity.sites_mutually_interacting([3, 3])


class TestDistances:
    def test_hop_distance_adjacent(self, small_connectivity):
        assert small_connectivity.hop_distance(0, 1) == 1

    def test_hop_distance_across_lattice(self, small_connectivity, small_architecture):
        lattice = small_architecture.lattice
        a = lattice.site_at(0, 0)
        b = lattice.site_at(5, 5)
        hops = small_connectivity.hop_distance(a, b)
        # with r_int = 2d the maximum per-hop displacement is 2 in each axis
        assert 3 <= hops <= 5

    def test_hop_distance_symmetric(self, small_connectivity):
        assert small_connectivity.hop_distance(2, 33) == small_connectivity.hop_distance(33, 2)

    def test_bfs_distances_respect_allowed_filter(self, small_connectivity,
                                                  small_architecture):
        lattice = small_architecture.lattice
        source = lattice.site_at(0, 0)
        # Only allow the first row: the far end of the row stays reachable but
        # needs strictly more hops than on the unrestricted lattice.
        allowed = {lattice.site_at(0, c) for c in range(lattice.cols)}
        restricted = small_connectivity.bfs_distances_from(source, allowed=allowed)
        unrestricted = small_connectivity.bfs_distances_from(source)
        target = lattice.site_at(0, 5)
        assert restricted[target] >= unrestricted[target]
        assert lattice.site_at(3, 3) not in restricted

    def test_shortest_path_endpoints_and_adjacency(self, small_connectivity):
        path = small_connectivity.shortest_path(0, 35)
        assert path is not None
        assert path[0] == 0 and path[-1] == 35
        for a, b in zip(path, path[1:]):
            assert small_connectivity.are_adjacent(a, b)

    def test_shortest_path_trivial(self, small_connectivity):
        assert small_connectivity.shortest_path(4, 4) == [4]

    def test_shortest_path_with_allowed_filter(self, small_connectivity, small_architecture):
        lattice = small_architecture.lattice
        allowed = {lattice.site_at(0, c) for c in range(lattice.cols)}
        path = small_connectivity.shortest_path(lattice.site_at(0, 0),
                                                lattice.site_at(0, 5), allowed=allowed)
        assert path is not None
        assert all(site in allowed for site in path)


class TestGraphExports:
    def test_site_graph_edge_count(self, small_connectivity, small_architecture):
        graph = small_connectivity.site_graph()
        assert graph.number_of_nodes() == small_architecture.lattice.num_sites
        degrees = dict(graph.degree())
        centre = small_architecture.lattice.site_at(3, 3)
        assert degrees[centre] == 12

    def test_occupied_subgraph(self, small_connectivity):
        occupied = {0, 1, 2, 14, 15}
        graph = small_connectivity.occupied_subgraph(occupied)
        assert set(graph.nodes) == occupied
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 15) or small_connectivity.are_adjacent(0, 15)
