"""Unit tests for the architecture description."""

import pytest

from repro.hardware import (
    Fidelities,
    GateDurations,
    NeutralAtomArchitecture,
    SquareLattice,
)


class TestGateDurations:
    def test_entangling_durations_from_table(self):
        durations = GateDurations()
        assert durations.entangling(2) == pytest.approx(0.2)
        assert durations.entangling(3) == pytest.approx(0.4)
        assert durations.entangling(4) == pytest.approx(0.6)

    def test_wider_gates_extrapolate_linearly(self):
        durations = GateDurations()
        assert durations.entangling(5) == pytest.approx(0.8)
        assert durations.entangling(6) == pytest.approx(1.0)

    def test_single_qubit_width_rejected(self):
        with pytest.raises(ValueError):
            GateDurations().entangling(1)


class TestFidelities:
    def test_entangling_fidelity_scales_per_pair(self):
        fid = Fidelities(cz=0.99)
        assert fid.entangling(2) == pytest.approx(0.99)
        assert fid.entangling(3) == pytest.approx(0.99 ** 2)
        assert fid.entangling(4) == pytest.approx(0.99 ** 3)

    def test_out_of_range_fidelity_rejected(self):
        with pytest.raises(ValueError):
            Fidelities(cz=0.0)
        with pytest.raises(ValueError):
            Fidelities(single_qubit=1.5)

    def test_entangling_requires_two_qubits(self):
        with pytest.raises(ValueError):
            Fidelities().entangling(1)


class TestArchitecture:
    def test_default_construction(self):
        arch = NeutralAtomArchitecture()
        assert arch.lattice.num_sites == 225
        assert arch.num_atoms == 200
        assert arch.interaction_radius_um == pytest.approx(2.5 * 3.0)

    def test_validation_errors(self):
        lattice = SquareLattice(4, 4, 3.0)
        with pytest.raises(ValueError):
            NeutralAtomArchitecture(lattice=lattice, num_atoms=16)  # no free trap
        with pytest.raises(ValueError):
            NeutralAtomArchitecture(lattice=lattice, num_atoms=0)
        with pytest.raises(ValueError):
            NeutralAtomArchitecture(lattice=lattice, num_atoms=10,
                                    interaction_radius=2.0, restriction_radius=1.0)
        with pytest.raises(ValueError):
            NeutralAtomArchitecture(lattice=lattice, num_atoms=10, shuttling_speed=0.0)
        with pytest.raises(ValueError):
            NeutralAtomArchitecture(lattice=lattice, num_atoms=10, t1=-1.0)

    def test_effective_decoherence_time(self):
        arch = NeutralAtomArchitecture(t1=100.0, t2=50.0,
                                       lattice=SquareLattice(5, 5, 3.0), num_atoms=10)
        assert arch.effective_decoherence_time == pytest.approx(100 * 50 / 150)

    def test_coordination_number(self, small_architecture):
        # r_int = 2d on a square lattice -> 12 sites within reach of a bulk site
        assert small_architecture.coordination_number == 12

    def test_can_interact_and_restriction(self, small_architecture):
        lattice = small_architecture.lattice
        a = lattice.site_at(2, 2)
        b = lattice.site_at(2, 4)
        c = lattice.site_at(5, 5)
        assert small_architecture.can_interact(a, b)
        assert not small_architecture.can_interact(a, c)
        assert small_architecture.within_restriction(a, b)

    def test_gate_duration_and_fidelity_dispatch(self, small_architecture):
        assert small_architecture.gate_duration(1) == pytest.approx(0.5)
        assert small_architecture.gate_duration(3) == pytest.approx(0.4)
        assert small_architecture.gate_fidelity(1) == pytest.approx(0.999)
        assert small_architecture.gate_fidelity(2) == pytest.approx(0.995)

    def test_shuttle_durations(self, small_architecture):
        travel_only = small_architecture.shuttle_duration(
            30.0, include_activation=False, include_deactivation=False)
        assert travel_only == pytest.approx(100.0)
        full = small_architecture.shuttle_duration(30.0)
        assert full == pytest.approx(100.0 + 40.0 + 40.0)

    def test_with_overrides(self, small_architecture):
        changed = small_architecture.with_overrides(num_atoms=10, name="changed")
        assert changed.num_atoms == 10
        assert changed.name == "changed"
        assert small_architecture.num_atoms == 20  # original untouched

    def test_summary_contains_all_headline_parameters(self, small_architecture):
        summary = small_architecture.summary()
        for key in ("r_int", "F_cz", "F_shuttle", "t_cz_us", "T1_us", "num_atoms"):
            assert key in summary

    def test_swap_cz_cost(self, small_architecture):
        assert small_architecture.swap_cz_cost() == 3
