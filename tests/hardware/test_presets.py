"""Unit tests for the Table 1c hardware presets."""

import pytest

from repro.hardware.presets import (
    PRESET_NAMES,
    gate_optimised,
    mixed,
    preset,
    shuttling_optimised,
)


class TestTable1cValues:
    def test_shuttling_preset_matches_table(self):
        arch = shuttling_optimised()
        assert arch.interaction_radius == pytest.approx(2.0)
        assert arch.restriction_radius == pytest.approx(2.0)
        assert arch.fidelities.cz == pytest.approx(0.994)
        assert arch.fidelities.single_qubit == pytest.approx(0.995)
        assert arch.fidelities.shuttling == pytest.approx(1.0)
        assert arch.shuttling_speed == pytest.approx(0.55)
        assert arch.durations.aod_activation == pytest.approx(20.0)

    def test_gate_preset_matches_table(self):
        arch = gate_optimised()
        assert arch.interaction_radius == pytest.approx(4.5)
        assert arch.fidelities.cz == pytest.approx(0.9995)
        assert arch.fidelities.single_qubit == pytest.approx(0.9999)
        assert arch.fidelities.shuttling == pytest.approx(0.999)
        assert arch.shuttling_speed == pytest.approx(0.2)
        assert arch.durations.aod_activation == pytest.approx(50.0)

    def test_mixed_preset_matches_table(self):
        arch = mixed()
        assert arch.interaction_radius == pytest.approx(2.5)
        assert arch.fidelities.cz == pytest.approx(0.995)
        assert arch.fidelities.single_qubit == pytest.approx(0.999)
        assert arch.fidelities.shuttling == pytest.approx(0.9999)
        assert arch.shuttling_speed == pytest.approx(0.3)
        assert arch.durations.aod_activation == pytest.approx(40.0)

    @pytest.mark.parametrize("factory", [shuttling_optimised, gate_optimised, mixed])
    def test_shared_parameters(self, factory):
        arch = factory()
        assert arch.lattice.rows == arch.lattice.cols == 15
        assert arch.lattice.spacing == pytest.approx(3.0)
        assert arch.num_atoms == 200
        assert arch.durations.single_qubit == pytest.approx(0.5)
        assert arch.durations.cz == pytest.approx(0.2)
        assert arch.durations.ccz == pytest.approx(0.4)
        assert arch.durations.cccz == pytest.approx(0.6)
        assert arch.t1 == pytest.approx(1e8)
        assert arch.t2 == pytest.approx(1.5e6)


class TestFactory:
    def test_preset_by_name(self):
        for name in PRESET_NAMES:
            arch = preset(name)
            assert arch.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            preset("unknown")

    def test_scaled_down_instances(self):
        arch = preset("mixed", lattice_rows=8, num_atoms=40)
        assert arch.lattice.rows == 8
        assert arch.num_atoms == 40

    def test_default_atom_count_never_exceeds_sites(self):
        arch = preset("gate", lattice_rows=6)
        assert arch.num_atoms < arch.lattice.num_sites
