"""Unit tests for the AOD compatibility rules and batch scheduling."""

import pytest

from repro.shuttling import (
    Move,
    ghost_spot_positions,
    group_moves,
    moves_compatible,
    schedule_batch,
    schedule_moves,
)


def move(atom, src_xy, dst_xy, source=None, destination=None):
    """Helper building moves directly from physical coordinates (3 um grid)."""
    if source is None:
        source = int(src_xy[1] / 3.0) * 100 + int(src_xy[0] / 3.0)
    if destination is None:
        destination = int(dst_xy[1] / 3.0) * 100 + int(dst_xy[0] / 3.0) + 10_000
    return Move(atom=atom, source=source, destination=destination,
                source_position=src_xy, destination_position=dst_xy)


class TestCompatibility:
    def test_parallel_translation_is_compatible(self):
        a = move(0, (0.0, 0.0), (6.0, 0.0))
        b = move(1, (0.0, 3.0), (6.0, 3.0))
        assert moves_compatible(a, b)

    def test_crossing_in_x_is_incompatible(self):
        a = move(0, (0.0, 0.0), (9.0, 0.0))
        b = move(1, (6.0, 3.0), (3.0, 3.0))
        # a starts left of b but ends right of b's end -> columns would cross
        assert not moves_compatible(a, b)

    def test_crossing_in_y_is_incompatible(self):
        a = move(0, (0.0, 0.0), (0.0, 9.0))
        b = move(1, (3.0, 6.0), (3.0, 3.0))
        assert not moves_compatible(a, b)

    def test_merge_and_split_are_allowed(self):
        a = move(0, (0.0, 0.0), (3.0, 3.0))
        b = move(1, (6.0, 0.0), (3.0, 6.0))   # both end on x = 3 (merge in x)
        assert moves_compatible(a, b)

    def test_same_atom_incompatible(self):
        a = move(0, (0.0, 0.0), (3.0, 0.0))
        b = move(0, (3.0, 3.0), (6.0, 3.0))
        assert not moves_compatible(a, b)

    def test_same_destination_incompatible(self):
        a = move(0, (0.0, 0.0), (6.0, 6.0), destination=42)
        b = move(1, (3.0, 0.0), (6.0, 6.0), destination=42)
        assert not moves_compatible(a, b)

    def test_chained_source_destination_incompatible(self):
        a = move(0, (0.0, 0.0), (3.0, 0.0), source=1, destination=2)
        b = move(1, (3.0, 0.0), (6.0, 0.0), source=2, destination=3)
        assert not moves_compatible(a, b)

    def test_compatibility_is_symmetric(self):
        a = move(0, (0.0, 0.0), (6.0, 0.0))
        b = move(1, (0.0, 3.0), (6.0, 3.0))
        c = move(2, (6.0, 6.0), (0.0, 6.0))
        assert moves_compatible(a, b) == moves_compatible(b, a)
        assert moves_compatible(a, c) == moves_compatible(c, a)


class TestGrouping:
    def test_compatible_moves_share_a_batch(self):
        moves = [move(0, (0.0, 0.0), (6.0, 0.0)), move(1, (0.0, 3.0), (6.0, 3.0)),
                 move(2, (0.0, 6.0), (6.0, 6.0))]
        batches = group_moves(moves)
        assert len(batches) == 1
        assert len(batches[0]) == 3

    def test_incompatible_moves_split_batches(self):
        moves = [move(0, (0.0, 0.0), (9.0, 0.0)), move(1, (6.0, 3.0), (3.0, 3.0))]
        batches = group_moves(moves)
        assert len(batches) == 2

    def test_empty_input(self):
        assert group_moves([]) == []

    def test_every_move_appears_exactly_once(self):
        moves = [move(i, (3.0 * i, 0.0), (3.0 * i, 6.0 + 3.0 * (i % 2))) for i in range(6)]
        batches = group_moves(moves)
        flattened = [m.atom for batch in batches for m in batch]
        assert sorted(flattened) == list(range(6))


class TestBatchScheduling:
    def test_single_move_duration_model(self, small_architecture):
        single = move(0, (0.0, 0.0), (6.0, 3.0))
        batch = schedule_batch([single], small_architecture)
        expected = 40.0 + (6.0 + 3.0) / 0.3 + 40.0
        assert batch.duration == pytest.approx(expected)
        assert [instr.kind for instr in batch.instructions] == ["activate", "shift",
                                                                "deactivate"]

    def test_batch_duration_uses_longest_move(self, small_architecture):
        moves = [move(0, (0.0, 0.0), (3.0, 0.0)), move(1, (0.0, 3.0), (12.0, 3.0))]
        batch = schedule_batch(moves, small_architecture)
        travel = 12.0 / 0.3
        assert batch.duration >= 40.0 + travel + 40.0

    def test_multi_row_loading_costs_extra_activation(self, small_architecture):
        same_row = [move(0, (0.0, 0.0), (0.0, 6.0)), move(1, (3.0, 0.0), (3.0, 6.0))]
        two_rows = [move(0, (0.0, 0.0), (0.0, 9.0)), move(1, (3.0, 3.0), (3.0, 9.0 + 3.0))]
        same_row_duration = schedule_batch(same_row, small_architecture).duration
        two_row_duration = schedule_batch(two_rows, small_architecture).duration
        # identical travel distances (6 um vs 9 um differ) -- compare only the
        # activation portion by rebuilding with equal travel
        assert schedule_batch(two_rows, small_architecture).instructions[0].duration > \
            schedule_batch(same_row, small_architecture).instructions[0].duration

    def test_incompatible_batch_rejected(self, small_architecture):
        moves = [move(0, (0.0, 0.0), (9.0, 0.0)), move(1, (6.0, 3.0), (3.0, 3.0))]
        with pytest.raises(ValueError):
            schedule_batch(moves, small_architecture)

    def test_empty_batch(self, small_architecture):
        batch = schedule_batch([], small_architecture)
        assert batch.duration == 0.0
        assert batch.instructions == []

    def test_schedule_moves_partitions_everything(self, small_architecture):
        moves = [move(i, (3.0 * i, 0.0), (3.0 * i, 9.0)) for i in range(4)]
        moves.append(move(9, (0.0, 12.0), (9.0, 3.0)))
        batches = schedule_moves(moves, small_architecture)
        total = sum(len(b.moves) for b in batches)
        assert total == 5
        assert all(b.duration > 0 for b in batches)


class TestGhostSpots:
    def test_ghost_spots_are_unoccupied_intersections(self):
        moves = [move(0, (0.0, 0.0), (6.0, 0.0)), move(1, (3.0, 3.0), (9.0, 3.0))]
        ghosts = ghost_spot_positions(moves)
        assert (3.0, 0.0) in ghosts
        assert (0.0, 3.0) in ghosts
        assert (0.0, 0.0) not in ghosts
        assert (3.0, 3.0) not in ghosts

    def test_single_move_has_no_ghost_spots(self):
        assert ghost_spot_positions([move(0, (0.0, 0.0), (3.0, 0.0))]) == set()

    def test_example2_scenario(self):
        # Example 2 of the paper: q0 in one row, q3/q4 in another row.
        q0 = move(0, (6.0, 3.0), (3.0, 6.0))
        q3 = move(3, (3.0, 9.0), (9.0, 6.0))
        q4 = move(4, (15.0, 9.0), (15.0, 6.0))
        ghosts = ghost_spot_positions([q0, q3, q4])
        occupied = {(6.0, 3.0), (3.0, 9.0), (15.0, 9.0)}
        assert ghosts.isdisjoint(occupied)
