"""Unit tests for move primitives and move chains."""

import pytest

from repro.shuttling import Move, MoveChain


def make_move(atom=0, source=0, destination=1, src_pos=(0.0, 0.0), dst_pos=(3.0, 0.0),
              is_move_away=False):
    return Move(atom=atom, source=source, destination=destination,
                source_position=src_pos, destination_position=dst_pos,
                is_move_away=is_move_away)


class TestMove:
    def test_displacement_and_distances(self):
        move = make_move(dst_pos=(3.0, 4.0))
        assert move.displacement == (3.0, 4.0)
        assert move.rectangular_distance == pytest.approx(7.0)
        assert move.euclidean_distance == pytest.approx(5.0)

    def test_move_must_change_site(self):
        with pytest.raises(ValueError):
            make_move(source=3, destination=3)

    def test_move_away_flag(self):
        assert make_move(is_move_away=True).is_move_away
        assert not make_move().is_move_away

    def test_string_representation_mentions_flavour(self):
        assert "move-away" in str(make_move(is_move_away=True))
        assert "move-away" not in str(make_move())


class TestMoveChain:
    def test_container_protocol(self):
        chain = MoveChain([make_move(atom=0), make_move(atom=1, source=5, destination=6)])
        assert len(chain) == 2
        assert bool(chain)
        assert [m.atom for m in chain] == [0, 1]
        assert not MoveChain([])

    def test_total_distance_and_move_away_count(self):
        chain = MoveChain([
            make_move(atom=0, dst_pos=(3.0, 0.0), is_move_away=True),
            make_move(atom=1, source=2, destination=3, dst_pos=(0.0, 6.0)),
        ])
        assert chain.total_rectangular_distance == pytest.approx(9.0)
        assert chain.num_move_aways == 1
        assert chain.atoms() == [0, 1]

    def test_validate_accepts_well_formed_chain(self):
        chain = MoveChain([
            make_move(atom=0, source=0, destination=9),
            make_move(atom=1, source=4, destination=0),
        ])
        chain.validate(max_gate_width=3)

    def test_validate_rejects_atom_moved_twice(self):
        chain = MoveChain([
            make_move(atom=0, source=0, destination=1),
            make_move(atom=0, source=1, destination=2),
        ])
        with pytest.raises(ValueError):
            chain.validate()

    def test_validate_rejects_duplicate_destination(self):
        chain = MoveChain([
            make_move(atom=0, source=0, destination=5),
            make_move(atom=1, source=2, destination=5),
        ])
        with pytest.raises(ValueError):
            chain.validate()

    def test_validate_enforces_length_bound(self):
        moves = [make_move(atom=i, source=i, destination=10 + i) for i in range(5)]
        chain = MoveChain(moves)
        with pytest.raises(ValueError):
            chain.validate(max_gate_width=2)   # bound 2(m-1) = 2
        chain.validate(max_gate_width=4)       # bound 6 is fine
