"""Tracing primitives: span trees, context activation, Chrome export."""

import json
import threading

from repro.telemetry import tracing
from repro.telemetry.tracing import (
    Span,
    TraceContext,
    Tracer,
    chrome_trace_events,
    span_tree,
)


class TestSpanRecording:
    def test_span_without_active_trace_is_shared_noop(self):
        assert tracing.current_context() is None
        handle = tracing.span("anything")
        assert handle is tracing.span("anything else")
        with handle as inner:
            inner.set(ignored=True)  # must not raise

    def test_start_trace_collects_a_rooted_tree(self):
        with tracing.start_trace("request", task="t-1") as handle:
            with tracing.span("outer"):
                with tracing.span("inner", depth=2):
                    pass
            with tracing.span("sibling"):
                pass
        spans = {record.name: record for record in handle.spans}
        assert set(spans) == {"request", "outer", "inner", "sibling"}
        root = spans["request"]
        assert root.parent_id is None
        assert root.attrs == {"task": "t-1"}
        assert spans["outer"].parent_id == root.span_id
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["sibling"].parent_id == root.span_id
        assert len({record.trace_id for record in handle.spans}) == 1
        # No context bleeds past the with-block.
        assert tracing.current_context() is None

    def test_exception_marks_span_as_error_but_still_records_it(self):
        try:
            with tracing.start_trace("request") as handle:
                with tracing.span("failing"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        failing = next(record for record in handle.spans
                       if record.name == "failing")
        assert failing.status == "error"
        assert failing.attrs["error"] == "RuntimeError"

    def test_set_adds_attributes_mid_span(self):
        with tracing.start_trace("request") as handle:
            with tracing.span("op") as op:
                op.set(outcome="hit", size=3)
        op_span = next(record for record in handle.spans
                       if record.name == "op")
        assert op_span.attrs == {"outcome": "hit", "size": 3}

    def test_durations_are_nonnegative_and_ordered(self):
        with tracing.start_trace("request") as handle:
            with tracing.span("op"):
                pass
        for record in handle.spans:
            assert record.end_s >= record.start_s
            assert record.duration_s >= 0.0


class TestActivation:
    def test_activate_adopts_a_propagated_context(self):
        ctx = TraceContext("trace-1", "root-span")
        with tracing.activate(ctx) as sink:
            with tracing.span("remote.op"):
                pass
        assert len(sink) == 1
        assert sink[0].trace_id == "trace-1"
        assert sink[0].parent_id == "root-span"

    def test_activate_none_is_a_noop(self):
        with tracing.activate(None) as sink:
            assert tracing.span("ignored") is tracing.span("also ignored")
        assert sink == []

    def test_sink_fills_even_when_the_body_raises(self):
        ctx = TraceContext("trace-1", "root-span")
        captured = []
        try:
            with tracing.activate(ctx, sink=captured):
                with tracing.span("op"):
                    pass
                raise RuntimeError("after the span closed")
        except RuntimeError:
            pass
        assert [record.name for record in captured] == ["op"]

    def test_threads_do_not_inherit_the_context(self):
        observed = []
        with tracing.start_trace("request"):
            thread = threading.Thread(
                target=lambda: observed.append(tracing.current_context()))
            thread.start()
            thread.join()
        assert observed == [None]


class TestTracer:
    def test_ingest_and_drain_by_trace_id(self):
        tracer = Tracer()
        tracer.ingest([_span("a", "t1"), _span("b", "t2"), _span("c", "t1")])
        assert [record.name for record in tracer.drain("t1")] == ["a", "c"]
        assert tracer.drain("t1") == []          # drained means gone
        assert [record.name for record in tracer.peek("t2")] == ["b"]
        assert [record.name for record in tracer.drain("t2")] == ["b"]

    def test_trace_eviction_is_bounded_and_counted(self):
        tracer = Tracer(max_traces=2)
        tracer.ingest([_span("a", "t1"), _span("b", "t2"), _span("c", "t3")])
        assert tracer.drain("t1") == []          # oldest trace evicted
        assert tracer.dropped == 1

    def test_per_trace_span_cap_drops_overflow(self):
        tracer = Tracer(max_spans_per_trace=2)
        tracer.ingest([_span(f"s{i}", "t1") for i in range(5)])
        assert len(tracer.drain("t1")) == 2
        assert tracer.dropped == 3

    def test_record_instant_lands_in_the_global_tracer(self):
        ctx = TraceContext("instant-trace", "parent-span")
        tracing.record_instant(ctx, "pool.crash", attempt=1)
        tracing.record_instant(None, "ignored")  # no context: no-op
        records = tracing.TRACER.drain("instant-trace")
        assert len(records) == 1
        assert records[0].kind == "instant"
        assert records[0].parent_id == "parent-span"
        assert records[0].attrs == {"attempt": 1}


class TestExport:
    def test_chrome_trace_events_shape(self):
        with tracing.start_trace("request") as handle:
            with tracing.span("op", detail="x"):
                pass
        tracing.record_instant(handle.context, "pool.retry")
        spans = handle.spans + tracing.TRACER.drain(handle.trace_id)
        payload = chrome_trace_events(spans)
        json.dumps(payload)  # must not raise
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 3
        by_name = {event["name"]: event for event in events}
        assert by_name["request"]["ph"] == "X"
        assert by_name["request"]["dur"] >= 0
        assert by_name["pool.retry"]["ph"] == "i"
        assert by_name["op"]["args"]["detail"] == "x"
        assert by_name["op"]["args"]["parent_id"] == \
            by_name["request"]["args"]["span_id"]
        # Timestamps are rebased: the earliest event starts at 0.
        assert min(event["ts"] for event in events) == 0.0

    def test_chrome_trace_events_empty_input(self):
        assert chrome_trace_events([]) == {
            "traceEvents": [], "displayTimeUnit": "ms"}

    def test_span_tree_indexes_children_and_exposes_orphans(self):
        with tracing.start_trace("request") as handle:
            with tracing.span("child"):
                pass
        tree = span_tree(handle.spans)
        assert [record.name for record in tree[None]] == ["request"]
        root_id = tree[None][0].span_id
        assert [record.name for record in tree[root_id]] == ["child"]
        # An orphan shows up as a parent key no span id resolves to.
        orphan = _span("lost", handle.trace_id, parent="no-such-span")
        tree = span_tree(handle.spans + [orphan])
        span_ids = {record.span_id for record in handle.spans}
        unresolved = set(tree) - span_ids - {None}
        assert unresolved == {"no-such-span"}


def _span(name: str, trace_id: str, parent: str = "p") -> Span:
    return Span(trace_id=trace_id, span_id=f"id-{name}", parent_id=parent,
                name=name, start_s=1.0, end_s=2.0)
