"""Metrics registry semantics: instruments, exporters, CounterSet.

Every test builds a private :class:`MetricsRegistry` — the process-global
one is shared with the production components, and test isolation is
exactly what private registries exist for.
"""

import json
import statistics
import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    CounterSet,
    MetricsRegistry,
    percentile,
    validate_prometheus_text,
)


class TestInstruments:
    def test_counter_increments_and_is_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("repro_events_total") is counter

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="monotonic"):
            registry.counter("repro_events_total").inc(-1)

    def test_labels_create_independent_series(self):
        registry = MetricsRegistry()
        alpha = registry.counter("repro_events_total", labels={"kind": "a"})
        beta = registry.counter("repro_events_total", labels={"kind": "b"})
        assert alpha is not beta
        alpha.inc(3)
        assert beta.value == 0
        # Label order does not matter: normalised to the same series.
        assert registry.counter(
            "repro_events_total", labels={"kind": "a"}) is alpha

    def test_gauge_holds_last_written_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_state")
        gauge.set(2)
        gauge.set(1)
        assert gauge.value == 1

    def test_histogram_counts_sum_and_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_latency_seconds",
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)
        # All mass at or below the last bucket that reaches the fraction.
        assert 0.0 < histogram.quantile(0.5) <= 1.0
        assert histogram.quantile(1.0) <= 10.0
        assert histogram.quantile(0.0) == pytest.approx(0.0, abs=0.11)

    def test_histogram_rejects_conflicting_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("repro_latency_seconds", buckets=(0.5, 2.0))

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("repro_thing")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")
        histogram = registry.histogram("repro_latency_seconds")
        gauge = registry.gauge("repro_state")
        registry.enabled = False
        counter.inc()
        histogram.observe(1.0)
        gauge.set(7)
        assert counter.value == 0
        assert histogram.count == 0 and histogram.sum == 0.0
        assert gauge.value == 0.0
        registry.enabled = True
        counter.inc()
        assert counter.value == 1

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_events_total")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_events_total", help="Events seen",
                         labels={"kind": "a"}).inc(2)
        registry.counter("repro_events_total", labels={"kind": "b"}).inc(1)
        registry.gauge("repro_state", help="Breaker state").set(1)
        histogram = registry.histogram("repro_latency_seconds",
                                       help="Latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_snapshot_is_json_safe_and_complete(self):
        snapshot = self._populated().snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["counters"]['repro_events_total{kind="a"}'] == 2
        assert snapshot["counters"]['repro_events_total{kind="b"}'] == 1
        assert snapshot["gauges"]["repro_state"] == 1
        histogram = snapshot["histograms"]["repro_latency_seconds"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(5.05)
        # Bucket counts are cumulative, ending at the +Inf total.
        assert histogram["buckets"]["+Inf"] == 2

    def test_prometheus_text_validates_and_carries_every_series(self):
        text = self._populated().render_prometheus()
        assert validate_prometheus_text(text) == []
        assert "# TYPE repro_events_total counter" in text
        assert "# HELP repro_events_total Events seen" in text
        assert 'repro_events_total{kind="a"} 2' in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert "repro_latency_seconds_count 2" in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text

    def test_validator_flags_malformed_lines(self):
        problems = validate_prometheus_text(
            "good_metric 1\n"
            "bad metric with spaces 1\n"
            "# BOGUS comment\n"
            "dangling_value\n")
        assert len(problems) == 3
        assert all(problem.startswith("line ") for problem in problems)

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_drops_instruments(self):
        registry = self._populated()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestPercentile:
    """The shared percentile helper must match the stdlib's inclusive
    quantiles — bench_serving and the gateway report through it."""

    @pytest.mark.parametrize("samples", [
        [3.0, 1.0, 2.0, 5.0, 4.0],
        [0.001 * index for index in range(100)],
        [7.0, 7.0, 7.0, 7.0],
        [2.5, 9.1],
    ])
    def test_matches_statistics_quantiles_inclusive(self, samples):
        cuts = statistics.quantiles(samples, n=100, method="inclusive")
        for k in (25, 50, 75, 90, 95, 99):
            assert percentile(samples, k / 100) == pytest.approx(cuts[k - 1])

    def test_edge_fractions_and_degenerate_inputs(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([42.0], 0.95) == 42.0
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0], 1.0) == 3.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_input_order_is_irrelevant(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == \
            percentile([1.0, 5.0, 9.0], 0.5) == 5.0


class _DemoStats(CounterSet):
    PREFIX = "repro_demo"
    FIELDS = ("hits", "misses")
    HELP = {"hits": "Demo hits"}


class TestCounterSet:
    def test_attribute_reads_and_augmented_assignment(self):
        registry = MetricsRegistry()
        stats = _DemoStats(registry)
        assert stats.hits == 0
        stats.hits += 1
        stats.hits += 2
        stats.misses += 1
        assert stats.hits == 3 and stats.misses == 1
        assert stats.as_dict() == {"hits": 3, "misses": 1}

    def test_state_lives_in_registry_series(self):
        registry = MetricsRegistry()
        stats = _DemoStats(registry)
        stats.hits += 2
        snapshot = registry.snapshot()["counters"]
        series = f'repro_demo_hits_total{{instance="{stats.instance}"}}'
        assert snapshot[series] == 2

    def test_instances_are_independent_series(self):
        registry = MetricsRegistry()
        first = _DemoStats(registry)
        second = _DemoStats(registry)
        assert first.instance != second.instance
        first.hits += 5
        assert second.hits == 0

    def test_decrement_is_rejected(self):
        stats = _DemoStats(MetricsRegistry())
        stats.hits += 2
        with pytest.raises(ValueError, match="monotonic"):
            stats.hits = 1

    def test_unknown_attribute_raises(self):
        stats = _DemoStats(MetricsRegistry())
        with pytest.raises(AttributeError):
            stats.nonexistent  # noqa: B018 - attribute access is the test


def test_default_latency_buckets_are_sorted_and_span_compile_scales():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001   # store touches
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 60.0   # full compiles
