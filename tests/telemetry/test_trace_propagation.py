"""Cross-process/thread trace propagation under chaos (ISSUE satellite).

A traced gateway request must yield ONE rooted span tree even when the
supervised pool crashes workers, retries tasks, or deadline-kills a hung
compile — and concurrent traced requests must never leak spans into each
other's trees.
"""

import asyncio
import hashlib
import os

import pytest

from repro.resilience import FaultPlan, FaultSpec, FaultyCompile, RetryPolicy
from repro.server import ServingGateway
from repro.service import ArchitectureSpec, CompilationTask
from repro.store import CompiledArtifact

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)


def _task(task_id: str, circuit: str = "qft", qubits: int = 8,
          seed: int = 7) -> CompilationTask:
    return CompilationTask(task_id, SPEC, circuit_name=circuit,
                          num_qubits=qubits, seed=seed)


def _events(response):
    assert response.trace is not None, "traced request must attach a trace"
    return response.trace["traceEvents"]


def _assert_single_rooted_tree(events):
    """Every event resolves to exactly one root through parent links."""
    roots = [event for event in events
             if event["args"]["parent_id"] is None]
    assert len(roots) == 1, \
        f"expected one root, got {[event['name'] for event in roots]}"
    assert roots[0]["name"] == "gateway.request"
    span_ids = {event["args"]["span_id"] for event in events}
    orphans = [event["name"] for event in events
               if event["args"]["parent_id"] is not None
               and event["args"]["parent_id"] not in span_ids]
    assert orphans == [], f"orphaned spans: {orphans}"
    return roots[0]


def fake_artifact(label: str) -> CompiledArtifact:
    lines = ("G 0 h/single q=(0,) p=[] a=(0,) s=(0,)", f"# {label}")
    return CompiledArtifact(
        circuit_name=label, mode="hybrid", num_qubits=2,
        op_stream=lines,
        op_stream_sha256=hashlib.sha256("\n".join(lines).encode()).hexdigest(),
        num_operations=2, num_swaps=0, num_moves=0, runtime_seconds=0.0)


def _fake_compile(task, store_spec, evaluate):
    return fake_artifact(task.task_id)


def test_crash_and_retry_become_siblings_in_one_tree(tmp_path):
    """A worker crash + re-dispatch yields one tree: the failed pool.task,
    the crash/retry instants and the successful pool.task are siblings
    under the same gateway.request root."""
    plan = FaultPlan(str(tmp_path / "ledger"),
                     (FaultSpec("crash", "worker", match="chaos-1"),))

    async def scenario():
        async with ServingGateway(
                pool="thread", max_workers=2, evaluate=False,
                retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01),
                compile_fn=FaultyCompile(plan)) as gateway:
            return await gateway.compile(_task("chaos-1"), trace=True)

    response = asyncio.run(scenario())
    assert response.ok
    assert plan.fired() == 1
    events = _events(response)
    root = _assert_single_rooted_tree(events)

    pool_tasks = [event for event in events if event["name"] == "pool.task"]
    assert len(pool_tasks) == 2, "crashed attempt and retry both recorded"
    assert all(event["args"]["parent_id"] == root["args"]["span_id"]
               for event in pool_tasks), "attempts are siblings under root"
    statuses = sorted(event["args"]["status"] for event in pool_tasks)
    assert statuses == ["error", "ok"]

    instants = {event["name"] for event in events if event["ph"] == "i"}
    assert {"pool.crash", "pool.retry"} <= instants
    assert all(event["args"]["trace_id"] == response.trace["trace_id"]
               for event in events)


def test_deadline_kill_is_recorded_as_an_instant(tmp_path):
    """A hung worker cannot report its own spans; the supervisor-side
    pool.deadline_kill instant still lands in the request's tree."""
    plan = FaultPlan(str(tmp_path / "ledger"),
                     (FaultSpec("hang", "worker", match="hung-1",
                                hang_s=3.0),))

    async def scenario():
        async with ServingGateway(
                pool="thread", max_workers=2, evaluate=False,
                deadline_s=0.3,
                retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.01),
                compile_fn=FaultyCompile(plan)) as gateway:
            return await gateway.compile(_task("hung-1"), trace=True)

    response = asyncio.run(scenario())
    assert not response.ok and response.error_class == "retryable"
    events = _events(response)
    root = _assert_single_rooted_tree(events)
    kills = [event for event in events
             if event["name"] == "pool.deadline_kill"]
    assert len(kills) == 1 and kills[0]["ph"] == "i"
    assert kills[0]["args"]["parent_id"] == root["args"]["span_id"]
    # The killed worker's pool.task span never shipped.
    assert not any(event["name"] == "pool.task" for event in events)


def test_concurrent_traced_requests_do_not_leak_spans():
    """Two traced requests in flight at once: disjoint trace ids, disjoint
    span ids, and each tree only contains its own task's work."""

    async def scenario():
        async with ServingGateway(pool="thread", max_workers=2,
                                  evaluate=False,
                                  compile_fn=_fake_compile) as gateway:
            return await asyncio.gather(
                gateway.compile(_task("left", circuit="qft"), trace=True),
                gateway.compile(_task("right", circuit="graph"), trace=True),
                gateway.compile(_task("plain", qubits=10)))

    left, right, plain = asyncio.run(scenario())
    assert left.ok and right.ok and plain.ok
    assert plain.trace is None, "untraced request must not carry a trace"

    left_events, right_events = _events(left), _events(right)
    _assert_single_rooted_tree(left_events)
    _assert_single_rooted_tree(right_events)

    assert left.trace["trace_id"] != right.trace["trace_id"]
    left_ids = {event["args"]["span_id"] for event in left_events}
    right_ids = {event["args"]["span_id"] for event in right_events}
    assert not left_ids & right_ids

    for events, task_id in ((left_events, "left"), (right_events, "right")):
        assert all(event["args"]["trace_id"] == events[0]["args"]["trace_id"]
                   for event in events)
        labelled = {event["args"].get("task_id") or event["args"].get("label")
                    for event in events} - {None}
        assert labelled == {task_id}, \
            f"foreign spans in {task_id}'s tree: {labelled}"


@pytest.mark.slow
def test_process_pool_spans_cross_the_process_boundary(tmp_path):
    """With real process workers the pool.task span is recorded in another
    pid and still links into the gateway-side tree."""
    from repro.store import ResultStore

    async def scenario():
        async with ServingGateway(ResultStore(tmp_path / "store"),
                                  pool="process", max_workers=1,
                                  evaluate=False) as gateway:
            return await gateway.compile(_task("xproc-1"), trace=True)

    response = asyncio.run(scenario())
    assert response.ok and response.source == "compiled"
    events = _events(response)
    root = _assert_single_rooted_tree(events)

    pool_tasks = [event for event in events if event["name"] == "pool.task"]
    assert len(pool_tasks) == 1
    assert pool_tasks[0]["pid"] != os.getpid(), \
        "pool.task must have run in a worker process"
    assert root["pid"] == os.getpid()
    # The worker-side compile ran under the shipped context: the pipeline
    # spans it recorded are descendants of pool.task.
    names = {event["name"] for event in events}
    assert "compile_task" in names
    assert any(name.startswith("pass.") for name in names)
