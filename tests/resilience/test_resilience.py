"""Unit tests for :mod:`repro.resilience` — taxonomy, policy, breaker, pool.

The supervised pool is exercised mostly with thread workers (fast and
deterministic on a 1-core CI host); one test uses genuine process workers
with a real ``os._exit`` death to prove the reap-and-redispatch path works
across a process boundary.  Chaos-style end-to-end runs live in
``tests/chaos/``.
"""

import time

import pytest

from repro.resilience import (
    PERMANENT,
    RETRYABLE,
    SHED,
    CircuitBreaker,
    CompileFailed,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    LoadShed,
    PoolUnavailable,
    RetryPolicy,
    SupervisedPool,
    WorkerCrashed,
    classify_error,
    tightest,
)


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestTaxonomy:
    def test_classes(self):
        assert classify_error(WorkerCrashed("x")) == RETRYABLE
        assert classify_error(DeadlineExceeded("x")) == RETRYABLE
        assert classify_error(PoolUnavailable("x")) == RETRYABLE
        assert classify_error(LoadShed("x")) == SHED
        assert classify_error(CompileFailed("x")) == PERMANENT

    def test_unknown_errors_are_permanent(self):
        # An error the taxonomy has never seen must not be auto-retried.
        assert classify_error(ValueError("surprise")) == PERMANENT


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.3, jitter=0.0)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(2) == pytest.approx(0.1)
        assert policy.backoff_s(3) == pytest.approx(0.2)
        assert policy.backoff_s(4) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_per_token(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        assert policy.backoff_s(2, token="a") == policy.backoff_s(2, token="a")
        assert policy.backoff_s(2, token="a") != policy.backoff_s(2, token="b")
        # Jitter only shrinks, never grows, the delay.
        assert policy.backoff_s(2, token="a") <= 0.1

    def test_tightest(self):
        assert tightest(None, None) is None
        assert tightest(5.0, None, 2.0) == 2.0
        assert tightest(None, 3.0) == 3.0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                                 clock=lambda: clock[0])
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 11.0                      # cooldown elapsed
        assert breaker.allow()               # half-open probe
        assert not breaker.allow()           # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.as_dict()["times_opened"] == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


# ----------------------------------------------------------------------
# Fault plan ledger
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_charge_fires_exactly_once(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("crash", "worker", match="t-1"),))
        with pytest.raises(WorkerCrashed):
            plan.fire_worker_fault("t-1")
        plan.fire_worker_fault("t-1")        # charge spent: no-op
        assert plan.fired() == 1

    def test_match_filters_by_substring(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("crash", "worker", match="qft"),))
        plan.fire_worker_fault("graph-1")    # no match, charge unspent
        with pytest.raises(WorkerCrashed):
            plan.fire_worker_fault("qft-1")

    def test_multiple_charges(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("crash", "worker", times=2),))
        for _ in range(2):
            with pytest.raises(WorkerCrashed):
                plan.fire_worker_fault("any")
        plan.fire_worker_fault("any")
        assert plan.fired() == 2

    def test_plan_is_picklable(self, tmp_path):
        import pickle

        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("hang", "worker", hang_s=0.01),))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


# ----------------------------------------------------------------------
# Supervised pool (thread workers)
# ----------------------------------------------------------------------
def _double(value):
    return value * 2


def _boom(message):
    raise ValueError(message)


def _sleep_then(value, seconds):
    time.sleep(seconds)
    return value


class TestSupervisedPoolThreads:
    def test_results_in_order(self):
        with SupervisedPool(2, kind="thread") as pool:
            futures = [pool.submit(_double, index) for index in range(8)]
            assert [future.result(timeout=10) for future in futures] == \
                [index * 2 for index in range(8)]
            stats = pool.stats_dict()
        assert stats["completed"] == 8
        assert stats["crashes"] == 0

    def test_task_error_becomes_compile_failed(self):
        with SupervisedPool(1, kind="thread") as pool:
            future = pool.submit(_boom, "broken input")
            with pytest.raises(CompileFailed, match="broken input"):
                future.result(timeout=10)

    def test_injected_crash_is_retried_to_success(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("crash", "worker", match="job"),))

        with SupervisedPool(1, kind="thread",
                            retry_policy=RetryPolicy(
                                max_attempts=3, base_delay_s=0.01)) as pool:
            future = pool.submit(_crash_once_then_double, plan, "job", 21,
                                 label="job", token="job")
            assert future.result(timeout=10) == 42
            stats = pool.stats_dict()
        assert stats["crashes"] == 1
        assert stats["retries"] == 1

    def test_crash_budget_exhausted_fails_retryable(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("crash", "worker", times=5),))
        with SupervisedPool(1, kind="thread",
                            retry_policy=RetryPolicy(
                                max_attempts=2, base_delay_s=0.01)) as pool:
            future = pool.submit(_crash_once_then_double, plan, "doomed", 1,
                                 label="doomed", token="doomed")
            with pytest.raises(WorkerCrashed, match="gave up after 2 attempts"):
                future.result(timeout=10)

    def test_deadline_kill_recycles_worker(self):
        with SupervisedPool(1, kind="thread", deadline_s=0.15) as pool:
            hung = pool.submit(_sleep_then, "late", 5.0, label="hung")
            with pytest.raises(DeadlineExceeded, match="deadline"):
                hung.result(timeout=10)
            # The replacement worker serves new tasks immediately.
            assert pool.submit(_double, 3,
                               deadline_s=None).result(timeout=10) == 6
            stats = pool.stats_dict()
        assert stats["deadline_kills"] == 1
        assert stats["workers_recycled"] >= 1

    def test_submit_after_shutdown_raises(self):
        pool = SupervisedPool(1, kind="thread")
        pool.shutdown()
        with pytest.raises(PoolUnavailable):
            pool.submit(_double, 1)

    def test_shutdown_fails_pending_futures(self):
        pool = SupervisedPool(1, kind="thread")
        blocker = pool.submit(_sleep_then, "x", 0.5)
        queued = [pool.submit(_double, index) for index in range(4)]
        pool.shutdown(wait=False)
        failed = 0
        for future in [blocker, *queued]:
            if future.cancelled():
                failed += 1
                continue
            try:
                future.result(timeout=5)
            except PoolUnavailable:
                failed += 1
            except Exception:  # pragma: no cover - unexpected class
                raise
        assert failed >= len(queued)


def _crash_once_then_double(plan, label, value):
    plan.fire_worker_fault(label)
    return value * 2


def _exit_once_then_pid(plan, label):
    import os

    plan.fire_worker_fault(label)
    return os.getpid()


@pytest.mark.slow
class TestSupervisedPoolProcesses:
    def test_real_process_death_is_survived(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "ledger"),
                         (FaultSpec("exit", "worker", match="victim"),))
        with SupervisedPool(1, kind="process",
                            retry_policy=RetryPolicy(
                                max_attempts=3, base_delay_s=0.01)) as pool:
            future = pool.submit(_exit_once_then_pid, plan, "victim",
                                 label="victim", token="victim")
            pid = future.result(timeout=30)
            assert isinstance(pid, int)
            stats = pool.stats_dict()
        assert stats["crashes"] >= 1
        assert stats["workers_recycled"] >= 1
        assert stats["completed"] == 1
