"""Shared fixtures for the test suite.

The fixtures provide small architectures (fast to route on) for the three
hardware regimes of Table 1c plus a handful of circuits that exercise the
different gate arities.  Everything is deterministic.
"""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.library import get_benchmark
from repro.hardware import (
    Fidelities,
    GateDurations,
    NeutralAtomArchitecture,
    SiteConnectivity,
    SquareLattice,
)
from repro.hardware.presets import gate_optimised, mixed, shuttling_optimised
from repro.mapping import MappingState


@pytest.fixture(scope="session")
def small_architecture() -> NeutralAtomArchitecture:
    """A 6x6 lattice with 20 atoms and moderate radii (fast for unit tests)."""
    return NeutralAtomArchitecture(
        name="test-small",
        lattice=SquareLattice(6, 6, 3.0),
        num_atoms=20,
        interaction_radius=2.0,
        restriction_radius=2.0,
        fidelities=Fidelities(cz=0.995, single_qubit=0.999, shuttling=0.9999),
        durations=GateDurations(aod_activation=40.0, aod_deactivation=40.0),
        shuttling_speed=0.3,
        t1=1e8,
        t2=1.5e6,
    )


@pytest.fixture(scope="session")
def small_connectivity(small_architecture) -> SiteConnectivity:
    return SiteConnectivity(small_architecture)


@pytest.fixture(scope="session")
def mixed_architecture() -> NeutralAtomArchitecture:
    """Scaled-down version of the Table 1c mixed preset."""
    return mixed(lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="session")
def gate_architecture() -> NeutralAtomArchitecture:
    """Scaled-down version of the Table 1c gate-optimised preset."""
    return gate_optimised(lattice_rows=7, num_atoms=30)


@pytest.fixture(scope="session")
def shuttling_architecture() -> NeutralAtomArchitecture:
    """Scaled-down version of the Table 1c shuttling-optimised preset."""
    return shuttling_optimised(lattice_rows=7, num_atoms=30)


@pytest.fixture()
def small_state(small_architecture, small_connectivity) -> MappingState:
    """Identity-mapped state with 12 circuit qubits on the small architecture."""
    return MappingState(small_architecture, 12, connectivity=small_connectivity)


@pytest.fixture(scope="session")
def bell_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cz(0, 1)
    return circuit


@pytest.fixture(scope="session")
def line_circuit() -> QuantumCircuit:
    """A CZ chain touching every neighbouring qubit pair once."""
    circuit = QuantumCircuit(8, name="line")
    for qubit in range(7):
        circuit.cz(qubit, qubit + 1)
    return circuit


@pytest.fixture(scope="session")
def long_range_circuit() -> QuantumCircuit:
    """Two-qubit gates between far-apart qubits (forces routing)."""
    circuit = QuantumCircuit(12, name="long_range")
    circuit.cz(0, 11)
    circuit.cz(1, 10)
    circuit.cz(2, 9)
    circuit.cz(0, 6)
    return circuit


@pytest.fixture(scope="session")
def multiqubit_circuit() -> QuantumCircuit:
    """Mix of CZ / CCZ / CCCZ gates."""
    circuit = QuantumCircuit(10, name="multiqubit")
    circuit.h(0)
    circuit.cz(0, 5)
    circuit.ccz(1, 4, 8)
    circuit.cccz(0, 2, 6, 9)
    circuit.cz(3, 7)
    circuit.ccz(5, 6, 7)
    return circuit


@pytest.fixture(scope="session")
def small_graph_circuit() -> QuantumCircuit:
    return get_benchmark("graph", num_qubits=16, seed=7)


@pytest.fixture(scope="session")
def small_qft_circuit() -> QuantumCircuit:
    return get_benchmark("qft", num_qubits=10)
