"""Golden op-stream digests: any routing change that shifts output fails loudly.

On a mismatch the test writes ``golden-digest-diff.json`` (working
directory) listing the expected and actual digest of every diverging case;
CI uploads the file as an artifact.  If the change was intentional,
regenerate with ``PYTHONPATH=src python tests/golden/regenerate.py`` and
commit the result.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from golden_cases import CASES, SCHEMA, case_key, compute_digest, load_committed

DIFF_PATH = Path("golden-digest-diff.json")


@pytest.fixture(scope="module", autouse=True)
def _fresh_diff_file():
    """Drop stale divergence records so the artifact reflects this run only."""
    if DIFF_PATH.exists():
        DIFF_PATH.unlink()


@pytest.fixture(scope="module")
def committed():
    data = load_committed()
    assert data["schema"] == SCHEMA
    return {case_key(entry): entry for entry in data["cases"]}


def _record_diff(case, expected, actual) -> None:
    """Append one divergence to the diff artifact (for the CI upload)."""
    existing = []
    if DIFF_PATH.exists():
        try:
            existing = json.loads(DIFF_PATH.read_text())
        except ValueError:
            existing = []
    existing.append({"case": case_key(case), "expected": expected,
                     "actual": actual})
    DIFF_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_golden_file_covers_exactly_the_case_matrix(committed):
    assert sorted(committed) == sorted(case_key(case) for case in CASES)


@pytest.mark.parametrize("case", CASES, ids=case_key)
def test_op_stream_digest_matches_committed(case, committed):
    expected_entry = committed[case_key(case)]
    expected = {field: expected_entry[field]
                for field in ("sha256", "num_operations", "num_gates",
                              "num_swaps", "num_moves")}
    actual = compute_digest(case)
    if actual != expected:
        _record_diff(case, expected, actual)
    assert actual == expected, (
        f"op stream of {case_key(case)} diverged from the committed golden "
        f"digest (see {DIFF_PATH}); if intentional, regenerate via "
        "'PYTHONPATH=src python tests/golden/regenerate.py'")
