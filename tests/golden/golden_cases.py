"""Shared case matrix and digest computation for the golden op-stream tests.

The golden digests pin the exact operation stream the mapper emits for a
small, fixed configuration of the paper's benchmarks.  Any routing change
that shifts the stream — an intentional algorithm change or an accidental
cache bug — fails the comparison loudly instead of silently altering
results.  Regenerate intentionally shifted digests with::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.hardware import SiteConnectivity
from repro.hardware.presets import preset
from repro.mapping import HybridMapper, MapperConfig

SCHEMA = "repro-golden-opstream/v1"
DIGEST_PATH = Path(__file__).resolve().parent / "golden_digests.json"

#: Small-scale golden matrix: the three named benchmarks of the issue on all
#: three hardware presets, hybrid mode.  Small enough to map in well under a
#: second each, large enough that both SWAPs and shuttling moves appear.
CASES = [
    {"circuit": "qft", "num_qubits": 12, "hardware": hardware,
     "mode": "hybrid", "lattice_rows": 7, "num_atoms": 30, "seed": 2024}
    for hardware in ("gate", "mixed", "shuttling")
] + [
    {"circuit": "graph", "num_qubits": 14, "hardware": hardware,
     "mode": "hybrid", "lattice_rows": 7, "num_atoms": 30, "seed": 2024}
    for hardware in ("gate", "mixed", "shuttling")
] + [
    {"circuit": "qpe", "num_qubits": 10, "hardware": hardware,
     "mode": "hybrid", "lattice_rows": 7, "num_atoms": 30, "seed": 2024}
    for hardware in ("gate", "mixed", "shuttling")
]


def case_key(case: Dict) -> str:
    return f"{case['hardware']}/{case['circuit']}-{case['num_qubits']}/{case['mode']}"


def compute_digest(case: Dict) -> Dict:
    """Map one golden case and return its op-stream digest."""
    architecture = preset(case["hardware"], lattice_rows=case["lattice_rows"],
                          num_atoms=case["num_atoms"])
    connectivity = SiteConnectivity(architecture)
    circuit = decompose_mcx_to_mcz(
        get_benchmark(case["circuit"], num_qubits=case["num_qubits"],
                      seed=case["seed"]))
    mapper = HybridMapper(architecture, MapperConfig.for_mode(case["mode"]),
                          connectivity=connectivity)
    result = mapper.map(circuit)
    return result.op_stream_digest()


def compute_all() -> List[Dict]:
    """Digest every golden case, annotated with its configuration."""
    entries = []
    for case in CASES:
        digest = compute_digest(case)
        entries.append({**case, **digest})
    return entries


def load_committed() -> Dict:
    return json.loads(DIGEST_PATH.read_text())
