"""Regenerate the committed golden op-stream digests.

Run after an *intentional* routing change (and say so in the commit
message)::

    PYTHONPATH=src python tests/golden/regenerate.py

The script overwrites ``tests/golden/golden_digests.json`` with freshly
computed digests for every case in :mod:`golden_cases`.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for entry in (str(_HERE), str(_HERE.parent.parent / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from golden_cases import DIGEST_PATH, SCHEMA, case_key, compute_all  # noqa: E402


def main() -> int:
    entries = compute_all()
    DIGEST_PATH.write_text(json.dumps(
        {"schema": SCHEMA, "cases": entries}, indent=2) + "\n")
    for entry in entries:
        print(f"{case_key(entry):40s} sha256={entry['sha256'][:16]}... "
              f"ops={entry['num_operations']} swaps={entry['num_swaps']} "
              f"moves={entry['num_moves']}")
    print(f"wrote {DIGEST_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
