"""Unit tests for the schedule data structures."""

import pytest

from repro.scheduling import OperationKind, Schedule, ScheduledOperation


def op(kind=OperationKind.SINGLE_QUBIT, name="h", start=0.0, duration=0.5,
       atoms=(0,), sites=(), fidelity=0.999):
    return ScheduledOperation(kind=kind, name=name, start=start, duration=duration,
                              atoms=atoms, sites=sites, fidelity=fidelity)


class TestScheduledOperation:
    def test_end_time(self):
        assert op(start=2.0, duration=0.5).end == pytest.approx(2.5)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            op(kind="bogus")

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            op(start=-1.0)
        with pytest.raises(ValueError):
            op(duration=-1.0)

    def test_fidelity_bounds(self):
        with pytest.raises(ValueError):
            op(fidelity=0.0)
        with pytest.raises(ValueError):
            op(fidelity=1.2)


class TestScheduleAggregates:
    def build(self):
        schedule = Schedule(num_circuit_qubits=3)
        schedule.append(op(start=0.0, duration=0.5, atoms=(0,)))
        schedule.append(op(kind=OperationKind.ENTANGLING, name="cz", start=0.5,
                           duration=0.2, atoms=(0, 1), fidelity=0.995))
        schedule.append(op(kind=OperationKind.SHUTTLE, name="move", start=0.0,
                           duration=100.0, atoms=(2,), fidelity=0.9999))
        return schedule

    def test_makespan(self):
        assert self.build().makespan == pytest.approx(100.0)

    def test_empty_schedule_makespan(self):
        assert Schedule(num_circuit_qubits=2).makespan == 0.0
        assert Schedule(num_circuit_qubits=2).idle_time() == 0.0

    def test_total_operation_time(self):
        assert self.build().total_operation_time() == pytest.approx(100.7)

    def test_total_busy_time_weights_by_width(self):
        assert self.build().total_busy_time() == pytest.approx(0.5 + 0.4 + 100.0)

    def test_idle_time_matches_paper_formula(self):
        schedule = self.build()
        expected = 3 * schedule.makespan - schedule.total_operation_time()
        assert schedule.idle_time() == pytest.approx(expected)

    def test_per_qubit_idle_time(self):
        schedule = self.build()
        expected = 3 * schedule.makespan - schedule.total_busy_time()
        assert schedule.per_qubit_idle_time() == pytest.approx(expected)

    def test_counts(self):
        schedule = self.build()
        assert schedule.count_by_kind() == {OperationKind.SINGLE_QUBIT: 1,
                                            OperationKind.ENTANGLING: 1,
                                            OperationKind.SHUTTLE: 1}
        assert schedule.count_entangling_by_width() == {2: 1}
        assert schedule.num_cz_gates() == 1
        assert schedule.num_shuttle_operations() == 1
        assert len(schedule) == 3

    def test_overlap_verification_passes_for_disjoint_atoms(self):
        self.build().verify_no_atom_overlap()

    def test_overlap_verification_detects_double_booking(self):
        schedule = Schedule(num_circuit_qubits=2)
        schedule.append(op(start=0.0, duration=1.0, atoms=(0,)))
        schedule.append(op(start=0.5, duration=1.0, atoms=(0,)))
        with pytest.raises(AssertionError):
            schedule.verify_no_atom_overlap()
