"""Unit tests for the ASAP scheduler (process block (5))."""

import pytest

from repro.circuit import QuantumCircuit
from repro.hardware import NeutralAtomArchitecture, SquareLattice
from repro.mapping import HybridMapper, MapperConfig
from repro.scheduling import OperationKind, Scheduler


class TestCircuitScheduling:
    def test_sequential_gates_on_one_qubit(self, small_architecture):
        circuit = QuantumCircuit(1)
        circuit.h(0).h(0)
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        assert schedule.makespan == pytest.approx(1.0)
        schedule.verify_no_atom_overlap()

    def test_far_apart_gates_run_in_parallel(self, small_architecture):
        circuit = QuantumCircuit(20)
        circuit.cz(0, 1)     # sites (0,0)-(0,1)
        circuit.cz(18, 19)   # sites (3,0)-(3,1): more than r_restr away
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        starts = [op.start for op in schedule if op.kind == OperationKind.ENTANGLING]
        assert starts == [0.0, 0.0]

    def test_restriction_radius_serialises_nearby_gates(self, small_architecture):
        circuit = QuantumCircuit(6)
        circuit.cz(0, 1)
        circuit.cz(2, 3)   # within r_restr = 2d of the first gate's sites
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        entangling = [op for op in schedule if op.kind == OperationKind.ENTANGLING]
        assert entangling[1].start >= entangling[0].end

    def test_gate_durations_by_width(self, small_architecture):
        circuit = QuantumCircuit(4)
        circuit.cz(0, 1).ccz(0, 1, 2).cccz(0, 1, 2, 3)
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        durations = [op.duration for op in schedule]
        assert durations == [pytest.approx(0.2), pytest.approx(0.4), pytest.approx(0.6)]

    def test_barrier_fences_timing(self, small_architecture):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.barrier()
        circuit.h(1)
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        assert schedule.operations[1].start >= schedule.operations[0].end

    def test_measurement_scheduled(self, small_architecture):
        circuit = QuantumCircuit(1)
        circuit.h(0).measure(0)
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        assert schedule.count_by_kind()[OperationKind.MEASURE] == 1

    def test_bare_swap_in_input_is_decomposed(self, small_architecture):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        schedule = Scheduler(small_architecture).schedule_circuit(circuit)
        assert schedule.num_cz_gates() == 3
        assert schedule.count_by_kind()[OperationKind.SINGLE_QUBIT] == 6

    def test_custom_placement(self, small_architecture):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        placement = [0, 35]
        schedule = Scheduler(small_architecture).schedule_circuit(circuit, sites=placement)
        assert schedule.operations[0].sites == (0, 35)

    def test_incomplete_placement_rejected(self, small_architecture):
        circuit = QuantumCircuit(3)
        circuit.h(2)
        with pytest.raises(ValueError):
            Scheduler(small_architecture).schedule_circuit(circuit, sites=[0, 1])


class TestMappedResultScheduling:
    def test_swap_ops_expand_to_native_pulses(self, small_architecture,
                                              long_range_circuit):
        mapper = HybridMapper(small_architecture, MapperConfig.gate_only())
        result = mapper.map(long_range_circuit)
        schedule = Scheduler(small_architecture).schedule_result(result)
        expected_cz = long_range_circuit.num_entangling_gates() + 3 * result.num_swaps
        assert schedule.num_cz_gates() == expected_cz
        schedule.verify_no_atom_overlap()

    def test_moves_scheduled_as_shuttle_operations(self, small_architecture,
                                                   long_range_circuit):
        mapper = HybridMapper(small_architecture, MapperConfig.shuttling_only())
        result = mapper.map(long_range_circuit)
        schedule = Scheduler(small_architecture).schedule_result(result)
        assert schedule.num_shuttle_operations() > 0
        # batching can only reduce the number of scheduled shuttle operations
        assert schedule.num_shuttle_operations() <= result.num_moves
        schedule.verify_no_atom_overlap()

    def test_shuttle_duration_includes_activation_and_travel(self, small_architecture,
                                                             long_range_circuit):
        mapper = HybridMapper(small_architecture, MapperConfig.shuttling_only())
        result = mapper.map(long_range_circuit)
        schedule = Scheduler(small_architecture).schedule_result(result)
        for op in schedule:
            if op.kind == OperationKind.SHUTTLE:
                assert op.duration >= (small_architecture.durations.aod_activation
                                       + small_architecture.durations.aod_deactivation)

    def test_mapped_schedule_is_longer_for_shuttling(self, small_architecture,
                                                     long_range_circuit):
        scheduler = Scheduler(small_architecture)
        original = scheduler.schedule_circuit(long_range_circuit)
        mapper = HybridMapper(small_architecture, MapperConfig.shuttling_only())
        mapped = scheduler.schedule_result(mapper.map(long_range_circuit))
        assert mapped.makespan > original.makespan

    def test_hybrid_result_schedules_cleanly(self, mixed_architecture,
                                             multiqubit_circuit):
        mapper = HybridMapper(mixed_architecture, MapperConfig.hybrid(1.0))
        result = mapper.map(multiqubit_circuit)
        schedule = Scheduler(mixed_architecture).schedule_result(result)
        schedule.verify_no_atom_overlap()
        assert schedule.makespan > 0
