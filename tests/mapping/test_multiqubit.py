"""Unit tests for multi-qubit gate position finding (Section 3.1.3, Example 7)."""

import pytest

from repro.circuit.gate import controlled_z
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice
from repro.mapping import MappingState, find_gate_position


class TestPositionFinding:
    def test_two_qubit_gate_rejected(self, small_state):
        with pytest.raises(ValueError):
            find_gate_position(small_state, controlled_z((0, 1)))

    def test_already_satisfied_gate_has_zero_cost_position(self, small_state):
        # Qubits 0, 1, 2 on the first row are mutually within r_int = 2d.
        position = find_gate_position(small_state, controlled_z((0, 1, 2)))
        assert position is not None
        assert position.estimated_swaps == 0
        assert set(position.assignment.keys()) == {0, 1, 2}

    def test_position_sites_are_mutually_interacting_and_occupied(self, small_state):
        gate = controlled_z((0, 5, 11))
        position = find_gate_position(small_state, gate)
        assert position is not None
        assert small_state.connectivity.sites_mutually_interacting(position.sites)
        assert all(not small_state.site_is_free(site) for site in position.sites)
        assert len(position.sites) == 3

    def test_assignment_is_a_bijection_onto_position_sites(self, small_state):
        gate = controlled_z((0, 5, 11, 7))
        position = find_gate_position(small_state, gate)
        assert position is not None
        assert sorted(position.assignment.keys()) == sorted(gate.qubits)
        assert sorted(position.assignment.values()) == sorted(position.sites)

    def test_far_apart_qubits_get_higher_estimate(self, small_state):
        near = find_gate_position(small_state, controlled_z((0, 1, 2)))
        far = find_gate_position(small_state, controlled_z((0, 6, 11)))
        assert near is not None and far is not None
        assert far.estimated_swaps >= near.estimated_swaps

    def test_example7_small_radius_needs_rectangular_arrangement(self):
        """For r_int = sqrt(2) d, three qubits in a row cannot interact mutually.

        The position finder must return a bent (L-shaped / rectangular)
        arrangement instead of a straight line — the situation of Example 7.
        """
        architecture = NeutralAtomArchitecture(
            name="example7", lattice=SquareLattice(5, 5, 3.0), num_atoms=20,
            interaction_radius=1.5, restriction_radius=1.5)
        state = MappingState(architecture, 15)
        gate = controlled_z((0, 1, 2))  # first-row neighbours: 0-2 are 2d apart
        assert not state.gate_executable(gate)
        position = find_gate_position(state, gate)
        assert position is not None
        rows = {architecture.lattice.row_col(site)[0] for site in position.sites}
        cols = {architecture.lattice.row_col(site)[1] for site in position.sites}
        # A mutually interacting triple at this radius cannot be a straight line.
        assert len(rows) > 1 and len(cols) > 1

    def test_no_position_when_radius_too_small_for_width(self):
        """With r_int = d a 2x2 block is not a clique, so no 4-qubit position exists."""
        architecture = NeutralAtomArchitecture(
            name="tiny-radius", lattice=SquareLattice(5, 5, 3.0), num_atoms=12,
            interaction_radius=1.0, restriction_radius=1.0)
        state = MappingState(architecture, 8)
        gate = controlled_z((0, 1, 2, 3))
        assert find_gate_position(state, gate) is None

    def test_sparse_occupancy_positions_only_on_occupied_sites(self):
        architecture = NeutralAtomArchitecture(
            name="sparse", lattice=SquareLattice(6, 6, 3.0), num_atoms=6,
            interaction_radius=2.0, restriction_radius=2.0)
        # Cluster the six atoms in two corners.
        sites = [0, 1, 6, 28, 34, 35]
        state = MappingState(architecture, 4, initial_sites=sites)
        position = find_gate_position(state, controlled_z((0, 1, 2)))
        if position is not None:
            assert all(site in sites for site in position.sites)
