"""Unit tests for the mapper configuration."""

import pytest

from repro.mapping import MapperConfig


class TestValidation:
    def test_defaults_match_paper_parameters(self):
        config = MapperConfig()
        assert config.decay_rate == 0.0          # lambda_t
        assert config.lookahead_weight == 0.1    # w_l
        assert config.time_weight == 0.1         # w_t
        assert config.history_window == 4        # t
        assert config.mode == "hybrid"

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            MapperConfig(alpha_gate=-1.0)
        with pytest.raises(ValueError):
            MapperConfig(lookahead_weight=-0.1)
        with pytest.raises(ValueError):
            MapperConfig(history_window=-1)
        with pytest.raises(ValueError):
            MapperConfig(lookahead_depth=-1)

    def test_both_capabilities_disabled_rejected(self):
        with pytest.raises(ValueError):
            MapperConfig(alpha_gate=0.0, alpha_shuttling=0.0)


class TestModes:
    def test_gate_only(self):
        config = MapperConfig.gate_only()
        assert config.mode == "gate_only"
        assert config.alpha_shuttling == 0.0
        assert config.alpha_ratio == float("inf")

    def test_shuttling_only(self):
        config = MapperConfig.shuttling_only()
        assert config.mode == "shuttling_only"
        assert config.alpha_gate == 0.0
        assert config.alpha_ratio == 0.0

    def test_hybrid_ratio(self):
        config = MapperConfig.hybrid(1.25)
        assert config.mode == "hybrid"
        assert config.alpha_ratio == pytest.approx(1.25)

    def test_hybrid_requires_positive_ratio(self):
        with pytest.raises(ValueError):
            MapperConfig.hybrid(0.0)

    def test_with_overrides_returns_new_instance(self):
        config = MapperConfig()
        changed = config.with_overrides(lookahead_weight=0.5)
        assert changed.lookahead_weight == 0.5
        assert config.lookahead_weight == 0.1
