"""Unit tests for the mapping result container."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gate import GateKind, controlled_z
from repro.mapping.result import CircuitGateOp, MappingResult, ShuttleOp, SwapOp
from repro.shuttling import Move


def make_result():
    circuit = QuantumCircuit(3, name="tiny")
    circuit.h(0)
    circuit.cz(0, 2)
    result = MappingResult(circuit=circuit, mode="hybrid")
    result.append(CircuitGateOp(gate=circuit[0], gate_index=0, atoms=(0,), sites=(0,)))
    result.append(SwapOp(qubit_a=2, qubit_b=1, atom_a=2, atom_b=1, site_a=2, site_b=1))
    result.append(ShuttleOp(move=Move(atom=1, source=1, destination=5,
                                      source_position=(3.0, 0.0),
                                      destination_position=(6.0, 3.0))))
    result.append(CircuitGateOp(gate=circuit[1], gate_index=1, atoms=(0, 1), sites=(0, 1)))
    return circuit, result


class TestCounters:
    def test_append_updates_counts(self):
        _, result = make_result()
        assert result.num_swaps == 1
        assert result.num_moves == 1
        assert len(result.operations) == 4

    def test_additional_cz_is_three_per_swap(self):
        _, result = make_result()
        assert result.additional_cz_count() == 3

    def test_total_move_distance(self):
        _, result = make_result()
        assert result.total_move_distance() == pytest.approx(6.0)

    def test_accessors_filter_by_type(self):
        _, result = make_result()
        assert len(result.circuit_gate_ops()) == 2
        assert len(result.swap_ops()) == 1
        assert len(result.shuttle_ops()) == 1
        assert len(result.moves()) == 1

    def test_summary_keys(self):
        _, result = make_result()
        summary = result.summary()
        for key in ("num_swaps", "num_moves", "additional_cz", "mode", "circuit"):
            assert key in summary


class TestVerification:
    def test_verify_complete_passes_for_full_stream(self):
        _, result = make_result()
        result.verify_complete()

    def test_verify_complete_detects_missing_gate(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.h(0)
        result = MappingResult(circuit=circuit)
        result.append(CircuitGateOp(gate=circuit[0], gate_index=0, atoms=(0, 1),
                                    sites=(0, 1)))
        with pytest.raises(AssertionError):
            result.verify_complete()

    def test_barriers_are_exempt_from_verification(self):
        circuit = QuantumCircuit(2)
        circuit.barrier()
        circuit.cz(0, 1)
        result = MappingResult(circuit=circuit)
        result.append(CircuitGateOp(gate=circuit[1], gate_index=1, atoms=(0, 1),
                                    sites=(0, 1)))
        result.verify_complete()


class TestPhysicalCircuit:
    def test_physical_circuit_uses_atom_indices(self):
        circuit = QuantumCircuit(2, name="remap")
        circuit.cz(0, 1)
        result = MappingResult(circuit=circuit)
        result.append(CircuitGateOp(gate=circuit[0], gate_index=0, atoms=(4, 7),
                                    sites=(4, 7)))
        physical = result.to_physical_circuit()
        assert physical[0].qubits == (4, 7)
        assert physical.num_qubits >= 8

    def test_swaps_appear_and_can_be_decomposed(self):
        _, result = make_result()
        physical = result.to_physical_circuit()
        assert any(g.kind == GateKind.SWAP for g in physical)
        native = result.to_physical_circuit(decompose_swaps=True)
        assert not any(g.kind == GateKind.SWAP for g in native)
        assert native.count_by_arity()[2] >= 3

    def test_shuttle_ops_have_no_circuit_representation(self):
        _, result = make_result()
        physical = result.to_physical_circuit()
        assert len(physical) == 3  # two circuit gates + one swap
