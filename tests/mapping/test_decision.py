"""Unit tests for the capability decision (process block (2))."""

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.gate import controlled_z
from repro.mapping import CapabilityDecider, LayerManager, MappingState


@pytest.fixture()
def decider(small_architecture):
    return CapabilityDecider(small_architecture, alpha_gate=1.0, alpha_shuttling=1.0)


class TestEstimates:
    def test_adjacent_gate_has_zero_cost(self, decider, small_state):
        estimate = decider.estimate(small_state, controlled_z((0, 1)), 0)
        assert estimate.estimated_swaps == 0
        assert estimate.estimated_moves == 0
        assert estimate.success_gate_based == pytest.approx(1.0)
        assert estimate.success_shuttling_based == pytest.approx(1.0)

    def test_distant_gate_costs_grow_with_separation(self, decider, small_state):
        near = decider.estimate(small_state, controlled_z((0, 3)), 0)
        far = decider.estimate(small_state, controlled_z((0, 11)), 1)
        assert far.estimated_swaps >= near.estimated_swaps
        assert far.success_gate_based <= near.success_gate_based

    def test_success_probabilities_within_unit_interval(self, decider, small_state):
        for gate in [controlled_z((0, 5)), controlled_z((0, 5, 11)), controlled_z((2, 9))]:
            estimate = decider.estimate(small_state, gate, 0)
            assert 0.0 < estimate.success_gate_based <= 1.0
            assert 0.0 < estimate.success_shuttling_based <= 1.0

    def test_multi_qubit_estimates_use_best_anchor(self, decider, small_state):
        estimate = decider.estimate(small_state, controlled_z((0, 1, 11)), 0)
        # Gathering around qubit 0 or 1 needs to move only qubit 11.
        assert estimate.estimated_moves >= 1
        assert estimate.estimated_move_distance_um > 0


class TestDecisions:
    def test_alpha_shuttling_zero_forces_gate_based(self, small_architecture, small_state):
        decider = CapabilityDecider(small_architecture, alpha_gate=1.0, alpha_shuttling=0.0)
        decision = decider.decide(small_state, controlled_z((0, 11)), 3)
        assert decision.use_gate_based

    def test_alpha_gate_zero_forces_shuttling(self, small_architecture, small_state):
        decider = CapabilityDecider(small_architecture, alpha_gate=0.0, alpha_shuttling=1.0)
        decision = decider.decide(small_state, controlled_z((0, 11)), 3)
        assert not decision.use_gate_based

    def test_invalid_weights_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            CapabilityDecider(small_architecture, alpha_gate=0.0, alpha_shuttling=0.0)
        with pytest.raises(ValueError):
            CapabilityDecider(small_architecture, alpha_gate=-1.0)

    def test_extreme_alpha_overrides_estimates(self, small_architecture, small_state):
        gate = controlled_z((0, 11))
        gate_leaning = CapabilityDecider(small_architecture, alpha_gate=1e6,
                                         alpha_shuttling=1.0)
        shuttle_leaning = CapabilityDecider(small_architecture, alpha_gate=1e-6,
                                            alpha_shuttling=1.0)
        assert gate_leaning.decide(small_state, gate, 0).use_gate_based
        assert not shuttle_leaning.decide(small_state, gate, 0).use_gate_based

    def test_split_layers_preserves_all_nodes(self, decider, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11).cz(1, 2).cz(3, 9)
        manager = LayerManager(circuit)
        front, _ = manager.layers()
        gate_nodes, shuttle_nodes, decisions = decider.split_layers(small_state, front)
        assert len(gate_nodes) + len(shuttle_nodes) == len(front)
        assert len(decisions) == len(front)
        decided_indices = {d.gate_index for d in decisions}
        assert decided_indices == {node.index for node in front}
