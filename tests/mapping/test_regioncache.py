"""Unit tests for the cross-round routing caches (``repro.mapping.regioncache``).

The differential harness (``tests/differential/``) proves end-to-end
equivalence; these tests pin the cache mechanics themselves — key checks,
occupancy-read validation, back-off — and the interaction with the mapper's
cached multi-qubit positions (``GatePosition.arrived``).
"""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.dag import CircuitDAG
from repro.mapping import (
    CapabilityDecider,
    CrossRoundCache,
    HybridMapper,
    MapperConfig,
    MappingState,
    ShuttlingRouter,
)
from repro.mapping.regioncache import ChainReads


@pytest.fixture
def state(small_architecture, small_connectivity):
    return MappingState(small_architecture, 12, connectivity=small_connectivity)


@pytest.fixture
def cache(state):
    cache = CrossRoundCache()
    cache.begin_run(state)
    return cache


def _gate(circuit_builder):
    circuit = QuantumCircuit(12)
    circuit_builder(circuit)
    return CircuitDAG(circuit).nodes[0].gate


class TestDecisionCache:
    def _decide(self, small_architecture, state, cache, gate):
        decider = CapabilityDecider(small_architecture)
        decider.cache = cache
        return decider.decide(state, gate, gate_index=0)

    def test_unchanged_state_replays_decision(self, small_architecture, state, cache):
        gate = _gate(lambda c: c.cz(0, 5))
        first = self._decide(small_architecture, state, cache, gate)
        second = self._decide(small_architecture, state, cache, gate)
        assert second is first
        assert cache.stats()["decision_hits"] == 1

    def test_far_move_keeps_decision_cached(self, small_architecture, state, cache):
        gate = _gate(lambda c: c.cz(0, 1))
        first = self._decide(small_architecture, state, cache, gate)
        # Move an atom far away from both gate qubits: no neighbourhood of
        # the gate sites changes its free count, so the verdict replays.
        far_site = state.num_sites - 1
        assert state.site_is_free(far_site)
        far_atom = 11
        assert all(far_site not in
                   state.connectivity.interaction_neighbours(state.site_of_qubit(q))
                   for q in gate.qubits)
        source = state.site_of_atom(far_atom)
        assert all(source not in
                   state.connectivity.interaction_neighbours(state.site_of_qubit(q))
                   for q in gate.qubits)
        state.move_atom(far_atom, far_site)
        second = self._decide(small_architecture, state, cache, gate)
        assert second is first

    def test_nearby_occupancy_change_recomputes(self, small_architecture, state, cache):
        gate = _gate(lambda c: c.cz(0, 5))
        first = self._decide(small_architecture, state, cache, gate)
        # Free a trap inside a gate qubit's interaction neighbourhood: the
        # free count changes, so the cached verdict must not replay.
        anchor_site = state.site_of_qubit(0)
        neighbour_atoms = [state.atom_at_site(s)
                           for s in state.connectivity.interaction_neighbours(anchor_site)
                           if state.atom_at_site(s) is not None
                           and state.qubit_of_atom(state.atom_at_site(s)) is None]
        far_free = max(s for s in state.free_sites()
                       if s not in state.connectivity.interaction_neighbours(anchor_site))
        state.move_atom(neighbour_atoms[0], far_free)
        second = self._decide(small_architecture, state, cache, gate)
        assert second is not first
        assert cache.stats()["decision_hits"] == 0

    def test_swap_of_gate_qubit_misses_on_key(self, small_architecture, state, cache):
        gate = _gate(lambda c: c.cz(0, 5))
        first = self._decide(small_architecture, state, cache, gate)
        # Swapping qubit 0 with an adjacent qubit changes its site: the
        # sites key no longer matches even though occupancy is untouched.
        state.apply_swap(0, 1)
        second = self._decide(small_architecture, state, cache, gate)
        assert second is not first

    def test_begin_run_drops_entries(self, small_architecture, state, cache):
        gate = _gate(lambda c: c.cz(0, 5))
        self._decide(small_architecture, state, cache, gate)
        cache.begin_run(state)
        self._decide(small_architecture, state, cache, gate)
        assert cache.stats()["decision_hits"] == 0


class TestChainCache:
    def _router(self, small_architecture, cache):
        router = ShuttlingRouter(small_architecture)
        router.chain_cache = cache
        return router

    def _node(self, qubit_a, qubit_b):
        circuit = QuantumCircuit(12)
        circuit.cz(qubit_a, qubit_b)
        return CircuitDAG(circuit).nodes[0]

    def test_unchanged_state_replays_chains(self, small_architecture, state, cache):
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        first = router.candidate_chains(state, node)
        second = router.candidate_chains(state, node)
        assert first and second
        assert [chain.moves for chain in first] == [chain.moves for chain in second]
        assert cache.stats()["chain_hits"] == 1

    def test_replayed_chains_equal_reference_construction(
            self, small_architecture, state, cache):
        cached_router = self._router(small_architecture, cache)
        reference_router = ShuttlingRouter(small_architecture)
        node = self._node(0, 11)
        cached_router.candidate_chains(state, node)
        replayed = cached_router.candidate_chains(state, node)
        reference = reference_router.candidate_chains(state, node)
        assert [chain.moves for chain in replayed] == \
            [chain.moves for chain in reference]

    def test_read_site_mutation_invalidates(self, small_architecture, state, cache):
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        first = router.candidate_chains(state, node)
        # Occupy the destination the winning chain relies on: the cached
        # list must be rebuilt (the free-read no longer holds).
        destination = first[0].moves[-1].destination
        spare = next(atom for atom in range(state.num_atoms)
                     if state.qubit_of_atom(atom) is None)
        state.move_atom(spare, destination)
        second = router.candidate_chains(state, node)
        assert cache.stats()["chain_hits"] == 0
        assert [chain.moves for chain in second] != [chain.moves for chain in first]

    def test_swap_changes_atom_identity_and_misses(self, small_architecture,
                                                   state, cache):
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        first = router.candidate_chains(state, node)
        moved_atoms = {move.atom for chain in first for move in chain}
        state.apply_swap(0, 1)  # qubit 0 now lives on a different atom
        second = router.candidate_chains(state, node)
        assert cache.stats()["chain_hits"] == 0
        # The rebuilt chains move the qubit's *new* atom.
        assert {move.atom for chain in second for move in chain} != moved_atoms

    def test_reverted_mutation_still_hits(self, small_architecture, state, cache):
        """A site that changes and changes back leaves the read values
        intact, so the value-based validation replays the entry."""
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        first = router.candidate_chains(state, node)
        destination = first[0].moves[-1].destination
        spare = next(atom for atom in range(state.num_atoms)
                     if state.qubit_of_atom(atom) is None)
        original = state.site_of_atom(spare)
        state.move_atom(spare, destination)
        state.move_atom(spare, original)
        second = router.candidate_chains(state, node)
        assert cache.stats()["chain_hits"] == 1
        assert [chain.moves for chain in second] == [chain.moves for chain in first]

    def test_backoff_stops_recording_after_churn(self, small_architecture,
                                                 state, cache):
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        spares = [atom for atom in range(state.num_atoms)
                  if state.qubit_of_atom(atom) is None]
        # Persistently occupy a site the construction read as free after
        # every build: each round invalidates the entry until the
        # exponential back-off stops the recording.
        for spare in spares[:4]:
            chains = router.candidate_chains(state, node)
            destination = next(
                move.destination for move in reversed(chains[0].moves)
                if state.site_is_free(move.destination))
            state.move_atom(spare, destination)
        assert cache._chain_cooldown.get(node.index, 0) > 0
        assert cache.stats()["chain_hits"] == 0

    def _churn_until_backoff(self, router, state, cache, node):
        """Invalidate the node's entry until the back-off arms, then stop
        mutating.  Returns the spare atoms not yet consumed by the churn."""
        spares = [atom for atom in range(state.num_atoms)
                  if state.qubit_of_atom(atom) is None]
        for spare in spares[:2]:
            chains = router.candidate_chains(state, node)
            destination = next(
                move.destination for move in reversed(chains[0].moves)
                if state.site_is_free(move.destination))
            state.move_atom(spare, destination)
        # Third probe sees the second invalidation and arms the cooldown.
        router.candidate_chains(state, node)
        assert cache._chain_cooldown.get(node.index, 0) > 0
        assert cache._chain_invalidations.get(node.index, 0) >= 2
        assert node.index not in cache._chains
        return spares[2:]

    def test_backoff_recovers_after_quiet_stretch(self, small_architecture,
                                                  state, cache):
        """Churn-then-quiet: a region that stops churning serves hits again
        once the cooldown expires, with the invalidation streak cleared."""
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        self._churn_until_backoff(router, state, cache, node)
        # Quiet probes burn down the cooldown without recording or storing.
        while cache._chain_cooldown.get(node.index, 0) > 1:
            router.candidate_chains(state, node)
            assert node.index not in cache._chains
        # Expiry probe: the footprint stayed untouched for the whole
        # cooldown, so the streak clears and recording resumes.
        router.candidate_chains(state, node)
        assert node.index not in cache._chain_cooldown
        assert node.index not in cache._chain_invalidations
        assert node.index in cache._chains
        # The re-stored entry replays — and matches a fresh construction.
        replayed = router.candidate_chains(state, node)
        assert cache.stats()["chain_hits"] == 1
        reference = ShuttlingRouter(small_architecture).candidate_chains(
            state, node)
        assert [chain.moves for chain in replayed] == \
            [chain.moves for chain in reference]

    def test_backoff_expiry_keeps_streak_when_region_still_churns(
            self, small_architecture, state, cache):
        """Recording always resumes at expiry, but a footprint touched
        during the cooldown keeps the streak, so the next invalidation
        re-arms a longer cooldown."""
        router = self._router(small_architecture, cache)
        node = self._node(0, 11)
        spares = self._churn_until_backoff(router, state, cache, node)
        streak = cache._chain_invalidations[node.index]
        # Touch the invalidated entry's footprint mid-cooldown.
        footprint, _ = cache._chain_quiet[node.index]
        target = next(site for site in footprint if state.site_is_free(site))
        state.move_atom(spares[0], target)
        while node.index in cache._chain_cooldown:
            router.candidate_chains(state, node)
        assert cache._chain_invalidations.get(node.index) == streak
        assert node.index in cache._chains  # recording resumed regardless


class TestChainReads:
    def test_record_batch_partitions_by_occupancy(self, state):
        reads = ChainReads()
        occupied = state.occupied_sites()
        batch = set(list(occupied)[:2]) | set(list(state.free_sites())[:2])
        reads.record_batch(batch, occupied, None)
        assert reads.occupied <= occupied
        assert reads.free.isdisjoint(occupied)
        assert reads.occupied | reads.free == batch
        assert reads.still_valid(state)

    def test_delta_sites_are_skipped(self, state):
        reads = ChainReads()
        occupied = state.occupied_sites()
        free_site = next(iter(state.free_sites()))
        occupied_site = next(iter(occupied))
        reads.record_batch({free_site, occupied_site}, occupied, {free_site})
        assert free_site not in reads.free
        assert free_site not in reads.occupied
        assert occupied_site in reads.occupied

    def test_atom_read_change_invalidates(self, state):
        reads = ChainReads()
        site = state.site_of_atom(4)
        reads.atom_reads[site] = 4
        assert reads.still_valid(state)
        free = next(iter(state.free_sites()))
        state.move_atom(4, free)
        assert not reads.still_valid(state)


class TestArrivedPositionsWithRegionCache:
    """`GatePosition.arrived` invalidation must behave identically with the
    region cache enabled: the caches replay decisions/chains, never stale
    multi-qubit positions."""

    def _displacement_circuit(self):
        # A CCZ whose position will be cached, plus spread-out CZ work that
        # forces shuttling moves through the CCZ's neighbourhood.
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 1, 2)
        circuit.cz(3, 11)
        circuit.cz(4, 10)
        circuit.cz(0, 9)
        return circuit

    @pytest.mark.parametrize("mode", ["hybrid", "gate_only", "shuttling_only"])
    def test_multiqubit_stream_identical_with_cache(self, small_architecture,
                                                    small_connectivity, mode):
        circuit = self._displacement_circuit()
        config = MapperConfig.for_mode(mode)
        cached = HybridMapper(small_architecture, config,
                              connectivity=small_connectivity).map(circuit)
        reference = HybridMapper(
            small_architecture, config.with_overrides(cross_round_cache=False),
            connectivity=small_connectivity).map(circuit)
        assert cached.operations == reference.operations
        assert cached.final_atom_map == reference.final_atom_map

    def test_displaced_arrived_qubit_still_invalidates_position(
            self, small_architecture, small_connectivity):
        """Replaying the PR 2 regression with the region cache wired in:
        a displaced-then-refilled position is rebuilt, not replayed."""
        mapper = HybridMapper(small_architecture, MapperConfig.gate_only(),
                              connectivity=small_connectivity)
        assert mapper.region_cache is not None
        state = MappingState(small_architecture, 12,
                             connectivity=small_connectivity)
        mapper.region_cache.begin_run(state)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 1, 2)

        from repro.mapping.result import MappingResult
        node = CircuitDAG(circuit).nodes[0]
        positions = {}
        result = MappingResult(circuit=circuit)
        mapper._refresh_positions(state, [node], [], positions, set(), result)
        mapper._refresh_positions(state, [node], [], positions, set(), result)
        cached_position = positions[node.index]

        arrived = next(qubit for qubit, site in cached_position.assignment.items()
                       if state.site_of_qubit(qubit) == site)
        vacated = cached_position.assignment[arrived]
        free = next(iter(state.free_sites()))
        state.move_atom(state.atom_of_qubit(arrived), free)
        foreign = next(atom for atom in range(state.num_atoms)
                       if state.site_of_atom(atom) not in cached_position.sites
                       and state.qubit_of_atom(atom) is None)
        state.move_atom(foreign, vacated)

        mapper._refresh_positions(state, [node], [], positions, set(),
                                  MappingResult(circuit=circuit))
        assert positions[node.index] is not cached_position
