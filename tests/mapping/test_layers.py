"""Unit tests for the layer manager (process block (1))."""

import pytest

from repro.circuit import QuantumCircuit
from repro.mapping import LayerManager


class TestDraining:
    def test_trivial_gates_are_drained(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cz(0, 1).h(2)
        manager = LayerManager(circuit)
        drained = manager.drain_trivial_gates()
        assert {node.index for node in drained} == {0, 1, 3}
        assert {node.index for node in manager.front_layer()} == {2}

    def test_draining_cascades(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).h(0)
        manager = LayerManager(circuit)
        drained = manager.drain_trivial_gates()
        assert len(drained) == 3
        assert manager.is_finished()

    def test_drained_gates_preserve_order_per_qubit(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).x(0).z(0)
        manager = LayerManager(circuit)
        drained = manager.drain_trivial_gates()
        assert [node.index for node in drained] == [0, 1, 2]


class TestLayers:
    def test_front_layer_contains_only_entangling_gates(self, multiqubit_circuit):
        manager = LayerManager(multiqubit_circuit)
        front, lookahead = manager.layers()
        assert all(node.gate.is_entangling for node in front)
        assert all(node.gate.is_entangling for node in lookahead)

    def test_lookahead_depth_zero(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        manager = LayerManager(circuit, lookahead_depth=0)
        front, lookahead = manager.layers()
        assert lookahead == []
        assert len(front) == 1

    def test_lookahead_depth_negative_rejected(self):
        with pytest.raises(ValueError):
            LayerManager(QuantumCircuit(1), lookahead_depth=-1)

    def test_execute_advances_the_front(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        manager = LayerManager(circuit)
        front, _ = manager.layers()
        manager.execute(front[0])
        new_front, _ = manager.layers()
        assert {node.index for node in new_front} == {1}

    def test_num_remaining_tracks_execution(self, line_circuit):
        manager = LayerManager(line_circuit)
        total = len(line_circuit)
        assert manager.num_remaining == total
        front, _ = manager.layers()
        manager.execute(front[0])
        assert manager.num_remaining == total - 1

    def test_commutation_enlarges_front_layer(self, small_qft_circuit):
        with_commutation = LayerManager(small_qft_circuit, use_commutation=True)
        without_commutation = LayerManager(small_qft_circuit, use_commutation=False)
        front_with, _ = with_commutation.layers()
        front_without, _ = without_commutation.layers()
        assert len(front_with) >= len(front_without)

    def test_full_drain_execute_cycle_terminates(self, multiqubit_circuit):
        manager = LayerManager(multiqubit_circuit)
        executed = 0
        while not manager.is_finished():
            front, _ = manager.layers()
            if not front:
                break
            manager.execute(front[0])
            executed += 1
        assert manager.is_finished()
        assert executed == multiqubit_circuit.num_entangling_gates()
