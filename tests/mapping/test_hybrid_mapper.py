"""Integration-style unit tests for the full hybrid mapping process (Figure 4)."""

import pytest

from repro.circuit import QuantumCircuit, decompose_mcx_to_mcz
from repro.mapping import HybridMapper, MapperConfig, MappingResult
from repro.mapping.result import CircuitGateOp, ShuttleOp, SwapOp


def assert_valid_result(result: MappingResult, circuit: QuantumCircuit) -> None:
    """Common structural checks every mapping result must satisfy."""
    result.verify_complete()
    # Every emitted circuit gate preserves its gate identity.
    for op in result.circuit_gate_ops():
        assert op.gate is circuit[op.gate_index]
        assert len(op.atoms) == op.gate.num_qubits
        assert len(set(op.sites)) == len(op.sites)


class TestBasicMapping:
    def test_trivially_executable_circuit_needs_no_routing(self, small_architecture,
                                                           bell_circuit):
        mapper = HybridMapper(small_architecture, MapperConfig())
        result = mapper.map(bell_circuit)
        assert result.num_swaps == 0
        assert result.num_moves == 0
        assert result.num_trivially_executable == 1
        assert_valid_result(result, bell_circuit)

    def test_single_qubit_only_circuit(self, small_architecture):
        circuit = QuantumCircuit(5)
        for q in range(5):
            circuit.h(q).rz(0.3, q)
        result = HybridMapper(small_architecture).map(circuit)
        assert len(result.operations) == len(circuit)
        assert result.num_swaps == 0 and result.num_moves == 0

    def test_circuit_larger_than_atom_count_rejected(self, small_architecture):
        circuit = QuantumCircuit(small_architecture.num_atoms + 1)
        circuit.h(0)
        with pytest.raises(ValueError):
            HybridMapper(small_architecture).map(circuit)

    def test_mapping_records_initial_and_final_maps(self, small_architecture,
                                                    long_range_circuit):
        result = HybridMapper(small_architecture).map(long_range_circuit)
        assert set(result.initial_qubit_map) == set(range(long_range_circuit.num_qubits))
        assert set(result.final_qubit_map) == set(range(long_range_circuit.num_qubits))
        assert result.runtime_seconds > 0


class TestModes:
    def test_shuttling_only_never_inserts_swaps(self, small_architecture,
                                                long_range_circuit):
        result = HybridMapper(small_architecture,
                              MapperConfig.shuttling_only()).map(long_range_circuit)
        assert result.num_swaps == 0
        assert result.num_moves > 0
        assert result.mode == "shuttling_only"
        assert_valid_result(result, long_range_circuit)

    def test_gate_only_never_moves_atoms_for_two_qubit_circuits(self, small_architecture,
                                                                long_range_circuit):
        result = HybridMapper(small_architecture,
                              MapperConfig.gate_only()).map(long_range_circuit)
        assert result.num_moves == 0
        assert result.num_swaps > 0
        assert result.mode == "gate_only"
        assert_valid_result(result, long_range_circuit)

    def test_hybrid_routes_every_gate(self, small_architecture, long_range_circuit):
        result = HybridMapper(small_architecture,
                              MapperConfig.hybrid(1.0)).map(long_range_circuit)
        assert result.num_swaps + result.num_moves > 0
        assert_valid_result(result, long_range_circuit)

    def test_routed_gate_attribution_sums_to_entangling_count(self, small_architecture,
                                                              long_range_circuit):
        result = HybridMapper(small_architecture).map(long_range_circuit)
        routed = (result.num_gate_routed + result.num_shuttle_routed
                  + result.num_trivially_executable)
        assert routed == long_range_circuit.num_entangling_gates()


class TestEmittedStreams:
    def test_gates_emitted_at_interacting_sites(self, small_architecture,
                                                long_range_circuit, small_connectivity):
        result = HybridMapper(small_architecture).map(long_range_circuit)
        for op in result.circuit_gate_ops():
            if op.gate.is_entangling:
                assert small_connectivity.sites_mutually_interacting(op.sites)

    def test_swap_ops_connect_adjacent_sites(self, small_architecture,
                                             long_range_circuit, small_connectivity):
        result = HybridMapper(small_architecture,
                              MapperConfig.gate_only()).map(long_range_circuit)
        for op in result.swap_ops():
            assert small_connectivity.are_adjacent(op.site_a, op.site_b)

    def test_shuttle_ops_replay_onto_free_sites(self, small_architecture,
                                                long_range_circuit):
        """Replaying the operation stream never moves an atom onto an occupied trap."""
        from repro.mapping import MappingState
        result = HybridMapper(small_architecture,
                              MapperConfig.shuttling_only()).map(long_range_circuit)
        state = MappingState(small_architecture, long_range_circuit.num_qubits)
        for op in result.operations:
            if isinstance(op, ShuttleOp):
                assert state.site_is_free(op.move.destination)
                state.apply_move(op.move)
            elif isinstance(op, SwapOp):
                state.apply_swap_with_atom(op.qubit_a, op.atom_b)
            elif isinstance(op, CircuitGateOp) and op.gate.is_entangling:
                assert state.gate_executable(op.gate)

    def test_gate_order_respects_dependencies(self, small_architecture, small_qft_circuit):
        result = HybridMapper(small_architecture).map(small_qft_circuit)
        from repro.circuit import CircuitDAG
        dag = CircuitDAG(small_qft_circuit)
        emitted_order = {op.gate_index: position
                         for position, op in enumerate(result.circuit_gate_ops())}
        for node in dag.nodes:
            for predecessor in node.predecessors:
                assert emitted_order[predecessor] < emitted_order[node.index]


class TestMultiQubitGates:
    @pytest.mark.parametrize("mode", ["gate_only", "shuttling_only", "hybrid"])
    def test_multiqubit_circuit_maps_in_every_mode(self, small_architecture,
                                                   multiqubit_circuit, mode):
        config = {"gate_only": MapperConfig.gate_only(),
                  "shuttling_only": MapperConfig.shuttling_only(),
                  "hybrid": MapperConfig.hybrid(1.0)}[mode]
        result = HybridMapper(small_architecture, config).map(multiqubit_circuit)
        assert_valid_result(result, multiqubit_circuit)

    def test_reversible_benchmark_maps(self, mixed_architecture):
        from repro.circuit.library import call
        circuit = decompose_mcx_to_mcz(call(num_qubits=12, seed=3))
        result = HybridMapper(mixed_architecture, MapperConfig.hybrid(1.0)).map(circuit)
        assert_valid_result(result, circuit)

    def test_gate_only_falls_back_when_no_position_exists(self):
        """Unplaceable multi-qubit gates re-route via shuttling even in gate-only mode.

        All atoms start on the first lattice row; with ``r_int = 1.5 d`` no
        three *occupied* sites are mutually interacting, so the CCZ has no
        gate-based position and must be realised by moving atoms off the row.
        """
        from repro.hardware import NeutralAtomArchitecture, SquareLattice
        from repro.mapping import MappingState
        architecture = NeutralAtomArchitecture(
            name="single-row", lattice=SquareLattice(8, 8, 3.0), num_atoms=8,
            interaction_radius=1.5, restriction_radius=1.5)
        initial = MappingState(architecture, 6, initial_sites=list(range(8)))
        circuit = QuantumCircuit(6)
        circuit.ccz(0, 2, 4)
        result = HybridMapper(architecture, MapperConfig.gate_only()).map(
            circuit, initial_state=initial)
        assert result.num_fallback_reroutes >= 1
        assert result.num_moves > 0
        assert_valid_result(result, circuit)


class TestCachedPositionInvalidation:
    """Regression tests for the cached multi-qubit position validation.

    A cached position used to be kept whenever its sites were occupied by
    *any* atoms; a shuttling move displacing a gate atom whose trap is then
    refilled by a foreign atom must invalidate the cache instead.
    """

    @staticmethod
    def _cache_position(mapper, state, circuit):
        from repro.circuit import CircuitDAG
        from repro.mapping.result import MappingResult
        node = CircuitDAG(circuit).nodes[0]
        positions = {}
        result = MappingResult(circuit=circuit)
        gate_nodes, _ = mapper._refresh_positions(
            state, [node], [], positions, set(), result)
        assert gate_nodes == [node]
        # A second validation round marks the qubits already sitting on
        # their assigned sites as arrived (mirrors the routing loop).
        mapper._refresh_positions(state, [node], [], positions, set(), result)
        return node, positions

    def test_displaced_gate_atom_invalidates_cached_position(
            self, small_architecture, small_connectivity):
        from repro.mapping import MappingState
        mapper = HybridMapper(small_architecture, MapperConfig.gate_only(),
                              connectivity=small_connectivity)
        state = MappingState(small_architecture, 12,
                             connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 1, 2)
        node, positions = self._cache_position(mapper, state, circuit)
        cached = positions[node.index]

        arrived = next(qubit for qubit, site in cached.assignment.items()
                       if state.site_of_qubit(qubit) == site)
        vacated = cached.assignment[arrived]
        # Shuttle the arrived gate atom away, then refill its trap with a
        # foreign atom so every cached site is occupied again.
        free = next(iter(state.free_sites()))
        state.move_atom(state.atom_of_qubit(arrived), free)
        foreign = next(atom for atom in range(state.num_atoms)
                       if state.site_of_atom(atom) not in cached.sites
                       and state.qubit_of_atom(atom) is None)
        state.move_atom(foreign, vacated)

        assert all(not state.site_is_free(site) for site in cached.sites)
        assert not HybridMapper._cached_position_valid(state, cached)

        from repro.mapping.result import MappingResult
        mapper._refresh_positions(state, [node], [], positions, set(),
                                  MappingResult(circuit=circuit))
        assert positions[node.index] is not cached

    def test_occupied_unchanged_position_stays_cached(self, small_architecture,
                                                      small_connectivity):
        from repro.mapping import MappingState
        mapper = HybridMapper(small_architecture, MapperConfig.gate_only(),
                              connectivity=small_connectivity)
        state = MappingState(small_architecture, 12,
                             connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 1, 2)
        node, positions = self._cache_position(mapper, state, circuit)
        cached = positions[node.index]

        from repro.mapping.result import MappingResult
        mapper._refresh_positions(state, [node], [], positions, set(),
                                  MappingResult(circuit=circuit))
        assert positions[node.index] is cached

    def test_freed_site_still_invalidates(self, small_architecture,
                                          small_connectivity):
        from repro.mapping import MappingState
        mapper = HybridMapper(small_architecture, MapperConfig.gate_only(),
                              connectivity=small_connectivity)
        state = MappingState(small_architecture, 12,
                             connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 1, 2)
        node, positions = self._cache_position(mapper, state, circuit)
        cached = positions[node.index]

        occupied_site = next(site for site in cached.sites
                             if not state.site_is_free(site))
        free = next(iter(state.free_sites()))
        state.move_atom(state.atom_at_site(occupied_site), free)
        assert not HybridMapper._cached_position_valid(state, cached)


class TestBenchmarks:
    def test_small_graph_state_all_modes_agree_on_gate_count(self, mixed_architecture,
                                                             small_graph_circuit):
        for config in (MapperConfig.gate_only(), MapperConfig.shuttling_only(),
                       MapperConfig.hybrid(1.0)):
            result = HybridMapper(mixed_architecture, config).map(small_graph_circuit)
            assert len(result.circuit_gate_ops()) == len(small_graph_circuit)

    def test_qft_maps_on_all_three_presets(self, shuttling_architecture,
                                           gate_architecture, mixed_architecture,
                                           small_qft_circuit):
        for architecture in (shuttling_architecture, gate_architecture, mixed_architecture):
            result = HybridMapper(architecture, MapperConfig.hybrid(1.0)).map(small_qft_circuit)
            assert_valid_result(result, small_qft_circuit)
