"""Sharded routing: serial fallback, schedulers, stitching, pool faults.

Three contracts under test:

* **Serial fallback** — any circuit that partitions into fewer than two
  slices (1-qubit, tiny, fully-sequential) silently takes the serial path
  and stays *bit-identical* to the ``shard_routing=False`` stream (and hence
  to the committed goldens).
* **Validity + determinism** — both schedulers emit streams that replay
  legally from the initial maps, are complete, and are deterministic;
  the speculative stream is identical under thread and process pools
  (the stream depends on the config, never on the pool).
* **Fault tolerance** — a slice worker that dies is not fatal: its whole
  slice is re-routed serially at the seam and the merged stream stays valid.
"""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.library.random_circuits import (
    local_window_circuit,
    random_layered_circuit,
)
from repro.hardware import SiteConnectivity
from repro.mapping import (
    HybridMapper,
    MapperConfig,
    assert_stream_valid,
    validate_stream,
)
import repro.mapping.shard as shard_module


@pytest.fixture()
def thread_pool(monkeypatch):
    """Force the speculative scheduler onto thread workers (1-CPU CI box)."""
    monkeypatch.setattr(shard_module, "_POOL_KIND", "thread")


def _map(architecture, circuit, config, connectivity=None):
    return HybridMapper(architecture, config,
                        connectivity=connectivity).map(circuit)


class TestSerialFallback:
    """Sub-threshold circuits must be byte-identical to the serial path."""

    def _assert_identical_to_serial(self, architecture, circuit):
        connectivity = SiteConnectivity(architecture)
        serial = _map(architecture, circuit, MapperConfig(), connectivity)
        for workers in (1, 2):
            sharded = _map(architecture, circuit,
                           MapperConfig.sharded(workers=workers), connectivity)
            assert sharded.op_stream_lines() == serial.op_stream_lines()
            assert sharded.op_stream_digest() == serial.op_stream_digest()
            assert not sharded.shard_stats, \
                "fallback must not engage the sharded path"

    def test_one_qubit_circuit(self, mixed_architecture):
        circuit = QuantumCircuit(1, name="one_qubit")
        for _ in range(30):
            circuit.h(0).t(0)
        self._assert_identical_to_serial(mixed_architecture, circuit)

    def test_tiny_circuit(self, mixed_architecture, bell_circuit):
        self._assert_identical_to_serial(mixed_architecture, bell_circuit)

    def test_fully_sequential_circuit(self, mixed_architecture):
        # One dependency chain on two qubits, shorter than two minimum
        # slices: partitions into a single slice -> serial path.
        circuit = QuantumCircuit(6, name="sequential")
        for _ in range(15):
            circuit.cz(0, 1)
            circuit.h(0)
        self._assert_identical_to_serial(mixed_architecture, circuit)

    def test_below_min_slice_threshold(self, mixed_architecture):
        circuit = random_layered_circuit(10, 2, seed=11)
        assert len(circuit) < 2 * MapperConfig().shard_min_slice
        self._assert_identical_to_serial(mixed_architecture, circuit)


class TestChainedScheduler:
    def test_stream_valid_and_complete(self, mixed_architecture):
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=1, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        assert result.shard_stats["scheduler"] == "chained"
        assert result.shard_stats["num_slices"] >= 2
        assert result.shard_stats["seam_rounds"] == 0
        result.verify_complete()
        assert_stream_valid(result, mixed_architecture)

    def test_deterministic(self, mixed_architecture):
        circuit = random_layered_circuit(16, 10, seed=1234)
        config = MapperConfig.sharded(workers=1, shard_min_slice=12)
        first = _map(mixed_architecture, circuit, config)
        second = _map(mixed_architecture, circuit, config)
        assert first.op_stream_lines() == second.op_stream_lines()

    def test_counters_cover_every_entangling_gate(self, mixed_architecture):
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=1, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        attributed = (result.num_gate_routed + result.num_shuttle_routed
                      + result.num_trivially_executable)
        assert attributed == circuit.num_entangling_gates()

    def test_stage_seconds_include_partition(self, mixed_architecture):
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=1, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        assert "partition" in result.stage_seconds
        assert "shuttle_route" in result.stage_seconds


class TestSpeculativeScheduler:
    def test_stream_valid_and_complete(self, mixed_architecture, thread_pool):
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        assert result.shard_stats["scheduler"] == "speculative"
        assert result.shard_stats["pool_kind"] == "thread"
        assert result.shard_stats["gates_replayed"] > 0
        result.verify_complete()
        assert_stream_valid(result, mixed_architecture)

    def test_deterministic(self, mixed_architecture, thread_pool):
        circuit = local_window_circuit(18, 120, window=4, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=16)
        first = _map(mixed_architecture, circuit, config)
        second = _map(mixed_architecture, circuit, config)
        assert first.op_stream_lines() == second.op_stream_lines()

    def test_thread_and_process_pools_agree(self, mixed_architecture,
                                            monkeypatch):
        """The stream depends on the config, never on the pool backing."""
        circuit = random_layered_circuit(16, 8, seed=1234)
        config = MapperConfig.sharded(workers=2, shard_min_slice=12)
        monkeypatch.setattr(shard_module, "_POOL_KIND", "thread")
        threaded = _map(mixed_architecture, circuit, config)
        monkeypatch.setattr(shard_module, "_POOL_KIND", "process")
        forked = _map(mixed_architecture, circuit, config)
        assert threaded.op_stream_lines() == forked.op_stream_lines()

    def test_worker_count_does_not_change_stream(self, mixed_architecture,
                                                 thread_pool):
        """Beyond the chained/speculative split, worker count is wall-clock
        only — 2 and 4 workers must emit the identical stream."""
        circuit = random_layered_circuit(16, 10, seed=7)
        two = _map(mixed_architecture, circuit,
                   MapperConfig.sharded(workers=2, shard_min_slice=12))
        four = _map(mixed_architecture, circuit,
                    MapperConfig.sharded(workers=4, shard_min_slice=12))
        assert two.op_stream_lines() == four.op_stream_lines()

    def test_shuttling_heavy_workload(self, shuttling_architecture,
                                      thread_pool):
        circuit = local_window_circuit(18, 120, window=4, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=16)
        result = _map(shuttling_architecture, circuit, config)
        result.verify_complete()
        assert_stream_valid(result, shuttling_architecture)


class TestPoolFaultFallback:
    def test_crashed_slice_falls_back_to_seam(self, mixed_architecture,
                                              thread_pool, monkeypatch):
        """A worker that dies on one slice defers that slice to the seam
        path; the merged stream must still be complete and valid."""
        real_worker = shard_module._route_slice_worker

        def flaky_worker(slice_index):
            if slice_index == 1:
                raise RuntimeError("injected slice-worker fault")
            return real_worker(slice_index)

        monkeypatch.setattr(shard_module, "_route_slice_worker", flaky_worker)
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        failures = result.shard_stats["slice_failures"]
        assert [entry["slice"] for entry in failures] == [1]
        assert "injected slice-worker fault" in failures[0]["error"]
        result.verify_complete()
        assert_stream_valid(result, mixed_architecture)

    def test_all_slices_crashing_still_completes(self, mixed_architecture,
                                                 thread_pool, monkeypatch):
        def doomed_worker(slice_index):
            raise RuntimeError("injected total pool fault")

        monkeypatch.setattr(shard_module, "_route_slice_worker", doomed_worker)
        circuit = random_layered_circuit(16, 8, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=12)
        result = _map(mixed_architecture, circuit, config)
        assert len(result.shard_stats["slice_failures"]) \
            == result.shard_stats["num_slices"]
        result.verify_complete()
        assert_stream_valid(result, mixed_architecture)


class TestShardConfig:
    def test_sharded_classmethod(self):
        config = MapperConfig.sharded(workers=3, shard_min_slice=10)
        assert config.shard_routing is True
        assert config.shard_workers == 3
        assert config.shard_min_slice == 10

    def test_resolved_shard_max_slice(self):
        assert MapperConfig(shard_min_slice=10).resolved_shard_max_slice == 40
        assert MapperConfig(shard_min_slice=10,
                            shard_max_slice=15).resolved_shard_max_slice == 15

    @pytest.mark.parametrize("kwargs", (
        {"shard_workers": 0},
        {"shard_min_slice": 0},
        {"shard_min_slice": 10, "shard_max_slice": 5},
        {"shard_max_cut_qubits": -1},
    ))
    def test_invalid_shard_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MapperConfig(**kwargs)

    def test_replay_validator_flags_corrupt_stream(self, mixed_architecture):
        """The validity replayer must actually catch broken streams."""
        from dataclasses import replace

        from repro.mapping import CircuitGateOp

        circuit = random_layered_circuit(16, 6, seed=7)
        result = _map(mixed_architecture, circuit, MapperConfig())
        assert validate_stream(result, mixed_architecture) == []
        for index, op in enumerate(result.operations):
            if isinstance(op, CircuitGateOp) and len(op.atoms) == 2:
                corrupted = replace(
                    op, atoms=(op.atoms[1], op.atoms[0]), sites=op.sites)
                result.operations[index] = corrupted
                break
        assert validate_stream(result, mixed_architecture) != []
