"""Unit tests for the two-fold mapping state (Figure 2 / Examples 3 and 4)."""

import pytest

from repro.circuit.gate import controlled_z
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity, SquareLattice
from repro.mapping import MappingState


class TestConstruction:
    def test_identity_initialisation(self, small_state):
        for qubit in range(small_state.num_circuit_qubits):
            assert small_state.atom_of_qubit(qubit) == qubit
            assert small_state.site_of_qubit(qubit) == qubit
        small_state.consistency_check()

    def test_too_many_circuit_qubits_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            MappingState(small_architecture, small_architecture.num_atoms + 1)

    def test_custom_initial_placement(self, small_architecture, small_connectivity):
        sites = list(range(5, 5 + small_architecture.num_atoms))
        state = MappingState(small_architecture, 4, connectivity=small_connectivity,
                             initial_sites=sites)
        assert state.site_of_atom(0) == 5
        state.consistency_check()

    def test_duplicate_initial_sites_rejected(self, small_architecture):
        sites = [0] * small_architecture.num_atoms
        with pytest.raises(ValueError):
            MappingState(small_architecture, 4, initial_sites=sites)

    def test_custom_qubit_map(self, small_architecture, small_connectivity):
        mapping = [3, 2, 1, 0]
        state = MappingState(small_architecture, 4, connectivity=small_connectivity,
                             initial_qubit_map=mapping)
        assert state.atom_of_qubit(0) == 3
        assert state.qubit_of_atom(0) == 3
        state.consistency_check()

    def test_duplicate_qubit_map_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            MappingState(small_architecture, 3, initial_qubit_map=[0, 0, 1])


class TestLookups:
    def test_auxiliary_atoms_have_no_qubit(self, small_state):
        assert small_state.qubit_of_atom(small_state.num_circuit_qubits) is None

    def test_site_occupancy(self, small_state):
        occupied = small_state.occupied_sites()
        free = small_state.free_sites()
        assert len(occupied) == small_state.num_atoms
        assert occupied.isdisjoint(free)
        assert len(occupied) + len(free) == small_state.num_sites

    def test_gate_sites(self, small_state):
        gate = controlled_z((0, 5))
        assert small_state.gate_sites(gate) == (0, 5)

    def test_mapping_copies_are_snapshots(self, small_state):
        qmap = small_state.qubit_mapping()
        small_state.apply_swap(0, 1)
        assert qmap[0] == 0  # the copy does not change


class TestConnectivityQueries:
    def test_adjacent_qubits(self, small_state):
        assert small_state.qubits_adjacent(0, 1)
        assert not small_state.qubits_adjacent(0, 11)

    def test_gate_executable_two_qubit(self, small_state):
        assert small_state.gate_executable(controlled_z((0, 1)))
        assert not small_state.gate_executable(controlled_z((0, 11)))

    def test_gate_executable_multi_qubit_needs_mutual_adjacency(self, small_state):
        # Qubits 0, 1, 2 sit on the first row within 2d of each other.
        assert small_state.gate_executable(controlled_z((0, 1, 2)))
        # 0 and 3 are 3 sites apart -> not executable.
        assert not small_state.gate_executable(controlled_z((0, 1, 3)))

    def test_single_qubit_gate_always_executable(self, small_state):
        from repro.circuit.gate import single_qubit_gate
        assert small_state.gate_executable(single_qubit_gate("h", 11))

    def test_swap_distance_adjacent_is_zero(self, small_state):
        assert small_state.swap_distance(0, 1) == 0
        assert small_state.swap_distance(0, 2) == 0  # still within 2d

    def test_swap_distance_grows_with_separation(self, small_state):
        assert small_state.swap_distance(0, 11) >= 1
        assert small_state.swap_distance(0, 11, exact=True) >= small_state.swap_distance(0, 11)

    def test_gate_swap_distance_sums_pairs(self, small_state):
        gate = controlled_z((0, 5, 11))
        assert small_state.gate_swap_distance(gate) >= small_state.swap_distance(0, 11)

    def test_vicinity_and_free_sites(self, small_state):
        vicinity = small_state.vicinity_of_qubit(0)
        assert all(not small_state.site_is_free(s) for s in vicinity)
        free_nearby = small_state.free_sites_near(small_state.site_of_qubit(0))
        assert all(small_state.site_is_free(s) for s in free_nearby)

    def test_connectivity_graph_nodes_are_occupied_sites(self, small_state):
        graph = small_state.connectivity_graph()
        assert set(graph.nodes) == small_state.occupied_sites()


class TestSwaps:
    def test_apply_swap_exchanges_qubits_not_atoms(self, small_state):
        site_q0 = small_state.site_of_qubit(0)
        site_q1 = small_state.site_of_qubit(1)
        small_state.apply_swap(0, 1)
        assert small_state.site_of_qubit(0) == site_q1
        assert small_state.site_of_qubit(1) == site_q0
        # atoms did not move
        assert small_state.occupied_sites() == set(range(small_state.num_atoms))
        assert small_state.num_swaps_applied == 1
        small_state.consistency_check()

    def test_swap_with_auxiliary_atom(self, small_state):
        # Atom 17 holds no circuit qubit and sits directly below qubit 11's atom.
        small_state.apply_swap_with_atom(11, 17)
        assert small_state.site_of_qubit(11) == 17
        assert small_state.qubit_of_atom(11) is None
        small_state.consistency_check()

    def test_swap_of_non_adjacent_qubits_rejected(self, small_state):
        with pytest.raises(ValueError):
            small_state.apply_swap(0, 11)

    def test_example4_swap_updates_connectivity(self, small_architecture,
                                                small_connectivity):
        # Example 4: a SWAP substitutes edges of the connectivity graph.
        state = MappingState(small_architecture, 4, connectivity=small_connectivity)
        assert state.gate_executable(controlled_z((0, 2)))
        state.apply_swap(0, 2)
        assert state.gate_executable(controlled_z((0, 2)))  # still adjacent, roles swapped
        assert state.site_of_qubit(0) == 2


class TestMoves:
    def test_move_atom_changes_atom_mapping_only(self, small_state):
        target = small_state.num_atoms + 2  # a free site on the second row
        assert small_state.site_is_free(target)
        small_state.move_atom(0, target)
        assert small_state.site_of_qubit(0) == target
        assert small_state.atom_of_qubit(0) == 0
        assert small_state.num_moves_applied == 1
        small_state.consistency_check()

    def test_move_to_occupied_site_rejected(self, small_state):
        with pytest.raises(ValueError):
            small_state.move_atom(0, 1)

    def test_move_to_same_site_rejected(self, small_state):
        with pytest.raises(ValueError):
            small_state.move_atom(0, 0)

    def test_move_outside_lattice_rejected(self, small_state):
        with pytest.raises(ValueError):
            small_state.move_atom(0, 10_000)

    def test_make_and_apply_move(self, small_state):
        free_site = sorted(small_state.free_sites())[0]
        move = small_state.make_move(3, free_site)
        assert move.atom == 3
        assert move.source == small_state.site_of_atom(3)
        small_state.apply_move(move)
        assert small_state.site_of_atom(3) == free_site

    def test_example4_shuttling_updates_connectivity(self, small_architecture,
                                                     small_connectivity):
        # Example 4 (shuttling branch): moving an atom changes which gates
        # are executable without touching the qubit mapping.
        state = MappingState(small_architecture, 3, connectivity=small_connectivity)
        far_gate = controlled_z((0, 2))
        assert state.gate_executable(far_gate)
        # Move qubit 2's atom to the far corner: the gate becomes impossible.
        corner = small_architecture.lattice.site_at(5, 5)
        state.move_atom(2, corner)
        assert not state.gate_executable(far_gate)
        assert state.atom_of_qubit(2) == 2


class TestCopy:
    def test_copy_is_deep(self, small_state):
        clone = small_state.copy()
        clone.apply_swap(0, 1)
        assert small_state.site_of_qubit(0) == 0
        assert clone.site_of_qubit(0) == 1
        assert clone.num_swaps_applied == small_state.num_swaps_applied + 1
