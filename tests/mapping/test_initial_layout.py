"""Unit tests for the initial layout strategies."""

import pytest

from repro.circuit import QuantumCircuit
from repro.mapping import (
    HybridMapper,
    LAYOUT_STRATEGIES,
    MapperConfig,
    compact_layout,
    create_initial_state,
    identity_layout,
    interaction_graph_layout,
)


def star_circuit(num_qubits=10, hub=0):
    """A star-shaped interaction graph: the hub couples to every other qubit."""
    circuit = QuantumCircuit(num_qubits, name="star")
    for qubit in range(num_qubits):
        if qubit != hub:
            circuit.cz(hub, qubit)
    return circuit


class TestIdentityLayout:
    def test_matches_paper_default(self, small_architecture, small_connectivity):
        state = identity_layout(small_architecture, 8, small_connectivity)
        for qubit in range(8):
            assert state.atom_of_qubit(qubit) == qubit
            assert state.site_of_qubit(qubit) == qubit
        state.consistency_check()


class TestCompactLayout:
    def test_atoms_form_a_centred_block(self, small_architecture, small_connectivity):
        state = compact_layout(small_architecture, 8, small_connectivity)
        state.consistency_check()
        lattice = small_architecture.lattice
        centre = ((lattice.rows - 1) / 2.0, (lattice.cols - 1) / 2.0)
        occupied = state.occupied_sites()
        free = state.free_sites()

        def distance(site):
            row, col = lattice.row_col(site)
            return (row - centre[0]) ** 2 + (col - centre[1]) ** 2

        # Every occupied site is at least as close to the centre as every free site.
        assert max(distance(site) for site in occupied) <= min(
            distance(site) for site in free) + 1e-9

    def test_compact_layout_reduces_initial_gate_distance(self, small_architecture,
                                                          small_connectivity):
        circuit = star_circuit(12, hub=0)
        identity = identity_layout(small_architecture, 12, small_connectivity)
        compact = compact_layout(small_architecture, 12, small_connectivity)
        identity_distance = sum(identity.gate_swap_distance(g) for g in circuit
                                if g.is_entangling)
        compact_distance = sum(compact.gate_swap_distance(g) for g in circuit
                               if g.is_entangling)
        assert compact_distance <= identity_distance


class TestInteractionGraphLayout:
    def test_hub_qubit_sits_closest_to_centre(self, small_architecture,
                                              small_connectivity):
        circuit = star_circuit(10, hub=3)
        state = interaction_graph_layout(small_architecture, circuit, small_connectivity)
        state.consistency_check()
        lattice = small_architecture.lattice
        centre = ((lattice.rows - 1) / 2.0, (lattice.cols - 1) / 2.0)

        def distance(site):
            row, col = lattice.row_col(site)
            return (row - centre[0]) ** 2 + (col - centre[1]) ** 2

        hub_distance = distance(state.site_of_qubit(3))
        assert all(distance(state.site_of_qubit(q)) >= hub_distance - 1e-9
                   for q in range(10))

    def test_rejects_oversized_circuits(self, small_architecture):
        circuit = QuantumCircuit(small_architecture.num_atoms + 1)
        with pytest.raises(ValueError):
            interaction_graph_layout(small_architecture, circuit)


class TestRegistry:
    def test_all_strategies_resolve(self, small_architecture, small_connectivity):
        circuit = star_circuit(8)
        for strategy in LAYOUT_STRATEGIES:
            state = create_initial_state(strategy, small_architecture, circuit,
                                         small_connectivity)
            state.consistency_check()
            assert state.num_circuit_qubits == 8

    def test_unknown_strategy_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            create_initial_state("best-effort", small_architecture, QuantumCircuit(2))

    def test_mapper_accepts_custom_initial_state(self, small_architecture,
                                                 small_connectivity):
        circuit = star_circuit(10)
        initial = create_initial_state("interaction_graph", small_architecture, circuit,
                                       small_connectivity)
        mapper = HybridMapper(small_architecture, MapperConfig.hybrid(1.0),
                              connectivity=small_connectivity)
        result = mapper.map(circuit, initial_state=initial)
        result.verify_complete()
        assert set(result.initial_qubit_map) == set(range(10))
