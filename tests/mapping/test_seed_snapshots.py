"""Predictive snapshot seeding: forecast legality, worker fallback, streaming memory.

Three contracts under test:

* **Forecast legality** — every entry map produced by
  :func:`forecast_entry_maps` is exported from a live simulated
  :class:`MappingState`, so it must reconstruct through
  :meth:`MappingState.from_maps` without error, never reassign a qubit to a
  different atom, and actually drift from the initial placement on a
  routing-heavy workload (non-vacuity).
* **Worker fallback** — :func:`_route_slice_worker` starts from the
  forecast when it is present and feasible (``seeded=True``) and falls
  back to the initial-state snapshot on a missing or infeasible forecast
  (``seeded=False``) while still producing a complete, valid slice result.
* **Bounded streaming memory** — a 1000+-qubit circuit drains through the
  speculative streaming stitcher with ``retain=False`` while live slice
  results stay within the speculation window and the peak live allocation
  stays bounded (the stream never materialises a whole-circuit result).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.circuit.library.random_circuits import (
    local_window_circuit,
    random_layered_circuit,
)
from repro.hardware import SiteConnectivity
from repro.hardware.presets import mixed
from repro.mapping import (
    MapperConfig,
    MappingState,
    ShardedRouter,
    StreamValidator,
    partition_circuit,
    slice_subcircuit,
)
import repro.mapping.shard as shard_module
from repro.mapping.shard import _route_slice_worker, forecast_entry_maps


def _plan_and_state(architecture, connectivity, circuit, min_slice=12):
    plan = partition_circuit(circuit, min_slice=min_slice, max_slice=48,
                             max_cut_qubits=None)
    state = MappingState(architecture, circuit.num_qubits,
                         connectivity=connectivity)
    return plan, state


class TestForecastEntryMaps:
    @pytest.fixture(scope="class")
    def connectivity(self, mixed_architecture):
        return SiteConnectivity(mixed_architecture)

    @pytest.fixture(scope="class")
    def forecast(self, mixed_architecture, connectivity):
        circuit = local_window_circuit(18, 120, window=4, seed=7)
        plan, state = _plan_and_state(mixed_architecture, connectivity,
                                      circuit)
        assert plan.num_slices >= 3, "workload must exercise several slices"
        return plan, state, forecast_entry_maps(plan, state)

    def test_one_entry_per_slice_first_entry_is_initial(self, forecast):
        plan, state, entries = forecast
        assert len(entries) == plan.num_slices
        # Slice 0 enters at the untouched initial state: the forecast of the
        # first slice must be the initial maps verbatim.
        assert entries[0] == state.export_maps()

    def test_every_forecast_is_feasible(self, mixed_architecture,
                                        connectivity, forecast):
        _, _, entries = forecast
        for index, entry in enumerate(entries):
            assert entry is not None
            rebuilt = MappingState.from_maps(mixed_architecture, entry,
                                             connectivity=connectivity)
            rebuilt.consistency_check()
            assert rebuilt.export_maps() == entry, f"entry {index} round-trip"

    def test_forecast_never_reassigns_qubits(self, forecast):
        _, state, entries = forecast
        _, initial_qubit_to_atom = state.export_maps()
        for entry in entries:
            assert entry[1] == initial_qubit_to_atom

    def test_forecast_drifts_on_routing_heavy_workload(self, forecast):
        _, _, entries = forecast
        drifted = [entry for entry in entries[1:] if entry[0] != entries[0][0]]
        assert drifted, ("forecast simulation never moved an atom — the "
                         "seeding axis is vacuous on this workload")


class TestWorkerSeedFallback:
    @pytest.fixture()
    def worker_context(self, mixed_architecture, monkeypatch):
        connectivity = SiteConnectivity(mixed_architecture)
        circuit = random_layered_circuit(12, 6, seed=3)
        plan, state = _plan_and_state(mixed_architecture, connectivity,
                                      circuit, min_slice=8)
        subcircuit = slice_subcircuit(plan.circuit, plan.slices[0])
        context = {
            "architecture": mixed_architecture,
            "config": MapperConfig.hybrid(1.0),
            "connectivity": connectivity,
            "subcircuits": [subcircuit],
            "snapshot": state,
            "entry_maps": None,
        }
        monkeypatch.setattr(shard_module, "_FORK_CONTEXT", context)
        return context, state

    def test_legal_forecast_seeds_worker(self, worker_context):
        context, state = worker_context
        context["entry_maps"] = [state.export_maps()]
        seeded, result = _route_slice_worker(0)
        assert seeded
        result.verify_complete()

    def test_infeasible_forecast_falls_back_to_snapshot(self, worker_context):
        context, state = worker_context
        atom_to_site, qubit_to_atom = state.export_maps()
        # Two atoms forecast onto one trap: MappingState.from_maps must
        # reject this, and the worker must recover from the snapshot.
        atom_to_site[0] = atom_to_site[1]
        context["entry_maps"] = [(atom_to_site, qubit_to_atom)]
        seeded, result = _route_slice_worker(0)
        assert not seeded
        result.verify_complete()

    def test_missing_entry_maps_routes_unseeded(self, worker_context):
        context, _ = worker_context
        assert context["entry_maps"] is None
        seeded, result = _route_slice_worker(0)
        assert not seeded
        result.verify_complete()

    def test_absent_slice_forecast_routes_unseeded(self, worker_context):
        context, _ = worker_context
        context["entry_maps"] = [None]
        seeded, result = _route_slice_worker(0)
        assert not seeded
        result.verify_complete()

    def test_seeded_and_snapshot_workers_agree_at_identical_entry(
            self, worker_context):
        """The forecast of slice 0 *is* the initial state, so the seeded
        and fallback runs must produce the same operation stream."""
        context, state = worker_context
        seeded_off, baseline = _route_slice_worker(0)
        assert not seeded_off
        context["entry_maps"] = [state.export_maps()]
        seeded_on, seeded_result = _route_slice_worker(0)
        assert seeded_on
        assert seeded_result.op_stream_digest() == baseline.op_stream_digest()


class TestThousandQubitStreaming:
    def test_streaming_stitcher_bounded_memory(self, monkeypatch):
        """1024-qubit circuit through the speculative streaming stitcher.

        ``retain=False`` must keep live slice results inside the
        speculation window (``workers + 1``) and never build a
        whole-circuit :class:`MappingResult`; the stream is validated
        incrementally as it drains, exactly as a bounded-memory consumer
        would run it.
        """
        monkeypatch.setattr(shard_module, "_POOL_KIND", "thread")
        architecture = mixed(lattice_rows=34, num_atoms=1100)
        connectivity = SiteConnectivity(architecture)
        circuit = local_window_circuit(1024, 600, window=4, seed=7)
        assert circuit.num_qubits >= 1000
        config = MapperConfig.sharded(workers=2, shard_min_slice=48)
        router = ShardedRouter(architecture, config,
                               connectivity=connectivity)
        stream = router.stream(circuit, retain=False)
        assert stream is not None
        validator = StreamValidator(circuit, architecture,
                                    stream.initial_qubit_map,
                                    stream.initial_atom_map,
                                    connectivity=connectivity)
        tracemalloc.start()
        for op in stream:
            validator.check(op)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        stats = stream.stats
        assert stream.result is None
        assert stats["scheduler"] == "speculative"
        assert stats["num_slices"] >= 5
        assert stats["max_live_results"] <= config.shard_workers + 1
        assert stats["seeded_slices"] + stats["seeded_fallbacks"] \
            == stats["num_slices"]
        violations = validator.finish(stream.final_qubit_map,
                                      stream.final_atom_map)
        assert violations == []
        # Bounded live memory: peak traced allocation while draining must
        # stay far below what retaining every slice result would cost.
        # Measured ~35 MB on the reference container; 4x headroom.
        assert peak < 140 * 1024 * 1024, f"peak live allocation {peak} bytes"
