"""Unit tests for the shuttling-based router (Section 3.3.2)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.mapping import LayerManager, MappingState, ShuttlingRouter


@pytest.fixture()
def router(small_architecture):
    return ShuttlingRouter(small_architecture, lookahead_weight=0.1, time_weight=0.1,
                           history_window=4)


def layered(circuit):
    manager = LayerManager(circuit)
    front, lookahead = manager.layers()
    return manager, front, lookahead


class TestChainConstruction:
    def test_chain_makes_two_qubit_gate_executable(self, router, small_architecture,
                                                   small_connectivity):
        state = MappingState(small_architecture, 12, connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, _ = layered(circuit)
        chains = router.candidate_chains(state, front[0])
        assert chains
        chain = chains[0]
        for move in chain:
            state.apply_move(move)
        assert state.gate_executable(circuit[0])

    def test_chain_length_respects_bound(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 6, 11)
        _, front, _ = layered(circuit)
        for chain in router.candidate_chains(small_state, front[0]):
            assert len(chain) <= 2 * (3 - 1)

    def test_chain_moves_target_free_sites(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, _ = layered(circuit)
        chain = router.candidate_chains(small_state, front[0])[0]
        # Destination of the first move must be free in the current state.
        assert small_state.site_is_free(chain.moves[0].destination)

    def test_executable_gate_produces_no_chain(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 1)
        _, front, _ = layered(circuit)
        assert router.candidate_chains(small_state, front[0]) == []

    def test_move_away_emitted_when_vicinity_is_full(self):
        """With every site near both gate qubits occupied, a move-away is required."""
        from repro.hardware import NeutralAtomArchitecture, SquareLattice
        architecture = NeutralAtomArchitecture(
            name="dense", lattice=SquareLattice(5, 5, 3.0), num_atoms=24,
            interaction_radius=2.0, restriction_radius=2.0)
        router = ShuttlingRouter(architecture)
        # Sites 0..23 occupied, only the far corner (4,4) = site 24 stays free.
        state = MappingState(architecture, 24)
        circuit = QuantumCircuit(24)
        circuit.cz(0, 12)   # (0,0) and (2,2): not adjacent, vicinities fully occupied
        _, front, _ = layered(circuit)
        chains = router.candidate_chains(state, front[0])
        assert chains
        assert all(chain.num_move_aways > 0 for chain in chains)
        # Applying the best chain makes the gate executable.
        chain = chains[0]
        for move in chain:
            state.apply_move(move)
        assert state.gate_executable(circuit[0])

    def test_invalid_parameters_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            ShuttlingRouter(small_architecture, lookahead_weight=-1)
        with pytest.raises(ValueError):
            ShuttlingRouter(small_architecture, history_window=-1)


class TestCost:
    def test_distance_reducing_chain_has_negative_cost(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, lookahead = layered(circuit)
        chain = router.candidate_chains(small_state, front[0])[0]
        cost = router.chain_cost(small_state, chain, front, lookahead)
        assert cost < 0

    def test_parallel_compatible_history_is_cheaper(self, small_architecture, small_state):
        router_with_history = ShuttlingRouter(small_architecture, time_weight=1.0)
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, lookahead = layered(circuit)
        chain = router_with_history.candidate_chains(small_state, front[0])[0]
        base_cost = router_with_history.chain_cost(small_state, chain, front, lookahead)
        # Record an incompatible move (opposite direction crossing) in history.
        blocker = small_state.make_move(19, sorted(small_state.free_sites())[-1])
        router_with_history.note_moves_applied([blocker])
        cost_with_history = router_with_history.chain_cost(small_state, chain, front,
                                                           lookahead)
        assert cost_with_history >= base_cost

    def test_history_window_is_bounded(self, router, small_state):
        moves = [small_state.make_move(atom, site)
                 for atom, site in zip(range(10, 16), sorted(small_state.free_sites()))]
        router.note_moves_applied(moves)
        assert len(router._recent_moves) <= router.history_window

    def test_reset_clears_history(self, router, small_state):
        move = small_state.make_move(10, sorted(small_state.free_sites())[0])
        router.note_moves_applied([move])
        router.reset()
        assert router.move_time_penalty(move) == 0.0


class TestSelection:
    def test_best_chain_selects_lowest_cost(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11).cz(1, 2)
        _, front, lookahead = layered(circuit)
        best = router.best_chain(small_state, front, lookahead)
        assert best is not None
        # The chain must serve the non-executable gate.
        assert best.gate_index == 0

    def test_best_chain_none_when_everything_executable(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 1)
        _, front, lookahead = layered(circuit)
        assert router.best_chain(small_state, front, lookahead) is None


class TestForcedChain:
    def test_forced_chain_gathers_multiqubit_gate(self, router, small_architecture,
                                                  small_connectivity):
        state = MappingState(small_architecture, 12, connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 6, 11)
        _, front, _ = layered(circuit)
        chain = router.forced_chain(state, front[0])
        assert chain is not None
        for move in chain:
            state.apply_move(move)
        assert state.gate_executable(circuit[0])

    def test_forced_chain_handles_fully_occupied_cluster(self, small_architecture,
                                                         small_connectivity):
        router = ShuttlingRouter(small_architecture)
        state = MappingState(small_architecture, 20, connectivity=small_connectivity)
        circuit = QuantumCircuit(20)
        circuit.ccz(0, 13, 19)
        _, front, _ = layered(circuit)
        chain = router.forced_chain(state, front[0])
        assert chain is not None
        for move in chain:
            state.apply_move(move)
        assert state.gate_executable(circuit[0])


class TestPairPenaltyCompatibilityParity:
    """The inlined AOD-compatibility test in ``_pair_penalty_term`` must
    agree with :func:`repro.shuttling.aod.moves_compatible` for every move
    pair — if the scheduler's batching rule ever changes, this fails loudly
    instead of letting the cost model drift silently."""

    def test_pair_penalty_matches_moves_compatible(self, small_architecture):
        from itertools import product

        from repro.shuttling.aod import moves_compatible
        from repro.shuttling.moves import Move

        lattice = small_architecture.lattice
        router = ShuttlingRouter(small_architecture)

        def make(atom, source, destination, away=False):
            return Move(atom=atom, source=source, destination=destination,
                        source_position=lattice.position(source),
                        destination_position=lattice.position(destination),
                        is_move_away=away)

        # Every ordered pair over a diverse move set: same/different atoms,
        # shared endpoints, same-row / same-column / diagonal displacements,
        # order-preserving and crossing combinations.
        moves = [
            make(0, 0, 1), make(0, 0, 7), make(1, 1, 0), make(1, 2, 3),
            make(2, 6, 13), make(3, 13, 6), make(4, 14, 8), make(5, 8, 14),
            make(6, 20, 27, away=True), make(7, 27, 20), make(8, 5, 35),
            make(9, 30, 0), make(2, 0, 1),
        ]
        checked = 0
        for move, recent in product(moves, moves):
            term = router._pair_penalty_term(move, recent)
            assert (term == 0.0) == moves_compatible(move, recent), \
                (move, recent)
            checked += 1
        assert checked == len(moves) ** 2


class TestTwoQubitChainSpecialisation:
    """`_build_chain_2q` must be observationally identical to the generic
    anchor-gathering path for two-qubit gates — across fresh, shuffled and
    crowded occupancies, including recorded reads."""

    def test_specialised_path_matches_generic(self, small_architecture,
                                              small_connectivity):
        import random

        from repro.circuit.dag import CircuitDAG
        from repro.mapping.regioncache import ChainReads

        router = ShuttlingRouter(small_architecture)
        state = MappingState(small_architecture, 12,
                             connectivity=small_connectivity)
        rng = random.Random(11)
        for _step in range(30):
            # Compare on the current occupancy for a spread of qubit pairs.
            for qubit_a, qubit_b in ((0, 11), (3, 7), (2, 9), (5, 6)):
                circuit = QuantumCircuit(12)
                circuit.cz(qubit_a, qubit_b)
                node = CircuitDAG(circuit).nodes[0]
                gate = node.gate
                for anchor in gate.qubits:
                    reads_fast = ChainReads()
                    reads_generic = ChainReads()
                    fast = router._build_chain_2q(state, gate, anchor,
                                                  node.index, reads_fast)
                    generic = router._build_chain_generic(
                        state, gate, anchor, node.index, reads_generic)
                    if fast is None or generic is None:
                        assert fast is None and generic is None
                    else:
                        assert fast.moves == generic.moves
                    assert reads_fast.occupied == reads_generic.occupied
                    assert reads_fast.free == reads_generic.free
                    assert reads_fast.atom_reads == reads_generic.atom_reads
            # Random walk the occupancy (move a random atom to a random
            # free site) so later iterations compare on crowded layouts.
            atom = rng.randrange(state.num_atoms)
            free = sorted(state.free_sites())
            state.move_atom(atom, rng.choice(free))
