"""Unit tests for the gate-based SWAP router (Section 3.3.1)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.mapping import GateRouter, LayerManager, MappingState, find_gate_position


@pytest.fixture()
def router(small_architecture):
    return GateRouter(small_architecture, lookahead_weight=0.1, decay_rate=0.0,
                      recency_window=4)


def front_for(circuit, state):
    manager = LayerManager(circuit)
    front, lookahead = manager.layers()
    return manager, front, lookahead


class TestCandidates:
    def test_candidates_touch_front_gate_qubits(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, _ = front_for(circuit, small_state)
        candidates = router.candidate_swaps(small_state, front)
        assert candidates
        front_qubits = {0, 11}
        for candidate in candidates:
            assert candidate.qubit_a in front_qubits
            assert small_state.connectivity.are_adjacent(candidate.site_a, candidate.site_b)

    def test_candidates_deduplicated(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 1)   # adjacent qubits: their neighbourhoods overlap
        _, front, _ = front_for(circuit, small_state)
        candidates = router.candidate_swaps(small_state, front)
        keys = [c.key() for c in candidates]
        assert len(keys) == len(set(keys))

    def test_no_candidates_without_front_gates(self, router, small_state):
        assert router.candidate_swaps(small_state, []) == []


class TestCost:
    def test_distance_reducing_swap_preferred(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, lookahead = front_for(circuit, small_state)
        best = router.best_swap(small_state, front, lookahead, {})
        assert best is not None
        before = router.layer_distance(small_state, front, {})
        after = router.layer_distance(small_state, front, {}, best)
        assert after <= before

    def test_layer_distance_zero_when_all_gates_satisfied(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 1).cz(2, 3)
        _, front, _ = front_for(circuit, small_state)
        assert router.layer_distance(small_state, front, {}) == 0

    def test_cost_includes_lookahead_with_weight(self, small_architecture, small_state):
        eager = GateRouter(small_architecture, lookahead_weight=1.0)
        lazy = GateRouter(small_architecture, lookahead_weight=0.0)
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11).cz(0, 9)
        manager = LayerManager(circuit)
        front, lookahead = manager.layers()
        candidate = eager.candidate_swaps(small_state, front)[0]
        cost_eager = eager.swap_cost(small_state, candidate, front, lookahead, {})
        cost_lazy = lazy.swap_cost(small_state, candidate, front, lookahead, {})
        if lookahead:
            assert cost_eager != cost_lazy

    def test_position_distance_used_for_multiqubit_gates(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 5, 11)
        manager = LayerManager(circuit)
        front, lookahead = manager.layers()
        node = front[0]
        position = find_gate_position(small_state, node.gate)
        assert position is not None
        distance = router.layer_distance(small_state, front, {node.index: position})
        assert distance >= 0

    def test_invalid_parameters_rejected(self, small_architecture):
        with pytest.raises(ValueError):
            GateRouter(small_architecture, lookahead_weight=-1)
        with pytest.raises(ValueError):
            GateRouter(small_architecture, decay_rate=-1)
        with pytest.raises(ValueError):
            GateRouter(small_architecture, recency_window=-1)


class TestRecency:
    def test_recency_score_decays_with_age(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, _ = front_for(circuit, small_state)
        candidate = router.candidate_swaps(small_state, front)[0]
        assert router.recency(candidate) == 0
        router.note_swap_applied(small_state, candidate)
        assert router.recency(candidate) > 0

    def test_decay_rate_damps_recently_used_swaps(self, small_architecture, small_state):
        router = GateRouter(small_architecture, decay_rate=0.5, recency_window=4)
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, lookahead = front_for(circuit, small_state)
        candidate = router.candidate_swaps(small_state, front)[0]
        fresh_cost = router.swap_cost(small_state, candidate, front, lookahead, {})
        router.note_swap_applied(small_state, candidate)
        damped_cost = router.swap_cost(small_state, candidate, front, lookahead, {})
        assert damped_cost >= fresh_cost

    def test_reset_clears_history(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, _ = front_for(circuit, small_state)
        candidate = router.candidate_swaps(small_state, front)[0]
        router.note_swap_applied(small_state, candidate)
        router.reset()
        assert router.recency(candidate) == 0

    def test_inverse_of_last_swap_is_avoided(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        _, front, lookahead = front_for(circuit, small_state)
        first = router.best_swap(small_state, front, lookahead, {})
        assert first is not None
        router.note_swap_applied(small_state, first)
        second = router.best_swap(small_state, front, lookahead, {})
        if second is not None:
            assert second.key() != first.key()


class TestForcedRouting:
    def test_forced_route_makes_gate_executable(self, router, small_architecture,
                                                small_connectivity):
        state = MappingState(small_architecture, 12, connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.cz(0, 11)
        gate = circuit[0]
        assert not state.gate_executable(gate)
        applied = router.forced_route_swaps(state, gate)
        assert applied
        assert state.gate_executable(gate)

    def test_forced_route_for_multiqubit_gate(self, router, small_architecture,
                                              small_connectivity):
        state = MappingState(small_architecture, 12, connectivity=small_connectivity)
        circuit = QuantumCircuit(12)
        circuit.ccz(0, 6, 11)
        gate = circuit[0]
        position = find_gate_position(state, gate)
        assert position is not None
        router.forced_route_swaps(state, gate, position)
        assert state.gate_executable(gate)

    def test_forced_route_on_executable_gate_is_a_no_op(self, router, small_state):
        circuit = QuantumCircuit(12)
        circuit.cz(0, 1)
        assert router.forced_route_swaps(small_state, circuit[0]) == []
