"""Property suite for the circuit partitioner (``repro.mapping.partition``).

The sharding contract rests on three partition invariants:

1. the slices are a disjoint, exhaustive, in-order cover of the gate list
   (union == full circuit),
2. per-qubit gate order is preserved across slices (contiguity makes this
   structural, but the suite asserts it directly on the rebuilt gate list),
3. no cut ever crosses more qubits than the configured hard bound.

The suite checks them across seeded random circuits and, end-to-end, across
every registered topology family (``TOPOLOGY_REGISTRY``) by routing a
sharded map on one architecture per family and replaying the stream.
"""

from __future__ import annotations

import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.library.random_circuits import (
    local_window_circuit,
    qaoa_maxcut_circuit,
    random_layered_circuit,
)
from repro.hardware import TOPOLOGY_REGISTRY
from repro.hardware.presets import mixed, zoned
from repro.mapping import (
    HybridMapper,
    MapperConfig,
    crossing_counts,
    partition_circuit,
    partition_circuit_tree,
    slice_subcircuit,
    validate_stream,
)
import repro.mapping.shard as shard_module

WORKLOADS = {
    "layered": lambda seed: random_layered_circuit(16, 10, seed=seed),
    "layered_mq": lambda seed: random_layered_circuit(
        14, 8, multi_qubit_fraction=0.2, seed=seed),
    "qaoa": lambda seed: qaoa_maxcut_circuit(16, edge_probability=0.3,
                                             seed=seed),
    "local": lambda seed: local_window_circuit(18, 120, window=4, seed=seed),
}
SEEDS = (7, 1234, 98765)


def _brute_force_crossing(circuit: QuantumCircuit, position: int) -> int:
    before = set()
    for gate in circuit.gates[:position]:
        before.update(gate.qubits)
    after = set()
    for gate in circuit.gates[position:]:
        after.update(gate.qubits)
    return len(before & after)


class TestCrossingCounts:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_matches_brute_force(self, workload):
        circuit = WORKLOADS[workload](7)
        counts = crossing_counts(circuit)
        assert len(counts) == len(circuit) + 1
        for position in range(len(circuit) + 1):
            assert counts[position] == _brute_force_crossing(circuit, position)

    def test_empty_boundaries_cross_nothing(self):
        circuit = WORKLOADS["layered"](7)
        counts = crossing_counts(circuit)
        assert counts[0] == 0
        assert counts[len(circuit)] == 0


class TestPartitionInvariants:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("min_slice", (8, 24))
    def test_slices_cover_circuit_exactly(self, workload, seed, min_slice):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit(circuit, min_slice=min_slice)
        assert plan.slices[0].start == 0
        assert plan.slices[-1].stop == len(circuit)
        for previous, current in zip(plan.slices, plan.slices[1:]):
            assert previous.stop == current.start
        covered = [index for piece in plan.slices
                   for index in piece.gate_indices()]
        assert covered == list(range(len(circuit)))

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_qubit_gate_order_preserved(self, workload, seed):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit(circuit, min_slice=8)
        rebuilt = []
        for piece in plan.slices:
            rebuilt.extend(slice_subcircuit(circuit, piece).gates)
        assert rebuilt == list(circuit.gates)
        per_qubit_original = {}
        per_qubit_rebuilt = {}
        for gate in circuit.gates:
            for qubit in gate.qubits:
                per_qubit_original.setdefault(qubit, []).append(gate)
        for gate in rebuilt:
            for qubit in gate.qubits:
                per_qubit_rebuilt.setdefault(qubit, []).append(gate)
        assert per_qubit_rebuilt == per_qubit_original

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bound", (4, 8))
    def test_cut_qubits_never_exceed_bound(self, workload, seed, bound):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit(circuit, min_slice=8,
                                 max_cut_qubits=bound)
        counts = crossing_counts(circuit)
        for piece in plan.slices[1:]:
            assert len(piece.cut_qubits) <= bound
            assert counts[piece.start] == len(piece.cut_qubits)
        assert plan.max_cut_qubits() <= bound

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_cut_qubit_sets_are_exact(self, workload):
        circuit = WORKLOADS[workload](7)
        plan = partition_circuit(circuit, min_slice=8)
        for piece in plan.slices[1:]:
            before = set()
            for gate in circuit.gates[:piece.start]:
                before.update(gate.qubits)
            after = set()
            for gate in circuit.gates[piece.start:]:
                after.update(gate.qubits)
            assert set(piece.cut_qubits) == before & after

    @pytest.mark.parametrize("min_slice", (8, 16))
    def test_multi_slice_plans_respect_min_slice(self, min_slice):
        circuit = WORKLOADS["local"](7)
        plan = partition_circuit(circuit, min_slice=min_slice)
        assert plan.num_slices >= 2
        for piece in plan.slices:
            assert piece.num_gates >= min_slice

    def test_soft_max_respected_without_cut_bound(self):
        circuit = WORKLOADS["local"](7)
        plan = partition_circuit(circuit, min_slice=8, max_slice=16)
        assert plan.num_slices >= 2
        # Without a cut bound every window has an admissible cut, so the
        # soft ceiling is never exceeded.
        for piece in plan.slices:
            assert piece.num_gates <= 16 + 8  # last slice may absorb a tail

    def test_small_circuit_yields_single_slice(self):
        circuit = random_layered_circuit(8, 2, seed=3)
        plan = partition_circuit(circuit, min_slice=len(circuit))
        assert plan.num_slices == 1
        assert plan.slices[0].cut_qubits == ()
        assert plan.max_cut_qubits() == 0

    def test_unsatisfiable_cut_bound_extends_slices(self):
        # Fully dense coupling: every interior cut crosses ~all qubits, so a
        # bound of zero admits no cut and the whole circuit stays one slice.
        circuit = qaoa_maxcut_circuit(12, edge_probability=0.9, seed=7)
        plan = partition_circuit(circuit, min_slice=4, max_cut_qubits=0)
        assert plan.num_slices == 1

    def test_invalid_parameters_rejected(self):
        circuit = WORKLOADS["layered"](7)
        with pytest.raises(ValueError):
            partition_circuit(circuit, min_slice=0)
        with pytest.raises(ValueError):
            partition_circuit(circuit, min_slice=8, max_slice=4)


class TestHierarchicalPartitionInvariants:
    """Property suite for the recursive min-cut tree partitioner.

    The streaming stitcher consumes the tree's leaves left to right, so the
    hierarchical plan must satisfy every flat-plan invariant *plus* the
    tree-shape ones: children partition their parent exactly, the cut bound
    holds at every level (not just at the leaf boundaries), and the leaf
    order is deterministic.
    """

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("min_slice", (8, 24))
    def test_leaves_cover_circuit_exactly(self, workload, seed, min_slice):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit_tree(circuit, min_slice=min_slice)
        assert plan.tree is not None
        leaves = list(plan.tree.leaves())
        # Leaves left to right are exactly the plan's slices.
        assert [(leaf.start, leaf.stop) for leaf in leaves] \
            == [(piece.start, piece.stop) for piece in plan.slices]
        covered = [index for piece in plan.slices
                   for index in piece.gate_indices()]
        assert covered == list(range(len(circuit)))

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_qubit_gate_order_preserved(self, workload, seed):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit_tree(circuit, min_slice=8)
        rebuilt = []
        for piece in plan.slices:
            rebuilt.extend(slice_subcircuit(circuit, piece).gates)
        assert rebuilt == list(circuit.gates)
        per_qubit_original = {}
        per_qubit_rebuilt = {}
        for gate in circuit.gates:
            for qubit in gate.qubits:
                per_qubit_original.setdefault(qubit, []).append(gate)
        for gate in rebuilt:
            for qubit in gate.qubits:
                per_qubit_rebuilt.setdefault(qubit, []).append(gate)
        assert per_qubit_rebuilt == per_qubit_original

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("bound", (4, 8))
    def test_cut_bound_holds_at_every_tree_level(self, workload, seed, bound):
        circuit = WORKLOADS[workload](seed)
        plan = partition_circuit_tree(circuit, min_slice=8,
                                      max_cut_qubits=bound)
        counts = crossing_counts(circuit)
        assert plan.tree is not None
        for node in plan.tree.internal_nodes():
            assert node.cut is not None
            assert node.cut_count == counts[node.cut]
            assert node.cut_count <= bound
        for piece in plan.slices[1:]:
            assert len(piece.cut_qubits) <= bound
            assert counts[piece.start] == len(piece.cut_qubits)
        assert plan.max_cut_qubits() <= bound

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tree_shape_invariants(self, workload, seed):
        """Children partition their parent; only oversized segments split;
        every leaf of a multi-leaf plan keeps ``min_slice`` gates (tail
        absorption included); reported depth is the root height."""
        circuit = WORKLOADS[workload](seed)
        min_slice, max_slice = 8, 32
        plan = partition_circuit_tree(circuit, min_slice=min_slice,
                                      max_slice=max_slice)
        tree = plan.tree
        assert tree is not None
        assert tree.start == 0 and tree.stop == len(circuit)
        for node in tree.internal_nodes():
            left, right = node.children
            assert (left.start, left.stop) == (node.start, node.cut)
            assert (right.start, right.stop) == (node.cut, node.stop)
            # Only segments above the soft ceiling are ever split, and both
            # halves keep the minimum slice size.
            assert node.num_gates > max_slice
            assert left.num_gates >= min_slice
            assert right.num_gates >= min_slice
            assert node.height == 1 + max(left.height, right.height)
        if plan.num_slices >= 2:
            for piece in plan.slices:
                assert piece.num_gates >= min_slice
        assert plan.tree_depth == tree.height
        if plan.num_slices >= 2:
            assert plan.tree_depth >= 2

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_leaf_order_deterministic(self, workload, seed):
        circuit = WORKLOADS[workload](seed)
        first = partition_circuit_tree(circuit, min_slice=8,
                                       max_cut_qubits=8)
        second = partition_circuit_tree(circuit, min_slice=8,
                                        max_cut_qubits=8)
        assert first.slices == second.slices
        assert [(n.start, n.stop, n.cut) for n in first.tree.internal_nodes()] \
            == [(n.start, n.stop, n.cut) for n in second.tree.internal_nodes()]
        starts = [piece.start for piece in first.slices]
        assert starts == sorted(starts)

    def test_unsatisfiable_cut_bound_keeps_single_leaf(self):
        circuit = qaoa_maxcut_circuit(12, edge_probability=0.9, seed=7)
        plan = partition_circuit_tree(circuit, min_slice=4, max_cut_qubits=0)
        assert plan.num_slices == 1
        assert plan.tree is not None and plan.tree.is_leaf
        assert plan.tree_depth == 1

    def test_invalid_parameters_rejected(self):
        circuit = WORKLOADS["layered"](7)
        with pytest.raises(ValueError):
            partition_circuit_tree(circuit, min_slice=0)
        with pytest.raises(ValueError):
            partition_circuit_tree(circuit, min_slice=8, max_slice=4)


class TestPartitionAcrossTopologies:
    """End-to-end sharded routing on one architecture per registered family."""

    ARCHITECTURES = {
        "square": lambda: mixed(lattice_rows=7, num_atoms=30),
        "rectangular": lambda: mixed(lattice_rows=7, num_atoms=30,
                                     topology="rectangular", spacing_y=4.0),
        "zoned": lambda: zoned(lattice_rows=9, num_atoms=30),
    }

    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_REGISTRY))
    def test_sharded_stream_valid_on_topology(self, kind):
        builder = self.ARCHITECTURES.get(kind)
        assert builder is not None, (
            f"topology family {kind!r} is registered but has no architecture "
            "builder in this suite — extend ARCHITECTURES so the sharding "
            "invariants cover it")
        architecture = builder()
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=1, shard_min_slice=12)
        result = HybridMapper(architecture, config).map(circuit)
        assert result.shard_stats, "expected the sharded path to engage"
        assert result.shard_stats["num_slices"] >= 2
        result.verify_complete()
        assert validate_stream(result, architecture) == []

    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_REGISTRY))
    def test_seeded_hierarchical_stream_valid_on_topology(self, kind,
                                                          monkeypatch):
        """The predictive-seeding pipeline end to end per topology family:
        hierarchical tree partition, forecast-seeded speculative workers
        (thread pool — 1-CPU CI), repair-pass stitching."""
        monkeypatch.setattr(shard_module, "_POOL_KIND", "thread")
        builder = self.ARCHITECTURES.get(kind)
        assert builder is not None, (
            f"topology family {kind!r} is registered but has no architecture "
            "builder in this suite — extend ARCHITECTURES so the sharding "
            "invariants cover it")
        architecture = builder()
        circuit = random_layered_circuit(16, 10, seed=7)
        config = MapperConfig.sharded(workers=2, shard_min_slice=12,
                                      seed_snapshots=True,
                                      hierarchical_partition=True)
        result = HybridMapper(architecture, config).map(circuit)
        assert result.shard_stats, "expected the sharded path to engage"
        assert result.shard_stats["num_slices"] >= 2
        assert result.shard_stats["scheduler"] == "speculative"
        assert result.shard_stats["seed_snapshots"] is True
        assert result.shard_stats["hierarchical_partition"] is True
        assert result.shard_stats["seeded_slices"] \
            + result.shard_stats["seeded_fallbacks"] \
            == result.shard_stats["num_slices"]
        result.verify_complete()
        assert validate_stream(result, architecture) == []
