"""Tests for the shared workload-scaling rules.

These helpers replaced duplicated sizing logic in ``benchmarks/common.py``
and ``evaluation/table.py::ExperimentSettings``; the tests pin the agreed
behaviour for both consumers.
"""

import pytest

from repro.workloads import (
    PAPER_SIZES,
    build_scaled_architecture,
    lattice_rows_for,
    scaled_atom_count,
    scaled_register_size,
)


class TestScaledRegisterSize:
    def test_full_scale_returns_paper_sizes(self):
        for name, size in PAPER_SIZES.items():
            assert scaled_register_size(name, 1.0, min_size=1) == size

    def test_scaling_is_proportional(self):
        assert scaled_register_size("qft", 0.1, min_size=1) == 20
        assert scaled_register_size("bn", 0.5, min_size=1) == 24

    def test_minimum_size_clamps(self):
        assert scaled_register_size("call", 0.1, min_size=8) == 8
        assert scaled_register_size("call", 0.1, min_size=4) == 4

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ValueError):
            scaled_register_size("nope", 0.5)


class TestScaledAtomCount:
    def test_tracks_paper_register_proportionally(self):
        assert scaled_atom_count(0.15, [8]) == 30

    def test_never_below_largest_circuit(self):
        assert scaled_atom_count(0.05, [40]) == 40

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            scaled_atom_count(0.5, [])


class TestLatticeRows:
    def test_leaves_free_traps(self):
        for atoms in (10, 16, 25, 30, 40, 100, 200):
            rows = lattice_rows_for(atoms)
            assert rows * rows > atoms
            # One extra row beyond the smallest fitting square.
            assert (rows - 1) * (rows - 1) > atoms or rows - 1 == 4

    def test_full_scale_configuration(self):
        # 200 atoms -> one row beyond the paper's 15x15 geometry, so the
        # identity layout always leaves whole free rows for shuttling.
        assert lattice_rows_for(200) == 16


class TestBuildScaledArchitecture:
    def test_matches_benchmark_harness_sizing(self):
        from benchmarks.common import build_architecture, scaled_atom_count as bench_atoms
        ours = build_scaled_architecture("mixed", 0.15)
        theirs = build_architecture("mixed", 0.15)
        assert ours.num_atoms == theirs.num_atoms == bench_atoms(0.15)
        assert ours.lattice.rows == theirs.lattice.rows

    def test_matches_experiment_settings_sizing(self):
        from repro.evaluation.table import ExperimentSettings
        settings = ExperimentSettings(hardware="gate", scale=0.15)
        via_settings = settings.build_architecture()
        sizes = [settings.circuit_size(name) for name in settings.circuits]
        assert via_settings.num_atoms == scaled_atom_count(0.15, sizes)
        assert via_settings.lattice.rows == lattice_rows_for(via_settings.num_atoms)

    def test_circuit_always_fits(self):
        for scale in (0.05, 0.1, 0.3, 1.0):
            architecture = build_scaled_architecture("shuttling", scale)
            largest = max(scaled_register_size(name, scale)
                          for name in PAPER_SIZES)
            assert architecture.num_atoms >= largest
            assert architecture.num_atoms < architecture.lattice.num_sites


class TestEdgeSizes:
    """Degenerate workload sizes must still build and compile."""

    def test_scale_below_lattice_minimum_clamps_to_min_size(self):
        # At a vanishing scale every register clamps to min_size and the
        # lattice bottoms out at the 4+1 edge of lattice_rows_for.
        for name in PAPER_SIZES:
            assert scaled_register_size(name, 0.001) == 8
        architecture = build_scaled_architecture("mixed", 0.001)
        assert architecture.lattice.rows == lattice_rows_for(architecture.num_atoms)
        assert architecture.num_atoms == 8
        # The 4-row floor of lattice_rows_for plus the one extra free row.
        assert architecture.lattice.rows == 5
        assert architecture.num_atoms < architecture.lattice.num_sites

    @pytest.mark.parametrize("hardware", ("gate", "mixed", "shuttling"))
    def test_tiny_scale_compiles_every_benchmark_mode(self, hardware):
        from repro.circuit import decompose_mcx_to_mcz
        from repro.circuit.library import get_benchmark
        from repro.pipeline import compile_circuit

        architecture = build_scaled_architecture(hardware, 0.001)
        circuit = decompose_mcx_to_mcz(
            get_benchmark("qft", num_qubits=8, seed=2024))
        context = compile_circuit(circuit, architecture)
        context.require_result().verify_complete()

    @pytest.mark.parametrize("hardware", ("gate", "mixed", "shuttling"))
    def test_single_qubit_circuit_compiles(self, hardware):
        from repro.circuit import QuantumCircuit
        from repro.pipeline import compile_circuit

        circuit = QuantumCircuit(1, name="single")
        circuit.h(0)
        circuit.rz(0.25, 0)
        circuit.h(0)
        architecture = build_scaled_architecture(hardware, 0.001)
        context = compile_circuit(circuit, architecture)
        result = context.require_result()
        result.verify_complete()
        assert result.num_swaps == 0
        assert result.num_moves == 0
        assert len(result.circuit_gate_ops()) == 3

    def test_single_qubit_circuit_identical_with_cache_off(self):
        from repro.circuit import QuantumCircuit
        from repro.mapping import HybridMapper, MapperConfig

        circuit = QuantumCircuit(1, name="single")
        circuit.h(0)
        circuit.rz(0.5, 0)
        architecture = build_scaled_architecture("mixed", 0.001)
        cached = HybridMapper(architecture, MapperConfig.hybrid(1.0)).map(circuit)
        reference = HybridMapper(
            architecture,
            MapperConfig.hybrid(1.0).with_overrides(cross_round_cache=False),
        ).map(circuit)
        assert cached.operations == reference.operations
