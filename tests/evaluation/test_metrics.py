"""Unit tests for the Table-1a metric evaluation."""

import pytest

from repro.evaluation import evaluate
from repro.mapping import HybridMapper, MapperConfig


class TestEvaluate:
    def test_shuttling_only_has_zero_delta_cz(self, small_architecture,
                                              long_range_circuit):
        result = HybridMapper(small_architecture,
                              MapperConfig.shuttling_only()).map(long_range_circuit)
        metrics = evaluate(long_range_circuit, result, small_architecture)
        assert metrics.delta_cz == 0
        assert metrics.num_moves > 0
        assert metrics.delta_t_us > 0

    def test_gate_only_delta_cz_is_three_per_swap(self, small_architecture,
                                                  long_range_circuit):
        result = HybridMapper(small_architecture,
                              MapperConfig.gate_only()).map(long_range_circuit)
        metrics = evaluate(long_range_circuit, result, small_architecture)
        assert metrics.delta_cz == 3 * result.num_swaps
        assert metrics.delta_cz > 0

    def test_gate_only_is_faster_than_shuttling_only(self, small_architecture,
                                                     long_range_circuit):
        gate_result = HybridMapper(small_architecture,
                                   MapperConfig.gate_only()).map(long_range_circuit)
        shuttle_result = HybridMapper(small_architecture,
                                      MapperConfig.shuttling_only()).map(long_range_circuit)
        gate_metrics = evaluate(long_range_circuit, gate_result, small_architecture)
        shuttle_metrics = evaluate(long_range_circuit, shuttle_result, small_architecture)
        assert gate_metrics.delta_t_us < shuttle_metrics.delta_t_us

    def test_delta_fidelity_non_negative_for_routed_circuits(self, small_architecture,
                                                             long_range_circuit):
        result = HybridMapper(small_architecture).map(long_range_circuit)
        metrics = evaluate(long_range_circuit, result, small_architecture)
        assert metrics.delta_fidelity >= 0

    def test_trivial_circuit_has_zero_overheads(self, small_architecture, bell_circuit):
        result = HybridMapper(small_architecture).map(bell_circuit)
        metrics = evaluate(bell_circuit, result, small_architecture)
        assert metrics.delta_cz == 0
        assert metrics.delta_t_us == pytest.approx(0.0)
        assert metrics.delta_fidelity == pytest.approx(0.0, abs=1e-9)

    def test_metrics_record_run_metadata(self, small_architecture, long_range_circuit):
        result = HybridMapper(small_architecture, MapperConfig.hybrid(1.5)).map(
            long_range_circuit)
        metrics = evaluate(long_range_circuit, result, small_architecture,
                           alpha_ratio=1.5)
        assert metrics.circuit_name == long_range_circuit.name
        assert metrics.mode == "hybrid"
        assert metrics.hardware_name == small_architecture.name
        assert metrics.alpha_ratio == pytest.approx(1.5)
        assert metrics.num_qubits == long_range_circuit.num_qubits

    def test_as_row_is_flat_and_rounded(self, small_architecture, long_range_circuit):
        result = HybridMapper(small_architecture).map(long_range_circuit)
        row = evaluate(long_range_circuit, result, small_architecture).as_row()
        for key in ("hardware", "circuit", "mode", "delta_cz", "delta_t_us",
                    "delta_fidelity", "runtime_s"):
            assert key in row

    def test_multiqubit_circuit_evaluation(self, mixed_architecture, multiqubit_circuit):
        result = HybridMapper(mixed_architecture).map(multiqubit_circuit)
        metrics = evaluate(multiqubit_circuit, result, mixed_architecture)
        assert metrics.mapped_makespan_us >= metrics.original_makespan_us
        assert metrics.mapped_log_success <= metrics.original_log_success + 1e-9
