"""Unit tests for the approximate success-probability model (Eq. 1)."""

import math

import pytest

from repro.evaluation.fidelity import (
    analyse,
    fidelity_decrease,
    log_success_probability,
    success_probability,
)
from repro.scheduling import OperationKind, Schedule, ScheduledOperation


def schedule_with(ops, num_qubits=2):
    schedule = Schedule(num_circuit_qubits=num_qubits)
    for operation in ops:
        schedule.append(operation)
    return schedule


def gate_op(start, duration, atoms, fidelity, kind=OperationKind.ENTANGLING, name="cz"):
    return ScheduledOperation(kind=kind, name=name, start=start, duration=duration,
                              atoms=atoms, fidelity=fidelity)


class TestSuccessProbability:
    def test_empty_schedule_has_unit_probability(self, small_architecture):
        schedule = Schedule(num_circuit_qubits=2)
        assert success_probability(schedule, small_architecture) == pytest.approx(1.0)

    def test_single_operation_probability(self, small_architecture):
        schedule = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)])
        breakdown = analyse(schedule, small_architecture)
        # idle time = 2 * 0.2 - 0.2 = 0.2 us
        expected_log = math.log(0.99) - 0.2 / small_architecture.effective_decoherence_time
        assert breakdown.log_success_probability == pytest.approx(expected_log)
        assert success_probability(schedule, small_architecture) == pytest.approx(
            math.exp(expected_log))

    def test_operation_fidelities_multiply(self, small_architecture):
        schedule = schedule_with([
            gate_op(0.0, 0.2, (0, 1), 0.99),
            gate_op(0.2, 0.2, (0, 1), 0.98),
        ])
        breakdown = analyse(schedule, small_architecture)
        assert breakdown.log_operation_fidelity == pytest.approx(
            math.log(0.99) + math.log(0.98))

    def test_idle_factor_uses_effective_decoherence_time(self, small_architecture):
        long_idle = schedule_with([
            gate_op(0.0, 0.5, (0,), 0.999, kind=OperationKind.SINGLE_QUBIT, name="h"),
            gate_op(1000.0, 0.5, (0,), 0.999, kind=OperationKind.SINGLE_QUBIT, name="h"),
        ])
        breakdown = analyse(long_idle, small_architecture)
        expected_idle = 2 * long_idle.makespan - 1.0
        assert breakdown.idle_time_us == pytest.approx(expected_idle)
        assert breakdown.log_idle_factor == pytest.approx(
            -expected_idle / small_architecture.effective_decoherence_time)

    def test_log_and_linear_scales_agree(self, small_architecture):
        schedule = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.97)])
        assert math.log(success_probability(schedule, small_architecture)) == pytest.approx(
            log_success_probability(schedule, small_architecture))

    def test_breakdown_counts_operations(self, small_architecture):
        schedule = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)] * 3)
        assert analyse(schedule, small_architecture).num_operations == 3


class TestFidelityDecrease:
    def test_identical_schedules_have_zero_decrease(self, small_architecture):
        schedule = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)])
        assert fidelity_decrease(schedule, schedule, small_architecture) == pytest.approx(0.0)

    def test_extra_operations_increase_delta_f(self, small_architecture):
        original = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)])
        mapped = schedule_with([
            gate_op(0.0, 0.2, (0, 1), 0.99),
            gate_op(0.2, 0.2, (0, 1), 0.99),
        ])
        assert fidelity_decrease(mapped, original, small_architecture) > 0

    def test_delta_f_is_additive_in_log_space(self, small_architecture):
        original = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)])
        one_extra = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99),
                                   gate_op(0.2, 0.2, (0, 1), 0.95)])
        two_extra = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99),
                                   gate_op(0.2, 0.2, (0, 1), 0.95),
                                   gate_op(0.4, 0.2, (0, 1), 0.95)])
        d1 = fidelity_decrease(one_extra, original, small_architecture)
        d2 = fidelity_decrease(two_extra, original, small_architecture)
        assert d2 > d1
        # Each identical extra gate contributes the same log penalty (up to idle time).
        assert d2 - d1 == pytest.approx(d1 - 0.0, rel=0.05)

    def test_no_underflow_for_large_schedules(self, small_architecture):
        many = schedule_with([gate_op(0.2 * i, 0.2, (0, 1), 0.99) for i in range(20000)])
        base = schedule_with([gate_op(0.0, 0.2, (0, 1), 0.99)])
        delta = fidelity_decrease(many, base, small_architecture)
        assert math.isfinite(delta)
        assert delta > 100
