"""Unit tests for the Table-1 experiment harness."""

import pytest

from repro.evaluation.table import (
    DEFAULT_ALPHA_GRID,
    ExperimentSettings,
    benchmark_description_rows,
    format_table,
    run_mode_comparison,
    run_single,
    run_table1,
)
from repro.circuit.library import BENCHMARK_NAMES, get_benchmark
from repro.hardware.presets import mixed
from repro.mapping import MapperConfig


class TestExperimentSettings:
    def test_default_settings_cover_all_benchmarks(self):
        settings = ExperimentSettings()
        assert tuple(settings.circuits) == BENCHMARK_NAMES

    def test_scaled_sizes_are_proportional(self):
        settings = ExperimentSettings(scale=0.1)
        assert settings.circuit_size("qft") == 20
        assert settings.circuit_size("call") == 4  # floor of 2.5 clamped to >= 4

    def test_architecture_fits_all_atoms(self):
        settings = ExperimentSettings(scale=0.15)
        architecture = settings.build_architecture()
        assert architecture.num_atoms >= max(
            settings.circuit_size(name) for name in settings.circuits)
        assert architecture.num_atoms < architecture.lattice.num_sites

    def test_hardware_presets_resolved_by_name(self):
        for hardware in ("shuttling", "gate", "mixed"):
            settings = ExperimentSettings(hardware=hardware, scale=0.1)
            assert settings.build_architecture().name == hardware


class TestBenchmarkDescriptions:
    def test_rows_match_table_1b_columns(self):
        settings = ExperimentSettings(scale=0.1, circuits=("graph", "bn", "gray"))
        rows = benchmark_description_rows(settings)
        assert [row["name"] for row in rows] == ["graph", "bn", "gray"]
        for row in rows:
            assert set(row) == {"name", "n", "nCZ", "nC2Z", "nC3Z"}
            assert row["nCZ"] + row["nC2Z"] + row["nC3Z"] > 0

    def test_full_scale_counts_match_paper_profile(self):
        settings = ExperimentSettings(scale=1.0, circuits=("bn",))
        row = benchmark_description_rows(settings)[0]
        assert row["n"] == 48
        assert row["nCZ"] == 133
        assert row["nC2Z"] == 87
        assert row["nC3Z"] == 0


class TestRunners:
    def test_run_single_produces_metrics(self):
        architecture = mixed(lattice_rows=7, num_atoms=24)
        circuit = get_benchmark("graph", num_qubits=16, seed=5)
        metrics = run_single(circuit, architecture, MapperConfig.shuttling_only())
        assert metrics.delta_cz == 0
        assert metrics.hardware_name == "mixed"

    def test_run_mode_comparison_contains_three_modes(self):
        architecture = mixed(lattice_rows=7, num_atoms=24)
        circuit = get_benchmark("graph", num_qubits=16, seed=5)
        results = run_mode_comparison(circuit, architecture, alpha_grid=(1.0,))
        assert set(results) == {"shuttling_only", "gate_only", "hybrid"}
        assert results["shuttling_only"].delta_cz == 0
        assert results["gate_only"].delta_cz > 0 or results["gate_only"].num_swaps == 0
        assert results["hybrid"].alpha_ratio == pytest.approx(1.0)

    def test_hybrid_keeps_best_alpha(self):
        architecture = mixed(lattice_rows=7, num_atoms=24)
        circuit = get_benchmark("graph", num_qubits=14, seed=5)
        results = run_mode_comparison(circuit, architecture, alpha_grid=(0.05, 20.0))
        hybrid = results["hybrid"]
        assert hybrid.delta_fidelity <= min(results["shuttling_only"].delta_fidelity,
                                            results["gate_only"].delta_fidelity) + 1e-6

    def test_run_table1_row_per_circuit(self):
        settings = ExperimentSettings(hardware="mixed", circuits=("graph", "gray"),
                                      scale=0.12, alpha_grid=(1.0,))
        rows = run_table1(settings)
        assert len(rows) == 2
        for row in rows:
            assert set(row) == {"shuttling_only", "gate_only", "hybrid"}

    def test_format_table_renders_all_rows(self):
        settings = ExperimentSettings(hardware="mixed", circuits=("graph",),
                                      scale=0.1, alpha_grid=(1.0,))
        rows = run_table1(settings)
        text = format_table(rows, "mixed")
        assert "graph" in text
        assert "shuttling_only" in text and "gate_only" in text and "hybrid" in text
        assert "dCZ" in text

    def test_default_alpha_grid_brackets_unity(self):
        assert min(DEFAULT_ALPHA_GRID) < 1.0 < max(DEFAULT_ALPHA_GRID)
