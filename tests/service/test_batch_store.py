"""BatchCompiler × ResultStore: compile-once/serve-many on the batch path.

Acceptance: a second batch over the same tasks is served entirely from the
store with metrics equal to the compiled run (bit-identity contract), on
both the serial and the process-pool path.
"""

import pytest

from repro.service import (
    ArchitectureSpec,
    BatchCompiler,
    CompilationTask,
    task_store_key,
)
from repro.store import ResultStore

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)

TASKS = (
    CompilationTask("graph-16", SPEC, circuit_name="graph", num_qubits=16,
                    seed=5),
    CompilationTask("qft-10", SPEC, circuit_name="qft", num_qubits=10),
    CompilationTask("graph-12", SPEC, circuit_name="graph", num_qubits=12,
                    seed=7, mode="shuttling_only"),
)


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path)


class TestSerialPath:
    def test_second_batch_is_served_from_store(self, store):
        compiler = BatchCompiler(max_workers=1, store=store)
        first = compiler.compile(TASKS)
        assert first.ok
        assert not first.from_store
        assert store.stats.puts == len(TASKS)

        second = compiler.compile(TASKS)
        assert second.ok
        assert len(second.from_store) == len(TASKS)
        assert second.summary()["num_from_store"] == len(TASKS)
        for compiled, served in zip(first.results, second.results):
            assert served.metrics == compiled.metrics

    def test_store_artifact_digest_matches_kept_result(self, store):
        """Byte-identity between the persisted artifact and the in-memory
        MappingResult of the compile that produced it."""
        compiler = BatchCompiler(max_workers=1, keep_results=True, store=store)
        batch = compiler.compile(TASKS[:1])
        assert batch.ok
        entry = batch.results[0]
        artifact = store.get(task_store_key(entry.task))
        assert artifact is not None
        assert artifact.op_stream_digest() == entry.result.op_stream_digest()
        assert artifact.op_stream == tuple(entry.result.op_stream_lines())

    def test_keep_results_bypasses_store_reads(self, store):
        """A keep_results batch needs real MappingResults, which store hits
        cannot carry — so it recompiles (and refreshes the store) instead of
        serving metrics-only entries."""
        BatchCompiler(max_workers=1, store=store).compile(TASKS[:1])
        batch = BatchCompiler(max_workers=1, keep_results=True,
                              store=store).compile(TASKS[:1])
        assert batch.ok
        assert not batch.results[0].from_store
        assert batch.results[0].result is not None

    def test_metricless_entry_upgraded_when_metrics_needed(self, store):
        """An evaluate=False artifact must not satisfy an evaluate=True task."""
        BatchCompiler(max_workers=1, evaluate=False,
                      store=store).compile(TASKS[:1])
        key = task_store_key(TASKS[0])
        assert store.get(key, require_metrics=True) is None

        batch = BatchCompiler(max_workers=1, store=store).compile(TASKS[:1])
        assert batch.ok
        assert not batch.results[0].from_store, "metric-less entry must recompile"
        assert batch.results[0].metrics is not None
        assert store.get(key, require_metrics=True) is not None

    def test_failures_are_not_cached(self, store):
        broken = CompilationTask("broken", SPEC, circuit_name="nope")
        batch = BatchCompiler(max_workers=1, store=store).compile([broken])
        assert not batch.ok
        assert store.num_entries() == 0


class TestPoolPath:
    def test_worker_processes_share_the_store_directory(self, store):
        first = BatchCompiler(max_workers=2, store=store).compile(TASKS)
        assert first.ok
        assert store.num_entries() == len(TASKS)

        second = BatchCompiler(max_workers=2, store=store).compile(TASKS)
        assert second.ok
        assert len(second.from_store) == len(TASKS), \
            "pool workers must consult the shared store directory"
        for compiled, served in zip(first.results, second.results):
            assert served.metrics == compiled.metrics

    def test_store_disabled_by_default(self, tmp_path):
        batch = BatchCompiler(max_workers=1).compile(TASKS[:1])
        assert batch.ok
        assert not batch.results[0].from_store
