"""Tests for the parallel batch-compilation service.

The acceptance property of the service layer: a batch compiled with worker
processes produces, per circuit, an operation stream identical to a serial
:meth:`HybridMapper.map` call — parallelism must never change results.
"""

import pytest

from repro.circuit import decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.circuit.qasm import dumps
from repro.hardware import SiteConnectivity
from repro.mapping import HybridMapper, MapperConfig
from repro.service import (
    ARCHITECTURE_CACHE,
    ArchitectureSpec,
    BatchCompiler,
    CompilationTask,
)
from repro.service.__main__ import build_smoke_tasks

SPEC = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)

#: Four small circuits over the three modes — covers both routers.
TASKS = (
    CompilationTask("graph-hybrid", SPEC, circuit_name="graph", num_qubits=16,
                    seed=5, mode="hybrid", alpha=1.0),
    CompilationTask("qft-hybrid", SPEC, circuit_name="qft", num_qubits=10,
                    mode="hybrid", alpha=1.0),
    CompilationTask("gray-gate", SPEC, circuit_name="gray", num_qubits=10,
                    seed=5, mode="gate_only"),
    CompilationTask("graph-shuttle", SPEC, circuit_name="graph", num_qubits=12,
                    seed=7, mode="shuttling_only"),
)


def serial_reference(task: CompilationTask):
    """The hand-wired serial flow the batch result must reproduce."""
    architecture, connectivity = ARCHITECTURE_CACHE.get(task.architecture)
    circuit = decompose_mcx_to_mcz(task.build_circuit())
    mapper = HybridMapper(architecture, task.build_config(),
                          connectivity=connectivity)
    return mapper.map(circuit)


class TestBatchEquivalence:
    def test_two_workers_match_serial_hybrid_mapper_streams(self):
        batch = BatchCompiler(max_workers=2, keep_results=True).compile(TASKS)
        assert batch.ok, batch.summary()
        assert batch.num_workers == 2
        for entry in batch.results:
            reference = serial_reference(entry.task)
            assert entry.result.operations == reference.operations, entry.task.task_id
            assert entry.result.num_swaps == reference.num_swaps
            assert entry.result.num_moves == reference.num_moves
            assert entry.result.final_qubit_map == reference.final_qubit_map
            assert entry.result.final_atom_map == reference.final_atom_map

    def test_serial_batch_matches_parallel_batch_metrics(self):
        serial = BatchCompiler(max_workers=1).compile(TASKS)
        parallel = BatchCompiler(max_workers=2).compile(TASKS)
        assert serial.ok and parallel.ok
        for serial_entry, parallel_entry in zip(serial.results, parallel.results):
            assert serial_entry.metrics.delta_cz == parallel_entry.metrics.delta_cz
            assert serial_entry.metrics.delta_t_us == pytest.approx(
                parallel_entry.metrics.delta_t_us)
            assert serial_entry.metrics.delta_fidelity == pytest.approx(
                parallel_entry.metrics.delta_fidelity)


class TestBatchCompiler:
    def test_results_come_back_in_task_order(self):
        batch = BatchCompiler(max_workers=2).compile(TASKS)
        assert [entry.task.task_id for entry in batch.results] == \
            [task.task_id for task in TASKS]

    def test_failures_are_isolated_per_task(self):
        tasks = list(TASKS[:2]) + [
            CompilationTask("broken", SPEC, circuit_name="no-such-benchmark"),
            CompilationTask("too-big", SPEC, circuit_name="qft",
                            num_qubits=200),
        ]
        batch = BatchCompiler(max_workers=2).compile(tasks)
        assert not batch.ok
        assert len(batch.succeeded) == 2
        assert {entry.task.task_id for entry in batch.failed} == \
            {"broken", "too-big"}
        for entry in batch.failed:
            assert entry.error
        summary = batch.summary()
        assert summary["num_failed"] == 2
        assert set(summary["failures"]) == {"broken", "too-big"}

    def test_qasm_payload_task(self):
        circuit = get_benchmark("graph", num_qubits=12, seed=3)
        task = CompilationTask("from-qasm", SPEC, qasm=dumps(circuit))
        batch = BatchCompiler(max_workers=1).compile([task])
        assert batch.ok
        assert batch.results[0].metrics.circuit_name == "from-qasm"

    def test_task_without_payload_fails_cleanly(self):
        batch = BatchCompiler(max_workers=1).compile(
            [CompilationTask("empty", SPEC)])
        assert not batch.ok
        assert "neither" in batch.results[0].error

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError):
            BatchCompiler(max_workers=1).compile([TASKS[0], TASKS[0]])

    def test_empty_batch(self):
        batch = BatchCompiler(max_workers=2).compile([])
        assert batch.ok and batch.results == []
        assert batch.circuits_per_second() == 0.0

    def test_worker_count_clamped_to_task_count(self):
        batch = BatchCompiler(max_workers=8).compile([TASKS[0]])
        assert batch.num_workers == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            BatchCompiler(max_workers=0)

    def test_evaluate_off_skips_metrics_but_keeps_streams(self):
        batch = BatchCompiler(max_workers=1, keep_results=True,
                              evaluate=False).compile([TASKS[0]])
        assert batch.ok
        assert batch.results[0].metrics is None
        batch.results[0].result.verify_complete()

    def test_architecture_prewarmed_in_parent(self):
        BatchCompiler(max_workers=1).compile([TASKS[0]])
        assert TASKS[0].architecture in ARCHITECTURE_CACHE


class TestSmokeCli:
    def test_smoke_tasks_fit_their_architecture(self):
        tasks = build_smoke_tasks(4, "mixed", 0.08, "hybrid")
        assert len(tasks) == 4
        assert len({task.task_id for task in tasks}) == 4
        for task in tasks:
            assert task.num_qubits <= task.architecture.num_atoms

    def test_smoke_batch_all_succeed(self):
        from repro.service.__main__ import main
        assert main(["--workers", "2", "--num-circuits", "4"]) == 0
