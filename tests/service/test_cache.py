"""Tests for the keyed per-architecture artifact cache."""

import pytest

from repro.service import ArchitectureCache, ArchitectureSpec
from repro.workloads import build_scaled_architecture


class TestArchitectureSpec:
    def test_build_matches_preset(self):
        spec = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        architecture = spec.build()
        assert architecture.name == "mixed"
        assert architecture.lattice.rows == 7
        assert architecture.num_atoms == 30

    def test_scaled_spec_matches_shared_workload_sizing(self):
        spec = ArchitectureSpec.scaled("gate", 0.15)
        reference = build_scaled_architecture("gate", 0.15)
        assert spec.lattice_rows == reference.lattice.rows
        assert spec.num_atoms == reference.num_atoms

    def test_spec_is_hashable_and_value_equal(self):
        a = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        b = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        assert a == b and hash(a) == hash(b)
        assert a != ArchitectureSpec("gate", lattice_rows=7, num_atoms=30)

    def test_unknown_preset_fails_at_build_time(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("warp-drive").build()


class TestArchitectureCache:
    def test_same_spec_returns_identical_objects(self):
        cache = ArchitectureCache()
        spec = ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20)
        first_arch, first_conn = cache.get(spec)
        second_arch, second_conn = cache.get(ArchitectureSpec(
            "mixed", lattice_rows=6, num_atoms=20))
        assert first_arch is second_arch
        assert first_conn is second_conn
        assert len(cache) == 1

    def test_distinct_specs_get_distinct_entries(self):
        cache = ArchitectureCache()
        cache.get(ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20))
        cache.get(ArchitectureSpec("gate", lattice_rows=6, num_atoms=20))
        assert len(cache) == 2

    def test_prewarm_builds_everything(self):
        cache = ArchitectureCache()
        specs = [ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20),
                 ArchitectureSpec("shuttling", lattice_rows=6, num_atoms=20)]
        cache.prewarm(specs)
        assert all(spec in cache for spec in specs)

    def test_clear_empties_the_cache(self):
        cache = ArchitectureCache()
        spec = ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20)
        cache.get(spec)
        cache.clear()
        assert len(cache) == 0 and spec not in cache
