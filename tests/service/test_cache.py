"""Tests for the keyed per-architecture artifact cache."""

import pytest

from repro.service import ArchitectureCache, ArchitectureSpec
from repro.workloads import build_scaled_architecture


class TestArchitectureSpec:
    def test_build_matches_preset(self):
        spec = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        architecture = spec.build()
        assert architecture.name == "mixed"
        assert architecture.lattice.rows == 7
        assert architecture.num_atoms == 30

    def test_scaled_spec_matches_shared_workload_sizing(self):
        spec = ArchitectureSpec.scaled("gate", 0.15)
        reference = build_scaled_architecture("gate", 0.15)
        assert spec.lattice_rows == reference.lattice.rows
        assert spec.num_atoms == reference.num_atoms

    def test_spec_is_hashable_and_value_equal(self):
        a = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        b = ArchitectureSpec("mixed", lattice_rows=7, num_atoms=30)
        assert a == b and hash(a) == hash(b)
        assert a != ArchitectureSpec("gate", lattice_rows=7, num_atoms=30)

    def test_unknown_preset_fails_at_build_time(self):
        with pytest.raises(ValueError):
            ArchitectureSpec("warp-drive").build()


class TestTopologyIdentityInCacheKey:
    """Regression: specs agreeing on hardware/scale but differing in trap
    topology must never collide in the architecture cache."""

    def test_square_and_zoned_specs_never_equal(self):
        square = ArchitectureSpec.scaled("mixed", 0.15)
        zoned = ArchitectureSpec.scaled("mixed", 0.15, topology="zoned")
        assert square != zoned
        assert hash(square) != hash(zoned)
        assert square.topology == "square" and zoned.topology == "zoned"

    def test_square_and_zoned_specs_get_distinct_cache_entries(self):
        cache = ArchitectureCache()
        square_arch, _ = cache.get(
            ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30))
        zoned_arch, _ = cache.get(
            ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                             topology="zoned"))
        assert len(cache) == 2
        assert square_arch.topology.kind == "square"
        assert zoned_arch.topology.kind == "zoned"

    def test_zone_layout_and_corridor_are_part_of_the_key(self):
        base = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                topology="zoned")
        layout = ArchitectureSpec(
            "mixed", lattice_rows=9, num_atoms=30, topology="zoned",
            zone_layout=(("storage", 2), ("entangling", 5), ("storage", 2)))
        corridor = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                    topology="zoned", corridor_transit_um=9.0)
        assert len({base, layout, corridor}) == 3

    def test_rectangular_dims_and_spacing_are_part_of_the_key(self):
        square = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30)
        rect = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                topology="rectangular", lattice_cols=12,
                                spacing_y=2.0)
        assert square != rect
        architecture = rect.build()
        assert architecture.topology.kind == "rectangular"
        assert architecture.topology.cols == 12
        assert architecture.topology.spacing_y == 2.0

    def test_isotropic_spellings_of_one_grid_share_one_entry(self):
        # spacing_y equal to spacing, and topology="rectangular" without
        # anisotropy, are alternate spellings of the plain square lattice;
        # all three must normalise to one spec, one cache entry and one
        # store key.
        plain = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30)
        spelled = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                   spacing_y=3.0)
        rect = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                topology="rectangular", spacing_y=3.0)
        assert plain == spelled == rect
        assert plain.topology == rect.topology == "square"
        assert plain.store_key() == rect.store_key()
        cache = ArchitectureCache()
        first, _ = cache.get(plain)
        second, _ = cache.get(rect)
        assert first is second and len(cache) == 1

    def test_anisotropic_grids_sharing_min_spacing_never_collide(self):
        # Both grids have min(spacing_x, spacing_y) == 2.0; folding the pair
        # into a single spacing would collide them.
        tall = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                topology="rectangular", spacing=2.0,
                                spacing_y=3.0)
        wide = ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                                topology="rectangular", spacing=3.0,
                                spacing_y=2.0)
        assert tall != wide
        assert tall.store_key() != wide.store_key()
        assert tall.build().lattice.cache_key() != wide.build().lattice.cache_key()

    def test_zoned_only_params_rejected_on_unzoned_topologies(self):
        # build_topology used to drop these silently, letting two unequal
        # specs build one physical device.
        with pytest.raises(ValueError, match="no zones"):
            ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                             zone_layout=(("storage", 3), ("entangling", 6)))
        with pytest.raises(ValueError, match="no zones"):
            ArchitectureSpec("mixed", lattice_rows=9, num_atoms=30,
                             topology="rectangular", spacing_y=2.0,
                             corridor_transit_um=9.0)

    def test_zoned_preset_spec_normalises_topology(self):
        # hardware="zoned" with the default topology and an explicit
        # topology="zoned" are the same device; they must hash equally.
        implicit = ArchitectureSpec("zoned", lattice_rows=9, num_atoms=30)
        explicit = ArchitectureSpec("zoned", lattice_rows=9, num_atoms=30,
                                    topology="zoned")
        assert implicit == explicit and hash(implicit) == hash(explicit)
        assert implicit.topology == "zoned"

    def test_spelled_out_defaults_alias_with_unset_fields(self):
        # The built-in defaults (corridor = one lattice constant, banded
        # storage/entangling/storage layout) build the identical device, so
        # the explicit and implicit spellings must share one cache entry.
        implicit = ArchitectureSpec("zoned", lattice_rows=9, num_atoms=30)
        explicit = ArchitectureSpec(
            "zoned", lattice_rows=9, num_atoms=30, corridor_transit_um=3.0,
            zone_layout=(("storage", 3), ("entangling", 3), ("storage", 3)))
        assert implicit == explicit and hash(implicit) == hash(explicit)
        cache = ArchitectureCache()
        first, _ = cache.get(implicit)
        second, _ = cache.get(explicit)
        assert first is second and len(cache) == 1

    def test_zone_layout_normalised_from_lists(self):
        from_lists = ArchitectureSpec(
            "mixed", lattice_rows=9, num_atoms=30, topology="zoned",
            zone_layout=[["storage", 3], ["entangling", 3], ["storage", 3]])
        from_tuples = ArchitectureSpec(
            "mixed", lattice_rows=9, num_atoms=30, topology="zoned",
            zone_layout=(("storage", 3), ("entangling", 3), ("storage", 3)))
        assert from_lists == from_tuples
        assert hash(from_lists) == hash(from_tuples)


class TestArchitectureCache:
    def test_same_spec_returns_identical_objects(self):
        cache = ArchitectureCache()
        spec = ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20)
        first_arch, first_conn = cache.get(spec)
        second_arch, second_conn = cache.get(ArchitectureSpec(
            "mixed", lattice_rows=6, num_atoms=20))
        assert first_arch is second_arch
        assert first_conn is second_conn
        assert len(cache) == 1

    def test_distinct_specs_get_distinct_entries(self):
        cache = ArchitectureCache()
        cache.get(ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20))
        cache.get(ArchitectureSpec("gate", lattice_rows=6, num_atoms=20))
        assert len(cache) == 2

    def test_prewarm_builds_everything(self):
        cache = ArchitectureCache()
        specs = [ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20),
                 ArchitectureSpec("shuttling", lattice_rows=6, num_atoms=20)]
        cache.prewarm(specs)
        assert all(spec in cache for spec in specs)

    def test_clear_empties_the_cache(self):
        cache = ArchitectureCache()
        spec = ArchitectureSpec("mixed", lattice_rows=6, num_atoms=20)
        cache.get(spec)
        cache.clear()
        assert len(cache) == 0 and spec not in cache
