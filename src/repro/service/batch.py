"""Parallel batch compilation of independent circuits.

The service workload of the roadmap: many independent circuits compiled
against a handful of device configurations.  :class:`BatchCompiler` fans
:class:`CompilationTask`s out over a **supervised** process pool
(:class:`~repro.resilience.SupervisedPool` — a dead worker is replaced and
its task re-dispatched under a bounded retry budget instead of poisoning
the whole batch; mapping is pure-Python CPU work, so threads would
serialise on the GIL), shares the immutable
per-architecture artifacts through the keyed
:data:`~repro.service.cache.ARCHITECTURE_CACHE` — pre-warmed in the parent so
forked workers inherit them copy-on-write — and collects a structured
:class:`BatchResult` with per-task metrics and failures.

Every task runs the exact same pass pipeline as a serial
:func:`repro.pipeline.compile_circuit` call, so batch output is equivalent
stream-for-stream to serial compilation (enforced by the service tests).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..resilience import RetryPolicy, ServingFault, SupervisedPool

from ..circuit.circuit import QuantumCircuit
from ..circuit.library import get_benchmark
from ..circuit.qasm import loads as qasm_loads
from ..evaluation.metrics import EvaluationMetrics
from ..mapping.config import MapperConfig
from ..mapping.result import MappingResult
from ..pipeline.manager import compile_circuit
from ..store import CompiledArtifact, ResultStore, StoreKey, compute_store_key
from ..telemetry import tracing
from .cache import ARCHITECTURE_CACHE, ArchitectureSpec

__all__ = ["CompilationTask", "TaskResult", "BatchResult", "BatchCompiler",
           "task_store_key", "compile_task_to_artifact"]


def task_store_key(task: "CompilationTask",
                   circuit: Optional[QuantumCircuit] = None) -> StoreKey:
    """The persistent-store key of one task (see :mod:`repro.store.keys`).

    ``circuit`` lets a caller that already instantiated the task's circuit
    avoid building it twice; by default the task payload is materialised
    here (library build or QASM parse — cheap relative to mapping).
    """
    if circuit is None:
        circuit = task.build_circuit()
    return compute_store_key(circuit, task.architecture, task.build_config())


def compile_task_to_artifact(task: "CompilationTask", *,
                             store: Optional[ResultStore] = None,
                             evaluate: bool = True,
                             read_store: bool = True,
                             circuit: Optional[QuantumCircuit] = None):
    """The one canonical consult-store → compile → persist flow.

    Shared by the batch service and the serving gateway so the store
    contract (key computation, ``require_metrics`` semantics, persist with
    write failures degrading to an unpersisted success) cannot diverge
    between the two paths.  Returns ``(artifact, context, from_store)``:
    ``context`` is ``None`` on a store hit, and ``artifact`` is ``None``
    when no store asked for one (the batch path skips op-stream
    serialisation it would only throw away).
    """
    with tracing.span("compile_task", task_id=task.task_id):
        if circuit is None:
            circuit = task.build_circuit()
        key = task_store_key(task, circuit) if store is not None else None
        if store is not None and read_store:
            artifact = store.get(key, require_metrics=evaluate)
            if artifact is not None:
                return artifact, None, True
        architecture, connectivity = ARCHITECTURE_CACHE.get(task.architecture)
        context = compile_circuit(
            circuit, architecture, task.build_config(),
            connectivity=connectivity, alpha_ratio=task.alpha_ratio,
            evaluate=evaluate)
        artifact: Optional[CompiledArtifact] = None
        if store is not None:
            artifact = CompiledArtifact.from_context(context)
            try:
                store.put(key, artifact)
            except OSError:
                pass
        return artifact, context, False


@dataclass(frozen=True)
class CompilationTask:
    """One circuit to compile against one device configuration.

    The circuit payload is either a benchmark-library reference
    (``circuit_name`` + ``num_qubits`` + ``seed``) or an explicit OpenQASM
    document (``qasm``); both forms are cheap to pickle to worker processes.
    """

    task_id: str
    architecture: ArchitectureSpec
    circuit_name: Optional[str] = None
    num_qubits: Optional[int] = None
    seed: int = 2024
    qasm: Optional[str] = None
    mode: str = "hybrid"
    alpha: float = 1.0

    def build_circuit(self) -> QuantumCircuit:
        """Instantiate the task's circuit (library benchmark or QASM payload)."""
        if self.qasm is not None:
            return qasm_loads(self.qasm, name=self.task_id)
        if self.circuit_name is None:
            raise ValueError(
                f"task {self.task_id!r} carries neither a circuit_name nor a "
                "qasm payload")
        return get_benchmark(self.circuit_name, num_qubits=self.num_qubits,
                             seed=self.seed)

    def build_config(self) -> MapperConfig:
        return MapperConfig.for_mode(self.mode, self.alpha)

    @property
    def alpha_ratio(self) -> Optional[float]:
        """The ratio recorded on the metrics (hybrid tasks only)."""
        return self.alpha if self.mode == "hybrid" else None


@dataclass
class TaskResult:
    """Outcome of one :class:`CompilationTask`."""

    task: CompilationTask
    ok: bool
    metrics: Optional[EvaluationMetrics] = None
    result: Optional[MappingResult] = None
    error: Optional[str] = None
    wall_seconds: float = 0.0
    worker_pid: int = 0
    #: True when the result was served from the persistent store instead of
    #: being compiled (identical by the bit-identity contract).
    from_store: bool = False


@dataclass
class BatchResult:
    """Structured outcome of one :meth:`BatchCompiler.compile` call."""

    results: List[TaskResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    num_workers: int = 1

    @property
    def succeeded(self) -> List[TaskResult]:
        return [entry for entry in self.results if entry.ok]

    @property
    def failed(self) -> List[TaskResult]:
        return [entry for entry in self.results if not entry.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def circuits_per_second(self) -> float:
        """Batch throughput: completed tasks per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.succeeded) / self.wall_seconds

    @property
    def from_store(self) -> List[TaskResult]:
        return [entry for entry in self.results if entry.from_store]

    def summary(self) -> Dict[str, object]:
        return {
            "num_tasks": len(self.results),
            "num_succeeded": len(self.succeeded),
            "num_failed": len(self.failed),
            "num_from_store": len(self.from_store),
            "num_workers": self.num_workers,
            "wall_seconds": round(self.wall_seconds, 4),
            "circuits_per_second": round(self.circuits_per_second(), 4),
            "failures": {entry.task.task_id: entry.error for entry in self.failed},
        }


def _execute_task(task: CompilationTask, *, keep_result: bool = False,
                  evaluate: bool = True,
                  store: Optional[ResultStore] = None) -> TaskResult:
    """Worker entry point: compile one task through the standard pipeline.

    With a ``store``, the key is consulted first (a hit skips the compile
    entirely — it carries no :class:`MappingResult` object, so store reads
    are bypassed under ``keep_result``) and a fresh compile is persisted
    afterwards.  All failures are captured as a failed :class:`TaskResult`
    so one bad task never takes down the batch (or the pool); store write
    failures degrade to an uncached success rather than a task failure.
    """
    start = time.perf_counter()
    try:
        circuit = task.build_circuit()
        artifact, context, from_store = compile_task_to_artifact(
            task, store=store, evaluate=evaluate,
            read_store=not keep_result, circuit=circuit)
        if from_store:
            return TaskResult(
                task=task,
                ok=True,
                metrics=artifact.metrics_for(circuit.name),
                wall_seconds=time.perf_counter() - start,
                worker_pid=os.getpid(),
                from_store=True,
            )
        return TaskResult(
            task=task,
            ok=True,
            metrics=context.metrics,
            result=context.result if keep_result else None,
            wall_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )
    except Exception as exc:  # noqa: BLE001 - failures are data, not crashes
        return TaskResult(
            task=task,
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            wall_seconds=time.perf_counter() - start,
            worker_pid=os.getpid(),
        )


class BatchCompiler:
    """Compiles many independent circuits, optionally in parallel.

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` uses the CPU count, ``1`` compiles
        serially in-process (no pool, useful for debugging and as the
        throughput baseline).
    keep_results:
        Attach the full :class:`MappingResult` (operation stream) to every
        task result.  Off by default: streams are large, and for throughput
        workloads the metrics are what matters.
    evaluate:
        Run the schedule + evaluate passes per task (on by default); off,
        tasks stop after routing and carry no metrics.
    store:
        Optional :class:`~repro.store.ResultStore`.  Tasks whose key is
        already stored are served without compiling (``from_store=True`` on
        their results; compilation is bit-identical either way, so served
        metrics equal compiled metrics) and fresh compiles are persisted.
        Worker processes open their own handle onto the same directory, so
        the pool path populates and consults the identical store.
    deadline_s:
        Per-task wall-clock budget enforced by the supervised pool: a task
        whose worker hangs past it is killed, its worker recycled, and the
        task recorded as a failed :class:`TaskResult` (``None`` disables).
    retry_policy:
        Bounded crash re-dispatch budget (see
        :class:`~repro.resilience.RetryPolicy`).  A worker that dies
        mid-task no longer fails the batch — the task is retried on a
        replacement worker with exponential backoff.
    fault_plan:
        Chaos-test seam (:class:`~repro.resilience.FaultPlan`): faults at
        the ``worker`` point fire *before* the task executes, so injected
        crashes hit the supervision machinery instead of being swallowed
        into a failed :class:`TaskResult`.  Never set in production.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 keep_results: bool = False, evaluate: bool = True,
                 store: Optional[ResultStore] = None,
                 deadline_s: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 fault_plan=None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.keep_results = keep_results
        self.evaluate = evaluate
        self.store = store
        self.deadline_s = deadline_s
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan

    def resolved_workers(self, num_tasks: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, min(workers, num_tasks))

    def compile(self, tasks: Sequence[CompilationTask]) -> BatchResult:
        """Compile every task; results come back in task order."""
        tasks = list(tasks)
        if not tasks:
            return BatchResult(results=[], wall_seconds=0.0, num_workers=1)
        duplicates = _duplicate_ids(tasks)
        if duplicates:
            raise ValueError(f"duplicate task ids in batch: {sorted(duplicates)}")

        workers = self.resolved_workers(len(tasks))
        # Build every distinct architecture once in the parent so forked
        # workers inherit the artifacts instead of rebuilding them.
        ARCHITECTURE_CACHE.prewarm({task.architecture for task in tasks})

        start = time.perf_counter()
        if workers == 1:
            results = [self._run_one(task) for task in tasks]
        else:
            results = self._run_pool(tasks, workers)
        wall = time.perf_counter() - start
        return BatchResult(results=results, wall_seconds=wall,
                           num_workers=workers)

    def _run_pool(self, tasks: Sequence[CompilationTask],
                  workers: int) -> List[TaskResult]:
        """Fan tasks over a supervised process pool, keeping task order.

        Pool-level failures (crash budget exhausted, deadline kill, pool
        shut down) become failed :class:`TaskResult`s — same shape as a
        task that raised on its own input — so the batch always returns
        one result per task.
        """
        store_spec = self.store.spec if self.store is not None else None
        job = _BoundExecute(self.keep_results, self.evaluate, store_spec,
                            self.fault_plan)
        results: List[Optional[TaskResult]] = [None] * len(tasks)
        with SupervisedPool(workers, kind="process",
                            deadline_s=self.deadline_s,
                            retry_policy=self.retry_policy,
                            mp_context=_fork_context()) as pool:
            futures = [pool.submit(job, task, label=task.task_id,
                                   token=task.task_id) for task in tasks]
            for index, (task, future) in enumerate(zip(tasks, futures)):
                try:
                    results[index] = future.result()
                except ServingFault as exc:
                    results[index] = TaskResult(
                        task=task, ok=False,
                        error=f"{type(exc).__name__}: {exc}")
        return results

    def _run_one(self, task: CompilationTask) -> TaskResult:
        return _execute_task(task, keep_result=self.keep_results,
                             evaluate=self.evaluate, store=self.store)


def _fork_context():
    """The ``fork`` start method when the platform offers it, else the default.

    The prewarmed :data:`ARCHITECTURE_CACHE` is only inherited by forked
    workers; requesting ``fork`` explicitly keeps that guarantee on platforms
    (and future Python versions) whose default start method is ``spawn`` or
    ``forkserver``.  Where ``fork`` does not exist at all, the pool falls
    back to the platform default and each worker lazily rebuilds every
    distinct architecture once — correct, just slower on the first task.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


class _BoundExecute:
    """Picklable callable binding the compiler flags for ``pool.map``.

    Carries the store as its picklable ``(root, max_bytes)`` spec and opens
    one process-local handle lazily — counters are per worker, but the
    directory (and therefore hits) is shared with the parent.

    An attached fault plan fires *before* :func:`_execute_task` runs:
    ``_execute_task`` converts every exception into a failed
    :class:`TaskResult`, so an injected crash raised inside it would never
    reach the supervision machinery the chaos suite is exercising.
    """

    def __init__(self, keep_result: bool, evaluate: bool,
                 store_spec=None, fault_plan=None) -> None:
        self.keep_result = keep_result
        self.evaluate = evaluate
        self.store_spec = store_spec
        self.fault_plan = fault_plan
        self._store: Optional[ResultStore] = None

    def __getstate__(self):
        return (self.keep_result, self.evaluate, self.store_spec,
                self.fault_plan)

    def __setstate__(self, state) -> None:
        (self.keep_result, self.evaluate, self.store_spec,
         self.fault_plan) = state
        self._store = None

    def __call__(self, task: CompilationTask) -> TaskResult:
        if self.fault_plan is not None:
            self.fault_plan.fire_worker_fault(task.task_id)
        if self.store_spec is not None and self._store is None:
            self._store = ResultStore.from_spec(self.store_spec)
        return _execute_task(task, keep_result=self.keep_result,
                             evaluate=self.evaluate, store=self._store)


def _duplicate_ids(tasks: Sequence[CompilationTask]) -> set:
    seen: set = set()
    duplicates: set = set()
    for task in tasks:
        if task.task_id in seen:
            duplicates.add(task.task_id)
        seen.add(task.task_id)
    return duplicates
