"""Batch-compilation service layer.

Compiles many independent circuits concurrently over a process pool, sharing
immutable per-architecture artifacts through a keyed cache.  ``python -m
repro.service`` runs a small self-contained smoke batch (used by CI).
"""

from .batch import (
    BatchCompiler,
    BatchResult,
    CompilationTask,
    TaskResult,
    task_store_key,
)
from .cache import ARCHITECTURE_CACHE, ArchitectureCache, ArchitectureSpec

__all__ = [
    "ArchitectureSpec",
    "ArchitectureCache",
    "ARCHITECTURE_CACHE",
    "CompilationTask",
    "TaskResult",
    "BatchResult",
    "BatchCompiler",
    "task_store_key",
]
