"""Batch-service smoke CLI: compile a few small circuits concurrently.

Used by CI to prove the service layer end to end (task construction, the
process pool, artifact sharing, result collection) without paying full-scale
mapping times::

    PYTHONPATH=src python -m repro.service --workers 2 --num-circuits 4

Exits non-zero if any task fails, printing the per-task outcome either way.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..workloads import scaled_register_size
from .batch import BatchCompiler, CompilationTask
from .cache import ArchitectureSpec

#: Small circuits that cover the gate arities (CZ chains up to C3Z networks).
SMOKE_CIRCUITS = ("graph", "qft", "qpe", "gray")


def build_smoke_tasks(num_circuits: int, hardware: str, scale: float,
                      mode: str) -> List[CompilationTask]:
    spec = ArchitectureSpec.scaled(hardware, scale)
    names = itertools.cycle(SMOKE_CIRCUITS)
    tasks = []
    for index in range(num_circuits):
        name = next(names)
        tasks.append(CompilationTask(
            task_id=f"smoke-{index}-{name}",
            architecture=spec,
            circuit_name=name,
            num_qubits=scaled_register_size(name, scale),
            seed=2024 + index,
            mode=mode,
        ))
    return tasks


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-circuits", type=int, default=4,
                        help="number of tasks in the smoke batch (default 4)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker process count (default 2)")
    parser.add_argument("--hardware", default="mixed",
                        choices=("shuttling", "gate", "mixed"))
    parser.add_argument("--scale", type=float, default=0.08,
                        help="workload scale (default 0.08, smoke size)")
    parser.add_argument("--mode", default="hybrid",
                        choices=("shuttling_only", "gate_only", "hybrid"))
    parser.add_argument("--out", default=None,
                        help="optional path for the JSON batch summary")
    args = parser.parse_args(argv)

    tasks = build_smoke_tasks(args.num_circuits, args.hardware, args.scale,
                              args.mode)
    compiler = BatchCompiler(max_workers=args.workers)
    batch = compiler.compile(tasks)

    for entry in batch.results:
        if entry.ok:
            metrics = entry.metrics
            print(f"[ok  ] {entry.task.task_id:<16} pid={entry.worker_pid} "
                  f"wall={entry.wall_seconds:6.2f}s dCZ={metrics.delta_cz:4d} "
                  f"dF={metrics.delta_fidelity:7.3f}")
        else:
            print(f"[FAIL] {entry.task.task_id:<16} {entry.error}")
    summary = batch.summary()
    print(f"batch: {summary['num_succeeded']}/{summary['num_tasks']} ok, "
          f"{summary['num_workers']} workers, {summary['wall_seconds']:.2f}s, "
          f"{summary['circuits_per_second']:.2f} circuits/s")
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0 if batch.ok else 1


if __name__ == "__main__":
    sys.exit(main())
