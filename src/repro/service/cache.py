"""Keyed cache of immutable per-architecture artifacts.

Building a :class:`~repro.hardware.connectivity.SiteConnectivity` (dense
adjacency matrix, neighbourhood rings, hop-distance rows) is by far the most
expensive per-architecture setup cost.  The batch service keys architectures
by a hashable :class:`ArchitectureSpec` so that

* within one process every task targeting the same device shares one
  architecture + connectivity pair, and
* worker processes forked from a pre-warmed parent inherit the built
  artifacts through copy-on-write memory and never rebuild them.

The cache holds only immutable objects; sharing them between tasks (and,
via fork, between workers) is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from threading import Lock
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..circuit.library import BENCHMARK_NAMES
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..hardware.presets import preset
from ..workloads import lattice_rows_for, scaled_atom_count, scaled_register_size

__all__ = ["ArchitectureSpec", "ArchitectureCache", "ARCHITECTURE_CACHE"]


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hashable, picklable description of a preset-based device.

    Tasks carry a spec instead of built objects so that they stay cheap to
    pickle across process boundaries; workers resolve the spec against their
    process-local :data:`ARCHITECTURE_CACHE`.

    The spec carries the **full topology identity** — family, dimensions,
    per-axis spacing, zone layout and corridor penalty — so two devices that
    agree on ``hardware`` and scale but differ in trap layout (e.g. a square
    and a zoned variant of the same preset) can never collide in the cache:
    the frozen-dataclass hash/equality covers every field, and
    ``__post_init__`` normalises the ``"zoned"`` preset so the two spellings
    of the same zoned device (``hardware="zoned"`` with the default topology
    vs an explicit ``topology="zoned"``) also coincide.
    """

    hardware: str
    lattice_rows: int = 15
    num_atoms: Optional[int] = None
    spacing: float = 3.0
    topology: str = "square"
    lattice_cols: Optional[int] = None
    spacing_y: Optional[float] = None
    zone_layout: Optional[Tuple[Tuple[str, int], ...]] = None
    corridor_transit_um: Optional[float] = None

    def __post_init__(self) -> None:
        # Normalise field types first: equal-valued specs must be identical
        # objects with identical store keys regardless of how a caller (or a
        # JSON wire payload, where whole floats arrive as ints) spelled the
        # numbers — repr(3) != repr(3.0) even though the specs compare equal.
        object.__setattr__(self, "hardware", str(self.hardware))
        object.__setattr__(self, "lattice_rows", int(self.lattice_rows))
        object.__setattr__(self, "spacing", float(self.spacing))
        object.__setattr__(self, "topology", str(self.topology))
        for name in ("num_atoms", "lattice_cols"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        for name in ("spacing_y", "corridor_transit_um"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, float(value))
        if self.hardware == "zoned" and self.topology == "square":
            object.__setattr__(self, "topology", "zoned")
        if self.zone_layout is not None:
            # Normalise to nested tuples so equal layouts hash equally even
            # when callers pass lists.
            object.__setattr__(self, "zone_layout", tuple(
                (str(kind), int(rows)) for kind, rows in self.zone_layout))
        if self.topology == "zoned":
            # Spelling out a built-in default must alias with leaving it
            # unset — otherwise two specs describing the identical device
            # would hold duplicate (and heavyweight) cache entries.
            if self.corridor_transit_um == self.spacing:
                object.__setattr__(self, "corridor_transit_um", None)
            if self.zone_layout is not None and self.lattice_rows >= 3:
                from ..hardware.topology import banded_zone_layout
                default = tuple((zone.band_kind, zone.rows)
                                for zone in banded_zone_layout(self.lattice_rows))
                if self.zone_layout == default:
                    object.__setattr__(self, "zone_layout", None)

    def store_key(self) -> str:
        """Canonical ``field=value`` string identifying this device spec.

        The persistent result store (:mod:`repro.store`) keys compiled
        artifacts on this string, so it must be stable across processes:
        fields are enumerated from the dataclass definition sorted by name
        (never from ``__dict__`` order), values are rendered with ``repr``
        after ``__post_init__`` normalisation, so two specs built from equal
        kwargs — in any order, in any process — produce the identical key.
        """
        parts = [f"{spec.name}={getattr(self, spec.name)!r}"
                 for spec in sorted(fields(self), key=lambda spec: spec.name)]
        return "architecture/v1|" + "|".join(parts)

    def build(self) -> NeutralAtomArchitecture:
        """Instantiate the described preset (uncached)."""
        return preset(self.hardware, lattice_rows=self.lattice_rows,
                      spacing=self.spacing, num_atoms=self.num_atoms,
                      topology=self.topology, lattice_cols=self.lattice_cols,
                      spacing_y=self.spacing_y, zone_layout=self.zone_layout,
                      corridor_transit_um=self.corridor_transit_um)

    @classmethod
    def scaled(cls, hardware: str, scale: float, *,
               circuit_names: Sequence[str] = BENCHMARK_NAMES,
               min_size: int = 8, spacing: float = 3.0,
               topology: str = "square") -> "ArchitectureSpec":
        """Spec for the shared scaled-workload sizing rules of :mod:`repro.workloads`."""
        if hardware == "zoned":
            topology = "zoned"
        sizes = [scaled_register_size(name, scale, min_size=min_size)
                 for name in circuit_names]
        atoms = scaled_atom_count(scale, sizes)
        return cls(hardware=hardware,
                   lattice_rows=lattice_rows_for(atoms, topology),
                   num_atoms=atoms, spacing=spacing, topology=topology)


class ArchitectureCache:
    """Maps :class:`ArchitectureSpec` to built ``(architecture, connectivity)``."""

    def __init__(self) -> None:
        self._entries: Dict[ArchitectureSpec,
                            Tuple[NeutralAtomArchitecture, SiteConnectivity]] = {}
        self._lock = Lock()

    def get(self, spec: ArchitectureSpec
            ) -> Tuple[NeutralAtomArchitecture, SiteConnectivity]:
        """The built artifacts for ``spec``, constructing them on first use."""
        entry = self._entries.get(spec)
        if entry is None:
            with self._lock:
                entry = self._entries.get(spec)
                if entry is None:
                    architecture = spec.build()
                    entry = (architecture, SiteConnectivity(architecture))
                    self._entries[spec] = entry
        return entry

    def prewarm(self, specs: Iterable[ArchitectureSpec]) -> None:
        """Build every distinct spec now (before forking worker processes)."""
        for spec in specs:
            self.get(spec)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, spec: ArchitectureSpec) -> bool:
        return spec in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global cache; worker processes forked after a prewarm share its
#: contents with the parent via copy-on-write.
ARCHITECTURE_CACHE = ArchitectureCache()
