"""Keyed cache of immutable per-architecture artifacts.

Building a :class:`~repro.hardware.connectivity.SiteConnectivity` (dense
adjacency matrix, neighbourhood rings, hop-distance rows) is by far the most
expensive per-architecture setup cost.  The batch service keys architectures
by a hashable :class:`ArchitectureSpec` so that

* within one process every task targeting the same device shares one
  architecture + connectivity pair, and
* worker processes forked from a pre-warmed parent inherit the built
  artifacts through copy-on-write memory and never rebuild them.

The cache holds only immutable objects; sharing them between tasks (and,
via fork, between workers) is safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from threading import Lock
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..circuit.library import BENCHMARK_NAMES
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..hardware.presets import preset
from ..workloads import lattice_rows_for, scaled_atom_count, scaled_register_size

__all__ = ["ArchitectureSpec", "ArchitectureCache", "ARCHITECTURE_CACHE"]


def _built_device_identity(architecture: NeutralAtomArchitecture) -> str:
    """Canonical digest of the physical device an architecture represents.

    Covers everything compilation can observe: the topology's own
    ``cache_key()`` (family, dimensions, spacings, zones, corridor penalty),
    atom count, radii, every fidelity and duration, shuttling speed and
    coherence times.  Deliberately excludes the display ``name`` — two
    presets that build byte-identical physics are the same device.
    """
    parts = [
        f"topology={architecture.lattice.cache_key()!r}",
        f"num_atoms={architecture.num_atoms!r}",
        f"interaction_radius={architecture.interaction_radius!r}",
        f"restriction_radius={architecture.restriction_radius!r}",
        f"fidelities=({architecture.fidelities.cz!r},"
        f"{architecture.fidelities.single_qubit!r},"
        f"{architecture.fidelities.shuttling!r})",
        f"durations=({architecture.durations.single_qubit!r},"
        f"{architecture.durations.cz!r},"
        f"{architecture.durations.ccz!r},"
        f"{architecture.durations.cccz!r},"
        f"{architecture.durations.aod_activation!r},"
        f"{architecture.durations.aod_deactivation!r})",
        f"shuttling_speed={architecture.shuttling_speed!r}",
        f"t1={architecture.t1!r}",
        f"t2={architecture.t2!r}",
    ]
    canonical = "|".join(parts)
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# store_key() builds the device to derive its identity; memoise per spec so
# repeated key lookups (every store get/put) pay the construction once.
_BUILT_KEY_MEMO: Dict["ArchitectureSpec", str] = {}
_BUILT_KEY_LOCK = Lock()


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hashable, picklable description of a preset-based device.

    Tasks carry a spec instead of built objects so that they stay cheap to
    pickle across process boundaries; workers resolve the spec against their
    process-local :data:`ARCHITECTURE_CACHE`.

    The spec carries the **full topology identity** — family, dimensions,
    per-axis spacing, zone layout and corridor penalty — so two devices that
    agree on ``hardware`` and scale but differ in trap layout (e.g. a square
    and a zoned variant of the same preset) can never collide in the cache:
    the frozen-dataclass hash/equality covers every field, and
    ``__post_init__`` normalises the ``"zoned"`` preset so the two spellings
    of the same zoned device (``hardware="zoned"`` with the default topology
    vs an explicit ``topology="zoned"``) also coincide.
    """

    hardware: str
    lattice_rows: int = 15
    num_atoms: Optional[int] = None
    spacing: float = 3.0
    topology: str = "square"
    lattice_cols: Optional[int] = None
    spacing_y: Optional[float] = None
    zone_layout: Optional[Tuple[Tuple[str, int], ...]] = None
    corridor_transit_um: Optional[float] = None

    def __post_init__(self) -> None:
        # Normalise field types first: equal-valued specs must be identical
        # objects with identical store keys regardless of how a caller (or a
        # JSON wire payload, where whole floats arrive as ints) spelled the
        # numbers — repr(3) != repr(3.0) even though the specs compare equal.
        object.__setattr__(self, "hardware", str(self.hardware))
        object.__setattr__(self, "lattice_rows", int(self.lattice_rows))
        object.__setattr__(self, "spacing", float(self.spacing))
        object.__setattr__(self, "topology", str(self.topology))
        for name in ("num_atoms", "lattice_cols"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        for name in ("spacing_y", "corridor_transit_um"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, float(value))
        if self.spacing_y is not None and self.spacing_y == self.spacing:
            # A spelled-out isotropic pitch is the same device as leaving
            # ``spacing_y`` unset; keep one spec identity for it.  (Distinct
            # anisotropic grids keep both pitches in the identity — sharing
            # a *minimum* spacing never makes two specs collide.)
            object.__setattr__(self, "spacing_y", None)
        if self.topology == "rectangular" and self.spacing_y is None:
            # An isotropic rectangular grid is physically a square lattice;
            # fold the spelling so both resolve to one cache entry and one
            # store key (the topology cache_key applies the same fold for
            # direct build_topology callers).
            object.__setattr__(self, "topology", "square")
        if self.hardware == "zoned" and self.topology == "square":
            object.__setattr__(self, "topology", "zoned")
        if self.topology != "zoned" and (self.zone_layout is not None
                                         or self.corridor_transit_um is not None):
            # build_topology used to drop these silently for unzoned
            # families, letting unequal specs describe one physical device
            # (duplicate heavyweight cache entries, misleading sweeps).
            raise ValueError(
                f"topology {self.topology!r} has no zones; zone_layout and "
                f"corridor_transit_um apply to topology='zoned' only")
        if self.zone_layout is not None:
            # Normalise to nested tuples so equal layouts hash equally even
            # when callers pass lists.
            object.__setattr__(self, "zone_layout", tuple(
                (str(kind), int(rows)) for kind, rows in self.zone_layout))
        if self.topology == "zoned":
            # Spelling out a built-in default must alias with leaving it
            # unset — otherwise two specs describing the identical device
            # would hold duplicate (and heavyweight) cache entries.
            if self.corridor_transit_um == self.spacing:
                object.__setattr__(self, "corridor_transit_um", None)
            if self.zone_layout is not None and self.lattice_rows >= 3:
                from ..hardware.topology import banded_zone_layout
                default = tuple((zone.band_kind, zone.rows)
                                for zone in banded_zone_layout(self.lattice_rows))
                if self.zone_layout == default:
                    object.__setattr__(self, "zone_layout", None)

    def store_key(self) -> str:
        """Canonical string identifying the *built* device this spec yields.

        The persistent result store (:mod:`repro.store`) keys compiled
        artifacts on this string.  Since v2 (repro 1.2.0) the key is derived
        from the **built device identity** — topology ``cache_key()``, atom
        count, radii, fidelities, durations, speeds and coherence times —
        rather than the raw spec fields, so distinct spellings of one
        physical device (e.g. ``num_atoms=None`` versus spelling out the
        preset's computed default) normalise to a single key and share
        store entries.  Presets with different physics still differ in the
        identity string, and the emitted op stream is untouched — only the
        addressing changed, which is why the schema bump rode the 1.2.0
        version bump (old-version entries simply become unreachable).

        Stable across processes: the identity is built from normalised
        field values rendered with ``repr`` in a fixed order, never from
        dict order or hashes of live objects.
        """
        memo = _BUILT_KEY_MEMO.get(self)
        if memo is not None:
            return memo
        key = "architecture/v2|" + _built_device_identity(self.build())
        with _BUILT_KEY_LOCK:
            _BUILT_KEY_MEMO[self] = key
        return key

    def build(self) -> NeutralAtomArchitecture:
        """Instantiate the described preset (uncached)."""
        return preset(self.hardware, lattice_rows=self.lattice_rows,
                      spacing=self.spacing, num_atoms=self.num_atoms,
                      topology=self.topology, lattice_cols=self.lattice_cols,
                      spacing_y=self.spacing_y, zone_layout=self.zone_layout,
                      corridor_transit_um=self.corridor_transit_um)

    @classmethod
    def scaled(cls, hardware: str, scale: float, *,
               circuit_names: Sequence[str] = BENCHMARK_NAMES,
               min_size: int = 8, spacing: float = 3.0,
               topology: str = "square") -> "ArchitectureSpec":
        """Spec for the shared scaled-workload sizing rules of :mod:`repro.workloads`."""
        if hardware == "zoned":
            topology = "zoned"
        sizes = [scaled_register_size(name, scale, min_size=min_size)
                 for name in circuit_names]
        atoms = scaled_atom_count(scale, sizes)
        return cls(hardware=hardware,
                   lattice_rows=lattice_rows_for(atoms, topology),
                   num_atoms=atoms, spacing=spacing, topology=topology)


class ArchitectureCache:
    """Maps :class:`ArchitectureSpec` to built ``(architecture, connectivity)``."""

    def __init__(self) -> None:
        self._entries: Dict[ArchitectureSpec,
                            Tuple[NeutralAtomArchitecture, SiteConnectivity]] = {}
        self._lock = Lock()

    def get(self, spec: ArchitectureSpec
            ) -> Tuple[NeutralAtomArchitecture, SiteConnectivity]:
        """The built artifacts for ``spec``, constructing them on first use."""
        entry = self._entries.get(spec)
        if entry is None:
            with self._lock:
                entry = self._entries.get(spec)
                if entry is None:
                    architecture = spec.build()
                    entry = (architecture, SiteConnectivity(architecture))
                    self._entries[spec] = entry
        return entry

    def prewarm(self, specs: Iterable[ArchitectureSpec]) -> None:
        """Build every distinct spec now (before forking worker processes)."""
        for spec in specs:
            self.get(spec)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, spec: ArchitectureSpec) -> bool:
        return spec in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global cache; worker processes forked after a prewarm share its
#: contents with the parent via copy-on-write.
ARCHITECTURE_CACHE = ArchitectureCache()
