"""Keyed cache of immutable per-architecture artifacts.

Building a :class:`~repro.hardware.connectivity.SiteConnectivity` (dense
adjacency matrix, neighbourhood rings, hop-distance rows) is by far the most
expensive per-architecture setup cost.  The batch service keys architectures
by a hashable :class:`ArchitectureSpec` so that

* within one process every task targeting the same device shares one
  architecture + connectivity pair, and
* worker processes forked from a pre-warmed parent inherit the built
  artifacts through copy-on-write memory and never rebuild them.

The cache holds only immutable objects; sharing them between tasks (and,
via fork, between workers) is safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..circuit.library import BENCHMARK_NAMES
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..hardware.presets import preset
from ..workloads import lattice_rows_for, scaled_atom_count, scaled_register_size

__all__ = ["ArchitectureSpec", "ArchitectureCache", "ARCHITECTURE_CACHE"]


@dataclass(frozen=True)
class ArchitectureSpec:
    """Hashable, picklable description of a preset-based device.

    Tasks carry a spec instead of built objects so that they stay cheap to
    pickle across process boundaries; workers resolve the spec against their
    process-local :data:`ARCHITECTURE_CACHE`.
    """

    hardware: str
    lattice_rows: int = 15
    num_atoms: Optional[int] = None
    spacing: float = 3.0

    def build(self) -> NeutralAtomArchitecture:
        """Instantiate the described preset (uncached)."""
        return preset(self.hardware, lattice_rows=self.lattice_rows,
                      spacing=self.spacing, num_atoms=self.num_atoms)

    @classmethod
    def scaled(cls, hardware: str, scale: float, *,
               circuit_names: Sequence[str] = BENCHMARK_NAMES,
               min_size: int = 8, spacing: float = 3.0) -> "ArchitectureSpec":
        """Spec for the shared scaled-workload sizing rules of :mod:`repro.workloads`."""
        sizes = [scaled_register_size(name, scale, min_size=min_size)
                 for name in circuit_names]
        atoms = scaled_atom_count(scale, sizes)
        return cls(hardware=hardware, lattice_rows=lattice_rows_for(atoms),
                   num_atoms=atoms, spacing=spacing)


class ArchitectureCache:
    """Maps :class:`ArchitectureSpec` to built ``(architecture, connectivity)``."""

    def __init__(self) -> None:
        self._entries: Dict[ArchitectureSpec,
                            Tuple[NeutralAtomArchitecture, SiteConnectivity]] = {}
        self._lock = Lock()

    def get(self, spec: ArchitectureSpec
            ) -> Tuple[NeutralAtomArchitecture, SiteConnectivity]:
        """The built artifacts for ``spec``, constructing them on first use."""
        entry = self._entries.get(spec)
        if entry is None:
            with self._lock:
                entry = self._entries.get(spec)
                if entry is None:
                    architecture = spec.build()
                    entry = (architecture, SiteConnectivity(architecture))
                    self._entries[spec] = entry
        return entry

    def prewarm(self, specs: Iterable[ArchitectureSpec]) -> None:
        """Build every distinct spec now (before forking worker processes)."""
        for spec in specs:
            self.get(spec)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __contains__(self, spec: ArchitectureSpec) -> bool:
        return spec in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global cache; worker processes forked after a prewarm share its
#: contents with the parent via copy-on-write.
ARCHITECTURE_CACHE = ArchitectureCache()
