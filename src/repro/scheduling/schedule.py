"""Schedule data structures.

The scheduler lowers a mapped operation stream to timed hardware operations.
Each :class:`ScheduledOperation` records its start time, duration, the atoms
it occupies, the trap sites involved and the operation fidelity.  The
:class:`Schedule` aggregates them and derives the quantities used by the
evaluation: total circuit time ``T``, the paper's idle time
``t_idle = n * T - sum_O t_O`` and the per-qubit busy/idle breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ScheduledOperation", "Schedule", "OperationKind"]


class OperationKind:
    """Classification of scheduled hardware operations."""

    SINGLE_QUBIT = "single_qubit"
    ENTANGLING = "entangling"
    SHUTTLE = "shuttle"
    MEASURE = "measure"

    ALL = (SINGLE_QUBIT, ENTANGLING, SHUTTLE, MEASURE)


@dataclass(frozen=True)
class ScheduledOperation:
    """One timed hardware operation.

    Attributes
    ----------
    kind:
        One of :class:`OperationKind`.
    name:
        Human-readable mnemonic (``"h"``, ``"cz"``, ``"ccz"``, ``"move"``...).
    start / duration:
        Start time and duration in microseconds.
    atoms:
        Physical atoms occupied for the duration.
    sites:
        Trap sites involved (for entangling gates: where the atoms sit; for
        moves: source and destination).
    fidelity:
        Average operation fidelity contributing to the success probability.
    """

    kind: str
    name: str
    start: float
    duration: float
    atoms: Tuple[int, ...]
    sites: Tuple[int, ...] = ()
    fidelity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OperationKind.ALL:
            raise ValueError(f"unknown operation kind {self.kind!r}")
        if self.duration < 0 or self.start < 0:
            raise ValueError("times must be non-negative")
        if not 0.0 < self.fidelity <= 1.0:
            raise ValueError("fidelity must lie in (0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Schedule:
    """Timed realisation of a mapped circuit."""

    num_circuit_qubits: int
    operations: List[ScheduledOperation] = field(default_factory=list)

    def append(self, operation: ScheduledOperation) -> None:
        self.operations.append(operation)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Total circuit execution time ``T`` in microseconds."""
        return max((op.end for op in self.operations), default=0.0)

    def total_operation_time(self) -> float:
        """``sum_O t_O`` — the summed duration of every operation."""
        return sum(op.duration for op in self.operations)

    def total_busy_time(self) -> float:
        """Summed busy time weighted by the number of atoms each operation occupies."""
        return sum(op.duration * len(op.atoms) for op in self.operations)

    def idle_time(self) -> float:
        """The paper's idle time ``t_idle = n * T - sum_O t_O`` (Eq. 1).

        Negative values (possible for highly parallel circuits where the
        operation count outweighs the small qubit register) are clamped to
        zero, as an idle time below zero has no physical meaning.
        """
        return max(self.num_circuit_qubits * self.makespan - self.total_operation_time(), 0.0)

    def per_qubit_idle_time(self) -> float:
        """Alternative idle measure: ``sum_q (T - busy_q)`` over circuit qubits."""
        return max(self.num_circuit_qubits * self.makespan - self.total_busy_time(), 0.0)

    def count_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for op in self.operations:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def count_entangling_by_width(self) -> Dict[int, int]:
        """Histogram of entangling-gate widths (2 = CZ, 3 = CCZ, ...)."""
        counts: Dict[int, int] = {}
        for op in self.operations:
            if op.kind == OperationKind.ENTANGLING:
                counts[len(op.atoms)] = counts.get(len(op.atoms), 0) + 1
        return counts

    def num_cz_gates(self) -> int:
        """Number of two-qubit CZ gates in the schedule."""
        return self.count_entangling_by_width().get(2, 0)

    def num_shuttle_operations(self) -> int:
        return self.count_by_kind().get(OperationKind.SHUTTLE, 0)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify_no_atom_overlap(self) -> None:
        """Raise if any atom takes part in two operations at the same time."""
        per_atom: Dict[int, List[Tuple[float, float]]] = {}
        for op in self.operations:
            for atom in op.atoms:
                per_atom.setdefault(atom, []).append((op.start, op.end))
        for atom, intervals in per_atom.items():
            intervals.sort()
            for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
                if start_b < end_a - 1e-9:
                    raise AssertionError(
                        f"atom {atom} is double-booked: [{start_a}, {end_a}) overlaps "
                        f"[{start_b}, ...)")
