"""ASAP scheduler with neutral-atom parallelism constraints (process block (5)).

The scheduler lowers a mapped operation stream — or a plain circuit, for the
reference schedule of the unmapped input — to timed hardware operations:

* single-qubit gates become individual ``U3`` pulses,
* ``C^{m-1}Z`` gates become one Rydberg pulse whose duration depends on the
  gate width (Table 1c),
* inserted SWAP gates are decomposed into their native three-CZ / four-H
  sequence before scheduling,
* shuttling moves are packed into AOD batches (respecting the no-crossing
  constraint) and charged activation + travel + deactivation time.

Two hardware constraints shape the timing:

1. an atom can take part in at most one operation at a time, and
2. two entangling gates may only run simultaneously if every atom of one gate
   keeps at least the restriction radius ``r_restr`` from every atom of the
   other (Section 2.1) — otherwise the later gate is delayed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import Gate, GateKind
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..mapping.result import CircuitGateOp, MappingResult, ShuttleOp, SwapOp
from ..shuttling.aod import group_moves, schedule_batch
from ..shuttling.moves import Move
from .schedule import OperationKind, Schedule, ScheduledOperation

__all__ = ["Scheduler"]

_EPSILON = 1e-9


class _EntanglingInterval:
    """Book-keeping entry for the restriction-radius constraint."""

    __slots__ = ("start", "end", "sites", "blocked")

    def __init__(self, start: float, end: float, sites: Tuple[int, ...],
                 blocked: Set[int]) -> None:
        self.start = start
        self.end = end
        self.sites = sites
        self.blocked = blocked


class Scheduler:
    """ASAP list scheduler for neutral-atom hardware operations."""

    def __init__(self, architecture: NeutralAtomArchitecture,
                 connectivity: Optional[SiteConnectivity] = None) -> None:
        self.architecture = architecture
        self.connectivity = connectivity or SiteConnectivity(architecture)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def schedule_result(self, result: MappingResult) -> Schedule:
        """Schedule a mapped operation stream."""
        schedule = Schedule(num_circuit_qubits=result.circuit.num_qubits)
        ready: Dict[int, float] = {}
        intervals: List[_EntanglingInterval] = []

        pending_moves: List[Tuple[Move, int]] = []  # (move, atom) buffered for batching

        for operation in result.operations:
            if isinstance(operation, ShuttleOp):
                pending_moves.append((operation.move, operation.move.atom))
                continue
            if pending_moves:
                self._flush_moves(schedule, ready, pending_moves)
                pending_moves = []
            if isinstance(operation, CircuitGateOp):
                self._schedule_gate(schedule, ready, intervals, operation.gate,
                                    operation.atoms, operation.sites)
            elif isinstance(operation, SwapOp):
                self._schedule_swap(schedule, ready, intervals, operation)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown mapped operation {operation!r}")
        if pending_moves:
            self._flush_moves(schedule, ready, pending_moves)
        return schedule

    def schedule_circuit(self, circuit: QuantumCircuit,
                         sites: Optional[Sequence[int]] = None) -> Schedule:
        """Schedule an (unmapped) circuit with the identity placement.

        This produces the reference schedule the evaluation compares against:
        connectivity is not enforced — every gate executes where its qubits
        sit — but atom exclusivity and the restriction-radius constraint are.
        """
        placement = list(sites) if sites is not None else list(range(circuit.num_qubits))
        if len(placement) < circuit.num_qubits:
            raise ValueError("placement must cover every circuit qubit")
        schedule = Schedule(num_circuit_qubits=circuit.num_qubits)
        ready: Dict[int, float] = {}
        intervals: List[_EntanglingInterval] = []
        for gate in circuit:
            if gate.kind == GateKind.BARRIER:
                self._schedule_barrier(ready, gate)
                continue
            atoms = tuple(gate.qubits)
            gate_sites = tuple(placement[q] for q in gate.qubits)
            self._schedule_gate(schedule, ready, intervals, gate, atoms, gate_sites)
        return schedule

    # ------------------------------------------------------------------
    # Gate scheduling
    # ------------------------------------------------------------------
    def _schedule_barrier(self, ready: Dict[int, float], gate: Gate) -> None:
        fence = max((ready.get(q, 0.0) for q in gate.qubits), default=0.0)
        for qubit in gate.qubits:
            ready[qubit] = fence

    def _schedule_gate(self, schedule: Schedule, ready: Dict[int, float],
                       intervals: List[_EntanglingInterval], gate: Gate,
                       atoms: Tuple[int, ...], sites: Tuple[int, ...]) -> None:
        arch = self.architecture
        if gate.kind == GateKind.MEASURE:
            start = ready.get(atoms[0], 0.0)
            duration = arch.durations.single_qubit
            schedule.append(ScheduledOperation(
                kind=OperationKind.MEASURE, name="measure", start=start,
                duration=duration, atoms=atoms, sites=sites, fidelity=1.0))
            ready[atoms[0]] = start + duration
            return
        if gate.is_single_qubit:
            start = ready.get(atoms[0], 0.0)
            duration = arch.durations.single_qubit
            schedule.append(ScheduledOperation(
                kind=OperationKind.SINGLE_QUBIT, name=gate.name, start=start,
                duration=duration, atoms=atoms, sites=sites,
                fidelity=arch.fidelities.single_qubit))
            ready[atoms[0]] = start + duration
            return
        if gate.kind == GateKind.SWAP:
            # A bare SWAP in the input circuit: schedule its native decomposition.
            self._schedule_native_swap(schedule, ready, intervals, atoms, sites)
            return
        # Multi-controlled Z (and CX gates that were not decomposed: they take
        # the same Rydberg pulse plus the two Hadamards already in the stream).
        width = gate.num_qubits
        duration = arch.durations.entangling(width)
        fidelity = arch.fidelities.entangling(width)
        start = self._entangling_start(ready, intervals, atoms, sites, duration)
        schedule.append(ScheduledOperation(
            kind=OperationKind.ENTANGLING, name=gate.name, start=start,
            duration=duration, atoms=atoms, sites=sites, fidelity=fidelity))
        self._commit_entangling(ready, intervals, atoms, sites, start, duration)

    def _schedule_swap(self, schedule: Schedule, ready: Dict[int, float],
                       intervals: List[_EntanglingInterval], operation: SwapOp) -> None:
        atoms = (operation.atom_a, operation.atom_b)
        sites = (operation.site_a, operation.site_b)
        self._schedule_native_swap(schedule, ready, intervals, atoms, sites)

    def _schedule_native_swap(self, schedule: Schedule, ready: Dict[int, float],
                              intervals: List[_EntanglingInterval],
                              atoms: Tuple[int, ...], sites: Tuple[int, ...]) -> None:
        """Emit the native 3-CZ + 6-H realisation of one SWAP."""
        arch = self.architecture
        atom_a, atom_b = atoms
        # Pulse sequence mirrors circuit.decompose.swap_decomposition.
        sequence = [
            ("h", (atom_b,)),
            ("cz", (atom_a, atom_b)),
            ("h", (atom_b,)),
            ("h", (atom_a,)),
            ("cz", (atom_b, atom_a)),
            ("h", (atom_a,)),
            ("h", (atom_b,)),
            ("cz", (atom_a, atom_b)),
            ("h", (atom_b,)),
        ]
        site_of = {atom_a: sites[0], atom_b: sites[1]}
        for name, op_atoms in sequence:
            op_sites = tuple(site_of[a] for a in op_atoms)
            if name == "h":
                start = ready.get(op_atoms[0], 0.0)
                duration = arch.durations.single_qubit
                schedule.append(ScheduledOperation(
                    kind=OperationKind.SINGLE_QUBIT, name=name, start=start,
                    duration=duration, atoms=op_atoms, sites=op_sites,
                    fidelity=arch.fidelities.single_qubit))
                ready[op_atoms[0]] = start + duration
            else:
                duration = arch.durations.cz
                start = self._entangling_start(ready, intervals, op_atoms, op_sites, duration)
                schedule.append(ScheduledOperation(
                    kind=OperationKind.ENTANGLING, name=name, start=start,
                    duration=duration, atoms=op_atoms, sites=op_sites,
                    fidelity=arch.fidelities.cz))
                self._commit_entangling(ready, intervals, op_atoms, op_sites, start, duration)

    # ------------------------------------------------------------------
    # Restriction-radius handling
    # ------------------------------------------------------------------
    def _blocked_sites(self, sites: Tuple[int, ...]) -> Set[int]:
        blocked: Set[int] = set(sites)
        for site in sites:
            blocked.update(self.connectivity.restriction_neighbours(site))
        return blocked

    def _entangling_start(self, ready: Dict[int, float],
                          intervals: List[_EntanglingInterval],
                          atoms: Tuple[int, ...], sites: Tuple[int, ...],
                          duration: float) -> float:
        """Earliest start compatible with atom readiness and the restriction radius."""
        start = max((ready.get(atom, 0.0) for atom in atoms), default=0.0)
        blocked = self._blocked_sites(sites)
        site_set = set(sites)
        while True:
            conflict_end: Optional[float] = None
            for interval in intervals:
                if interval.end <= start + _EPSILON or interval.start >= start + duration - _EPSILON:
                    continue
                if site_set & interval.blocked or interval_sites_blocked(interval, blocked):
                    if conflict_end is None or interval.end > conflict_end:
                        conflict_end = interval.end
            if conflict_end is None:
                return start
            start = conflict_end

    @staticmethod
    def _prune_intervals(intervals: List[_EntanglingInterval], horizon: float) -> None:
        """Drop intervals that ended long before the scheduling horizon."""
        if len(intervals) > 256:
            intervals[:] = [iv for iv in intervals if iv.end > horizon - 1e3]

    def _commit_entangling(self, ready: Dict[int, float],
                           intervals: List[_EntanglingInterval],
                           atoms: Tuple[int, ...], sites: Tuple[int, ...],
                           start: float, duration: float) -> None:
        for atom in atoms:
            ready[atom] = start + duration
        intervals.append(_EntanglingInterval(start, start + duration, sites,
                                             self._blocked_sites(sites)))
        self._prune_intervals(intervals, start)

    # ------------------------------------------------------------------
    # Shuttling
    # ------------------------------------------------------------------
    def _flush_moves(self, schedule: Schedule, ready: Dict[int, float],
                     pending: List[Tuple[Move, int]]) -> None:
        """Schedule a buffered run of consecutive moves as AOD batches."""
        moves = [move for move, _atom in pending]
        for batch in group_moves(moves):
            batch_schedule = schedule_batch(batch, self.architecture)
            atoms = tuple(move.atom for move in batch)
            start = max((ready.get(atom, 0.0) for atom in atoms), default=0.0)
            duration = batch_schedule.duration
            fidelity = self.architecture.fidelities.shuttling ** len(batch)
            sites = tuple(site for move in batch for site in (move.source, move.destination))
            schedule.append(ScheduledOperation(
                kind=OperationKind.SHUTTLE, name="move", start=start,
                duration=duration, atoms=atoms, sites=sites,
                fidelity=max(fidelity, 1e-12)))
            for atom in atoms:
                ready[atom] = start + duration


def interval_sites_blocked(interval: _EntanglingInterval, blocked: Set[int]) -> bool:
    """True if any site of ``interval`` falls inside the ``blocked`` zone."""
    return any(site in blocked for site in interval.sites)
