"""Hardware-operation scheduling: timed lowering of mapped circuits."""

from .schedule import OperationKind, Schedule, ScheduledOperation
from .scheduler import Scheduler

__all__ = ["Scheduler", "Schedule", "ScheduledOperation", "OperationKind"]
