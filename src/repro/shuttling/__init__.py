"""Shuttling substrate: atom moves, move chains, and AOD batch scheduling."""

from .aod import (
    AODBatchSchedule,
    AODInstruction,
    ghost_spot_positions,
    group_moves,
    moves_compatible,
    schedule_batch,
    schedule_moves,
)
from .moves import Move, MoveChain

__all__ = [
    "Move",
    "MoveChain",
    "AODInstruction",
    "AODBatchSchedule",
    "moves_compatible",
    "group_moves",
    "schedule_batch",
    "schedule_moves",
    "ghost_spot_positions",
]
