"""Shuttling move primitives.

A :class:`Move` relocates one physical atom from its current trap site to a
free destination site.  The shuttling-based router (Section 3.3.2) works in
terms of *move chains*: an ordered list of moves that, once executed, makes a
particular gate executable.  A chain contains at most ``2 (m - 1)`` moves for
an ``m``-qubit gate — in the worst case every non-anchor gate qubit needs a
preceding *move-away* of a blocking atom plus its own direct move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Move", "MoveChain"]


@dataclass(frozen=True)
class Move:
    """Relocation of one atom between two trap sites.

    Attributes
    ----------
    atom:
        Physical-qubit (atom) index being moved.
    source:
        Trap-site index the atom starts from.
    destination:
        Trap-site index the atom is placed into (must be free when executed).
    source_position / destination_position:
        Physical ``(x, y)`` coordinates in micrometres, cached for AOD
        scheduling so the lattice does not need to be consulted again.
    is_move_away:
        True if this move only clears a site for a subsequent move in the
        same chain (the "move-away" case of Example 5).
    travel_distance_um:
        Travel distance including topology penalties (e.g. zone-corridor
        transit on a :class:`~repro.hardware.topology.ZonedTopology`).
        ``None`` — the default, and the only value unzoned topologies ever
        set — means the plain rectangular metric of the endpoint positions.
    """

    atom: int
    source: int
    destination: int
    source_position: Tuple[float, float]
    destination_position: Tuple[float, float]
    is_move_away: bool = False
    travel_distance_um: Optional[float] = None

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("a move must change the trap site")

    @property
    def displacement(self) -> Tuple[float, float]:
        """``(dx, dy)`` displacement in micrometres."""
        return (self.destination_position[0] - self.source_position[0],
                self.destination_position[1] - self.source_position[1])

    @property
    def rectangular_distance(self) -> float:
        """Travel distance ``s(M)`` in micrometres.

        The Manhattan metric of the endpoint positions, unless the
        constructing topology recorded a penalised travel distance
        (``travel_distance_um``, zone corridors) — every duration and cost
        consumer then charges the penalty consistently.
        """
        if self.travel_distance_um is not None:
            return self.travel_distance_um
        dx, dy = self.displacement
        return abs(dx) + abs(dy)

    @property
    def euclidean_distance(self) -> float:
        dx, dy = self.displacement
        return (dx * dx + dy * dy) ** 0.5

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flavour = "move-away" if self.is_move_away else "move"
        return f"{flavour}(atom {self.atom}: site {self.source} -> {self.destination})"


@dataclass
class MoveChain:
    """Ordered list of moves that makes one gate executable.

    Attributes
    ----------
    moves:
        The moves in execution order (move-aways precede the direct move that
        needs the freed site).
    gate_index:
        Index of the gate (in the circuit DAG) this chain serves, if known.
    """

    moves: List[Move] = field(default_factory=list)
    gate_index: Optional[int] = None

    def __len__(self) -> int:
        return len(self.moves)

    def __iter__(self):
        return iter(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)

    @property
    def total_rectangular_distance(self) -> float:
        """Sum of the rectangular travel distances of all moves."""
        return sum(move.rectangular_distance for move in self.moves)

    @property
    def num_move_aways(self) -> int:
        return sum(1 for move in self.moves if move.is_move_away)

    def atoms(self) -> List[int]:
        """Atoms touched by the chain, in move order."""
        return [move.atom for move in self.moves]

    def validate(self, max_gate_width: Optional[int] = None,
                 extra_moves: int = 0) -> None:
        """Check the structural invariants of a chain.

        * no atom is moved twice within the chain,
        * a move's destination is not the source of an *earlier* move (that
          site was only freed afterwards) unless the earlier move freed it,
        * the chain length respects the ``2 (m - 1)`` bound if the gate width
          is supplied; ``extra_moves`` widens the bound for topologies that
          may prepend relocation moves (a zoned anchor stranded in storage
          first shuttles into an entangling zone).
        """
        seen_atoms = set()
        freed_sites = set()
        occupied_destinations = set()
        for move in self.moves:
            if move.atom in seen_atoms:
                raise ValueError(f"atom {move.atom} moved twice in one chain")
            seen_atoms.add(move.atom)
            if move.destination in occupied_destinations:
                raise ValueError(f"two moves target site {move.destination}")
            occupied_destinations.add(move.destination)
            freed_sites.add(move.source)
        if max_gate_width is not None:
            bound = 2 * (max_gate_width - 1) + extra_moves
            if len(self.moves) > bound:
                raise ValueError(
                    f"chain of length {len(self.moves)} exceeds the 2(m-1) = {bound} bound")
