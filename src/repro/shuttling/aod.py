"""Acousto-optic deflector (AOD) operation model.

The AOD realises atom moves by activating a set of row (y) and column (x)
laser coordinates, translating them, and deactivating them again
(Section 2.1).  Two hardware constraints govern which moves can share one
AOD batch:

1. **No crossings** — activated rows and columns never cross, so the relative
   ordering of the moved atoms along x and along y must be the same before
   and after the move (and atoms sharing a row/column coordinate must keep
   sharing or keep their ordering strictly).
2. **Ghost spots** — every intersection of an activated row and column is a
   trap.  Loading atoms sequentially with small offset moves (Example 2)
   avoids disturbing stored atoms, at the price of one activation step per
   loading group.

This module provides:

* :func:`moves_compatible` — the pairwise no-crossing test,
* :func:`group_moves` — greedy partition of a move list into parallel batches,
* :class:`AODInstruction` / :func:`schedule_batch` — lowering of a batch to
  native activate / shift / deactivate instructions with a duration model
  matching the paper's cost function (activation + rectangular travel at
  speed ``v`` + deactivation),
* :func:`ghost_spot_positions` — the intersections a batch creates, used by
  tests to verify the sequential-loading legality argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..hardware.architecture import NeutralAtomArchitecture
from .moves import Move

__all__ = [
    "AODInstruction",
    "AODBatchSchedule",
    "moves_compatible",
    "group_moves",
    "schedule_batch",
    "schedule_moves",
    "ghost_spot_positions",
]

_EPSILON = 1e-9


# ----------------------------------------------------------------------
# Compatibility / batching
# ----------------------------------------------------------------------
def _ordering_preserved(a_start: float, b_start: float, a_end: float, b_end: float) -> bool:
    """True if the relative ordering along one axis is preserved by the move.

    Coinciding coordinates are allowed as long as they do not have to split
    into opposite orders (coincident -> coincident or strictly ordered both
    before and after with the same sign).
    """
    start_delta = a_start - b_start
    end_delta = a_end - b_end
    if abs(start_delta) < _EPSILON and abs(end_delta) < _EPSILON:
        return True
    if abs(start_delta) < _EPSILON or abs(end_delta) < _EPSILON:
        # Splitting apart or merging together is fine; crossing is not, and a
        # merge/split cannot encode a crossing.
        return True
    return (start_delta > 0) == (end_delta > 0)


def moves_compatible(move_a: Move, move_b: Move) -> bool:
    """True if the two moves can be executed in the same AOD batch.

    Both moves must involve distinct atoms, distinct destinations, and must
    preserve the relative ordering of the atoms along the x and y axes
    (no row/column crossings).
    """
    if move_a.atom == move_b.atom:
        return False
    if move_a.destination == move_b.destination:
        return False
    if move_a.destination == move_b.source or move_b.destination == move_a.source:
        # One move needs the site the other only frees within the same batch;
        # executing them simultaneously is not well defined.
        return False
    ax0, ay0 = move_a.source_position
    ax1, ay1 = move_a.destination_position
    bx0, by0 = move_b.source_position
    bx1, by1 = move_b.destination_position
    return (_ordering_preserved(ax0, bx0, ax1, bx1)
            and _ordering_preserved(ay0, by0, ay1, by1))


def group_moves(moves: Sequence[Move]) -> List[List[Move]]:
    """Greedily partition ``moves`` into batches of mutually compatible moves.

    The order of the input is respected: each move joins the earliest batch it
    is compatible with, otherwise it opens a new batch.  This mirrors the
    scheduling pass of process block (5), which packs as many moves as the
    AOD constraints allow into each rearrangement step.
    """
    batches: List[List[Move]] = []
    for move in moves:
        placed = False
        for batch in batches:
            if all(moves_compatible(move, other) for other in batch):
                batch.append(move)
                placed = True
                break
        if not placed:
            batches.append([move])
    return batches


# ----------------------------------------------------------------------
# Lowering to native AOD instructions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AODInstruction:
    """One native AOD step.

    ``kind`` is one of ``"activate"``, ``"shift"``, ``"deactivate"``.  For
    activations and deactivations, ``rows`` and ``columns`` list the affected
    AOD coordinates (in micrometres); for shifts, ``delta`` carries the
    ``(dx, dy)`` translation applied to the whole activated grid.
    """

    kind: str
    rows: Tuple[float, ...] = ()
    columns: Tuple[float, ...] = ()
    delta: Tuple[float, float] = (0.0, 0.0)
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("activate", "shift", "deactivate"):
            raise ValueError(f"unknown AOD instruction kind {self.kind!r}")


@dataclass
class AODBatchSchedule:
    """Schedule of one AOD batch: instructions, moved atoms, and total duration."""

    moves: List[Move]
    instructions: List[AODInstruction] = field(default_factory=list)
    duration: float = 0.0

    @property
    def num_atoms(self) -> int:
        return len(self.moves)


def ghost_spot_positions(moves: Sequence[Move]) -> Set[Tuple[float, float]]:
    """Intersections of the activated rows and columns that carry no atom.

    Sequentially loading the atoms with offset moves (Example 2) means these
    ghost spots only ever hover over inter-site regions; the function exposes
    them so tests and visualisations can verify that claim for a given batch.
    """
    rows = sorted({move.source_position[1] for move in moves})
    columns = sorted({move.source_position[0] for move in moves})
    occupied = {move.source_position for move in moves}
    ghosts = set()
    for y in rows:
        for x in columns:
            if (x, y) not in occupied:
                ghosts.add((x, y))
    return ghosts


def schedule_batch(moves: Sequence[Move],
                   architecture: NeutralAtomArchitecture) -> AODBatchSchedule:
    """Lower one batch of mutually compatible moves to AOD instructions.

    Duration model (matching the ``Delta T`` cases of the shuttling cost
    function): one activation per distinct loading group, one deactivation,
    and a travel time given by the largest rectangular displacement in the
    batch divided by the shuttling speed.  Loading groups are the distinct
    source rows — atoms in the same row load simultaneously, atoms in
    different rows load sequentially to keep ghost spots away from stored
    atoms.  The first loading group is charged the full activation time; each
    additional group adds a fixed 10% of the activation time, modelling the
    short offset moves of Example 2.
    """
    moves = list(moves)
    if not moves:
        return AODBatchSchedule(moves=[], instructions=[], duration=0.0)
    for i, move_a in enumerate(moves):
        for move_b in moves[i + 1:]:
            if not moves_compatible(move_a, move_b):
                raise ValueError(
                    f"moves {move_a} and {move_b} violate the AOD ordering constraint")

    durations = architecture.durations
    source_rows = tuple(sorted({move.source_position[1] for move in moves}))
    source_columns = tuple(sorted({move.source_position[0] for move in moves}))

    loading_groups = len(source_rows)
    activation_time = durations.aod_activation * (1.0 + 0.1 * (loading_groups - 1))
    travel_distance = max(move.rectangular_distance for move in moves)
    travel_time = architecture.shuttle_move_duration(travel_distance)
    deactivation_time = durations.aod_deactivation

    instructions = [
        AODInstruction("activate", rows=source_rows, columns=source_columns,
                       duration=activation_time),
    ]
    # Decompose the batch translation into the per-axis shifts; every move in
    # a compatible batch keeps the activated grid rigidly ordered, so the
    # instruction stream records the enveloping displacement.
    max_dx = max((move.displacement[0] for move in moves), key=abs, default=0.0)
    max_dy = max((move.displacement[1] for move in moves), key=abs, default=0.0)
    instructions.append(AODInstruction("shift", delta=(max_dx, max_dy),
                                       duration=travel_time))
    destination_rows = tuple(sorted({move.destination_position[1] for move in moves}))
    destination_columns = tuple(sorted({move.destination_position[0] for move in moves}))
    instructions.append(AODInstruction("deactivate", rows=destination_rows,
                                       columns=destination_columns,
                                       duration=deactivation_time))

    total = activation_time + travel_time + deactivation_time
    return AODBatchSchedule(moves=moves, instructions=instructions, duration=total)


def schedule_moves(moves: Sequence[Move],
                   architecture: NeutralAtomArchitecture) -> List[AODBatchSchedule]:
    """Group ``moves`` into compatible batches and lower each to instructions."""
    return [schedule_batch(batch, architecture) for batch in group_moves(moves)]
