"""Circuit breaker over pool-level failures (crash / deadline / unavailable).

Classic three-state breaker:

* **closed** — requests flow to the pool; consecutive pool-level failures
  are counted, successes reset the count.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  opens for ``cooldown_s``: requests are diverted (degraded serial path or
  shed) instead of queueing onto a pool that is demonstrably unhealthy.
* **half-open** — once the cooldown elapses exactly one probe request is
  let through; its success closes the breaker, its failure re-opens it for
  another cooldown.

Only *pool-level* failures feed the breaker.  A compile that raises on its
own input is a property of the request, not of the pool, and must never
push the gateway into degraded mode.
"""

from __future__ import annotations

import itertools
import time
from threading import Lock
from typing import Callable, Dict

from ..telemetry.registry import get_registry

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the state (ordered by severity for dashboards).
_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

_BREAKER_IDS = itertools.count(1)


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    ``clock`` is injectable so tests can step time instead of sleeping.
    Thread-safe: the gateway calls it from the event loop, health probes
    may call it from other threads.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._times_opened = 0
        self._probe_in_flight = False
        registry = get_registry()
        labels = {"instance": f"breaker-{next(_BREAKER_IDS)}"}
        self._transitions = registry.counter(
            "repro_breaker_transitions_total",
            help="Circuit-breaker state transitions", labels=labels)
        self._opened_counter = registry.counter(
            "repro_breaker_opened_total",
            help="Times the circuit breaker opened", labels=labels)
        self._state_gauge = registry.gauge(
            "repro_breaker_state",
            help="Breaker state (0=closed, 1=half_open, 2=open)",
            labels=labels)

    def _set_state(self, state: str) -> None:
        """Record a state change in the registry (call under the lock)."""
        if state != self._state:
            self._transitions.inc()
            if state == OPEN:
                self._opened_counter.inc()
        self._state = state
        self._state_gauge.set(_STATE_VALUE[state])

    # ------------------------------------------------------------------
    # Decision point
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """True when the caller may dispatch to the pool right now.

        While open, returns ``False`` until the cooldown elapses; the first
        caller after that becomes the half-open probe (``True``), every
        other caller keeps getting ``False`` until the probe resolves.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._set_state(HALF_OPEN)
                self._probe_in_flight = True
                return True
            # HALF_OPEN: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    # ------------------------------------------------------------------
    # Outcome feedback
    # ------------------------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == HALF_OPEN or \
                    self._consecutive_failures >= self.failure_threshold:
                if self._state != OPEN:
                    self._times_opened += 1
                self._set_state(OPEN)
                self._opened_at = self._clock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "cooldown_s": self.cooldown_s,
                "times_opened": self._times_opened,
            }
