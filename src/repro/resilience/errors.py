"""Serving error taxonomy: every failure is retryable, permanent, or shed.

The taxonomy is the contract between the supervised pool, the gateway, the
wire protocol and the client:

* **retryable** — the request itself is fine; serving infrastructure failed
  (a worker crashed, a deadline expired, the pool was shutting down).  A
  client may safely resubmit the identical request.
* **permanent** — the request cannot succeed as posed (malformed payload,
  the compile itself raised); resubmitting the same request will fail the
  same way.
* **shed** — the gateway refused the work to protect itself (admission
  bound, open circuit breaker with no degraded capacity, draining for
  shutdown).  The request is fine; retry after backing off.

The class is carried on the wire as the ``error_class`` response field so
clients never have to parse error strings.
"""

from __future__ import annotations

__all__ = [
    "RETRYABLE",
    "PERMANENT",
    "SHED",
    "ServingFault",
    "WorkerCrashed",
    "DeadlineExceeded",
    "PoolUnavailable",
    "LoadShed",
    "CompileFailed",
    "classify_error",
]

RETRYABLE = "retryable"
PERMANENT = "permanent"
SHED = "shed"


class ServingFault(Exception):
    """Base of all structured serving failures; carries its error class."""

    error_class = RETRYABLE


class WorkerCrashed(ServingFault):
    """A worker process died (or a fault-injected crash fired) mid-task.

    Raised to the caller only after the supervisor's bounded re-dispatch
    budget is exhausted; the request never executed to completion, so a
    retry is always safe.
    """

    error_class = RETRYABLE


class DeadlineExceeded(ServingFault):
    """A task overran its wall-clock deadline; its worker was recycled."""

    error_class = RETRYABLE


class PoolUnavailable(ServingFault):
    """The pool is shut down (or rebuilding) and cannot accept the task."""

    error_class = RETRYABLE


class LoadShed(ServingFault):
    """The gateway refused the request to protect itself (breaker/drain)."""

    error_class = SHED


class CompileFailed(ServingFault):
    """The task itself raised — resubmitting the same request cannot help."""

    error_class = PERMANENT


def classify_error(exc: BaseException) -> str:
    """The taxonomy class of an arbitrary exception (default: permanent).

    Unknown exceptions are *permanent*: an error we cannot attribute to the
    serving infrastructure must not trigger automatic retries, or a
    deterministically-failing request would be recompiled forever.
    """
    if isinstance(exc, ServingFault):
        return exc.error_class
    return PERMANENT
