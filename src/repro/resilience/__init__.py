"""repro.resilience — supervision, failure taxonomy and fault injection.

The robustness layer of the serving stack (ROADMAP item 1's supervision
sub-bullet):

* :mod:`~repro.resilience.errors` — the retryable / permanent / shed error
  taxonomy carried on the wire as ``error_class``,
* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter) and :class:`Deadline` budgets,
* :mod:`~repro.resilience.breaker` — a three-state :class:`CircuitBreaker`
  over pool-level failures,
* :mod:`~repro.resilience.supervisor` — :class:`SupervisedPool`, the
  self-healing worker pool (dead workers reaped and replaced, crashed
  tasks re-dispatched under the retry budget, hung tasks deadline-killed
  with their worker recycled),
* :mod:`~repro.resilience.faults` — :class:`FaultPlan`, deterministic
  ledger-based fault injection driving ``tests/chaos`` and the
  ``python -m repro.server --self-test --chaos`` smoke.
"""

from .breaker import CircuitBreaker
from .errors import (
    PERMANENT,
    RETRYABLE,
    SHED,
    CompileFailed,
    DeadlineExceeded,
    LoadShed,
    PoolUnavailable,
    ServingFault,
    WorkerCrashed,
    classify_error,
)
from .faults import FaultPlan, FaultSpec, FaultyCompile
from .policy import Deadline, RetryPolicy, tightest
from .supervisor import PoolStats, SupervisedPool

__all__ = [
    "RETRYABLE",
    "PERMANENT",
    "SHED",
    "ServingFault",
    "WorkerCrashed",
    "DeadlineExceeded",
    "PoolUnavailable",
    "LoadShed",
    "CompileFailed",
    "classify_error",
    "RetryPolicy",
    "Deadline",
    "tightest",
    "CircuitBreaker",
    "SupervisedPool",
    "PoolStats",
    "FaultPlan",
    "FaultSpec",
    "FaultyCompile",
]
