"""Retry budgets and exponential backoff with deterministic jitter.

The jitter is seeded from the retry token (usually the task id) and the
attempt number, so a re-run of the same scenario produces the same delays —
chaos tests stay reproducible while distinct tasks still spread their
retries instead of thundering back in lockstep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "Deadline", "tightest"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base * multiplier^(attempt-1)``.

    ``max_attempts`` counts *executions*, not retries: ``max_attempts=3``
    means one initial dispatch plus at most two re-dispatches.  ``jitter``
    is the fraction of each delay that is randomised (0 disables it).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def allows_retry(self, attempts_so_far: int) -> bool:
        """True when a task that has run ``attempts_so_far`` times may rerun."""
        return attempts_so_far < self.max_attempts

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Delay before dispatching attempt number ``attempt`` (2-based).

        Deterministic for a given ``(token, attempt)`` pair: the jittered
        fraction comes from a :class:`random.Random` seeded on both, never
        from global randomness.
        """
        if attempt <= 1:
            return 0.0
        raw = min(self.max_delay_s,
                  self.base_delay_s * self.multiplier ** (attempt - 2))
        if self.jitter == 0.0:
            return raw
        fraction = random.Random(f"{token}|{attempt}").random()
        # Spread over [raw * (1 - jitter), raw]: never longer than the
        # un-jittered delay, so budgets stay easy to reason about.
        return raw * (1.0 - self.jitter * fraction)


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget anchored at creation time (monotonic clock)."""

    budget_s: Optional[float]
    started_at: float

    @classmethod
    def start(cls, budget_s: Optional[float]) -> "Deadline":
        return cls(budget_s=budget_s, started_at=time.monotonic())

    def remaining_s(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` for an unbounded budget."""
        if self.budget_s is None:
            return None
        return max(0.0, self.budget_s - (time.monotonic() - self.started_at))

    def expired(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0


def tightest(*budgets: Optional[float]) -> Optional[float]:
    """The smallest non-``None`` budget, or ``None`` when all are unbounded."""
    bounded = [budget for budget in budgets if budget is not None]
    return min(bounded) if bounded else None
