"""Deterministic fault injection for the serving stack's chaos tests.

A :class:`FaultPlan` is a picklable description of faults to inject at
named *points* in the serving path:

=================  ===========================================================
point              fired by
=================  ===========================================================
``worker``         the compile wrapper on a pool worker, labelled by task id
``store-put``      :meth:`repro.store.ResultStore.put`, labelled by key digest
``tcp-response``   :class:`repro.server.tcp.ServingServer` before a response,
                   labelled by the request op
=================  ===========================================================

Determinism across threads *and* processes comes from a filesystem
**ledger**: each fault arms a fixed number of one-shot charges, and a
charge fires only for the actor that atomically claims its marker file
(``O_CREAT | O_EXCL``).  A crash fault armed once therefore kills exactly
one execution of the matching task — the supervised retry of that same
task finds the charge spent and completes, which is precisely the recovery
semantics the chaos suite asserts.

Fault kinds:

* ``crash`` — raise :class:`~repro.resilience.errors.WorkerCrashed` (the
  supervisor treats it exactly like a dead worker; works for thread *and*
  process workers),
* ``exit``  — ``os._exit(66)``: a genuine process death (process workers),
* ``hang``  — sleep ``hang_s`` seconds (exercises deadline kills),
* ``corrupt`` — garble the just-written store payload on disk,
* ``sever`` — abort the TCP connection midway through writing a response.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

from .errors import WorkerCrashed

__all__ = ["FaultSpec", "FaultPlan", "FaultyCompile"]

KINDS = ("crash", "exit", "hang", "corrupt", "sever")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where it fires, what it does, how often."""

    kind: str                 # see KINDS
    point: str                # "worker" | "store-put" | "tcp-response"
    match: str = "*"          # label substring filter ("*" matches all)
    times: int = 1            # number of one-shot charges
    hang_s: float = 30.0      # sleep length for kind="hang"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.times < 1:
            raise ValueError("times must be at least 1")

    def matches(self, label: str) -> bool:
        return self.match == "*" or self.match in label


@dataclass(frozen=True)
class FaultPlan:
    """A ledger directory plus the faults armed against it (picklable)."""

    ledger_dir: str
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        Path(self.ledger_dir).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Ledger primitives
    # ------------------------------------------------------------------
    def _claim(self, marker: str) -> bool:
        """Atomically claim ``marker``; exactly one claimant ever wins."""
        path = os.path.join(self.ledger_dir, marker)
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            return False
        except OSError:
            return False

    def fired(self) -> int:
        """Total charges spent so far (all points, all processes)."""
        try:
            return sum(1 for name in os.listdir(self.ledger_dir)
                       if name.startswith("charge-"))
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def draw(self, point: str, label: str) -> Optional[FaultSpec]:
        """Claim-and-return the first armed fault matching this event.

        Returns ``None`` when nothing (or nothing *left*) matches; the
        caller executes whatever spec comes back.  Safe to call from any
        process sharing the ledger directory.
        """
        for index, spec in enumerate(self.faults):
            if spec.point != point or not spec.matches(label):
                continue
            for charge in range(spec.times):
                if self._claim(f"charge-{index}-{charge}"):
                    return spec
        return None

    def fire_worker_fault(self, task_id: str) -> None:
        """Worker-side hook: crash / exit / hang if a charge matches."""
        spec = self.draw("worker", task_id)
        if spec is None:
            return
        if spec.kind == "hang":
            time.sleep(spec.hang_s)
        elif spec.kind == "exit":
            os._exit(66)
        elif spec.kind == "crash":
            raise WorkerCrashed(f"fault-injected crash while compiling "
                                f"{task_id!r}")

    def fire_store_fault(self, path, key_digest: str) -> None:
        """Store-side hook: corrupt the freshly-written payload at ``path``."""
        spec = self.draw("store-put", key_digest)
        if spec is None or spec.kind != "corrupt":
            return
        try:
            text = Path(path).read_text()
            Path(path).write_text(text[: max(1, len(text) // 2)]
                                  + '"GARBLED-BY-FAULT-PLAN')
        except OSError:
            pass

    def draw_sever(self, label: str) -> bool:
        """TCP-side hook: True when this response must be severed."""
        spec = self.draw("tcp-response", label)
        return spec is not None and spec.kind == "sever"


class FaultyCompile:
    """Picklable gateway ``compile_fn`` wrapper: fault hook + real compile.

    Keeps fault injection in a test seam — the production
    :func:`~repro.server.gateway.compile_task_artifact` stays untouched —
    while running the genuine pipeline underneath, so chaos runs still
    produce real artifacts whose digests must match a clean run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __call__(self, task, store_spec, evaluate):
        from ..server.gateway import compile_task_artifact

        self.plan.fire_worker_fault(task.task_id)
        return compile_task_artifact(task, store_spec, evaluate)
