"""Supervised worker pool: self-healing workers, deadlines, crash retry.

``concurrent.futures.ProcessPoolExecutor`` treats one dead worker as fatal:
every queued future collapses with ``BrokenProcessPool`` and the pool is
unusable until rebuilt, and a *hung* worker is worse — it silently pins its
task forever.  :class:`SupervisedPool` replaces it for the serving path with
the supervision model of long-running production workers (Pioreactor-style
cluster supervision, see ROADMAP item 1):

* every worker is monitored; a dead worker is **reaped and replaced**
  without disturbing its siblings,
* a task whose worker died mid-flight is **re-dispatched** under a bounded
  :class:`~repro.resilience.policy.RetryPolicy` with exponential backoff
  and deterministic jitter; once the budget is exhausted its future fails
  with :class:`~repro.resilience.errors.WorkerCrashed` (retryable),
* a task that overruns its **wall-clock deadline** has its worker killed
  and recycled and fails with
  :class:`~repro.resilience.errors.DeadlineExceeded` (retryable) — a hung
  compile can never wedge the pool,
* catastrophic supervision failures (e.g. a result queue corrupted by a
  kill) trigger a **full pool rebuild**; in-flight tasks re-enter the
  crash/retry path instead of being lost.

Two worker kinds share the same supervisor: ``process`` workers (real
isolation — crashes are genuine SIGKILL-able processes) and ``thread``
workers for 1-core smoke runs and deterministic tests, where a "crash" is a
raised :class:`WorkerCrashed` and a deadline kill *condemns* the worker (its
eventual result is discarded, a replacement thread takes over its slot).

Task functions and arguments must be picklable for process workers — the
same contract the previous executor had.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..telemetry import tracing
from ..telemetry.registry import CounterSet
from .errors import DeadlineExceeded, PoolUnavailable, WorkerCrashed
from .policy import RetryPolicy

__all__ = ["SupervisedPool", "PoolStats"]

#: Result wire format between workers and the supervisor.
_OK = "ok"
_ERR = "error"


def _worker_loop(task_source, result_sink, condemned=None) -> None:
    """Shared worker body: pull ``(job_id, fn, args, trace, label)``, run,
    report ``(job_id, kind, payload, spans)``.

    Used verbatim by process workers (queues are multiprocessing queues)
    and thread workers (queues are ``queue.Queue``; ``condemned`` is the
    thread's discard flag, checked *after* the task so a condemned worker
    never reports a stale result).

    When the item carries a :class:`~repro.telemetry.TraceContext`, the
    worker activates it and runs the task under a ``pool.task`` span, then
    ships every locally-finished span back alongside the outcome — on
    success *and* on error, because the spans sink fills as spans close,
    not at the end.  A worker that dies mid-task reports nothing; the
    supervisor records the crash as an instant event instead.
    """
    while True:
        item = task_source.get()
        if item is None:
            return
        job_id, fn, args, trace_ctx, label = item
        spans = []
        try:
            with tracing.activate(trace_ctx, sink=spans):
                with tracing.span("pool.task", label=label,
                                  worker_pid=os.getpid()):
                    result = fn(*args)
            outcome = (job_id, _OK, result, spans)
        except BaseException as exc:  # noqa: BLE001 - reported, not raised
            outcome = (job_id, _ERR, (type(exc).__name__, str(exc)), spans)
        if condemned is not None and condemned.is_set():
            return
        try:
            result_sink.put(outcome)
        except Exception:  # noqa: BLE001 - unpicklable result etc.
            try:
                result_sink.put((job_id, _ERR,
                                 ("RuntimeError", "worker could not report "
                                                  "its result"), []))
            except Exception:  # noqa: BLE001 - queue gone: supervisor reaps us
                return


class _ProcessWorker:
    """One supervised worker process with a private task queue."""

    kind = "process"

    def __init__(self, ctx, result_queue) -> None:
        self._ctx = ctx
        self.task_queue = ctx.SimpleQueue()
        self.process = ctx.Process(
            target=_worker_loop, args=(self.task_queue, result_queue),
            daemon=True, name="repro-supervised-worker")
        self.process.start()
        self.job_id: Optional[int] = None
        self.started_at: float = 0.0

    @property
    def ident(self) -> str:
        return f"pid={self.process.pid}"

    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, item) -> None:
        self.task_queue.put(item)

    def stop(self) -> None:
        """Ask an idle worker to exit after draining its queue."""
        try:
            self.task_queue.put(None)
        except Exception:  # noqa: BLE001 - already gone
            pass

    def kill(self) -> None:
        """Forcibly terminate (deadline kill / shutdown of a busy worker)."""
        try:
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join(timeout=2.0)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass


class _ThreadWorker:
    """Thread-backed worker; a 'kill' condemns it instead of terminating."""

    kind = "thread"

    def __init__(self, _ctx, result_queue) -> None:
        self.task_queue: "queue.Queue" = queue.Queue()
        self.condemned = threading.Event()
        self.thread = threading.Thread(
            target=_worker_loop,
            args=(self.task_queue, result_queue, self.condemned),
            daemon=True, name="repro-supervised-worker")
        self.thread.start()
        self.job_id: Optional[int] = None
        self.started_at: float = 0.0

    @property
    def ident(self) -> str:
        return f"tid={self.thread.ident}"

    def alive(self) -> bool:
        return self.thread.is_alive() and not self.condemned.is_set()

    def send(self, item) -> None:
        self.task_queue.put(item)

    def stop(self) -> None:
        self.task_queue.put(None)

    def kill(self) -> None:
        # Python threads cannot be killed; the condemned flag makes the
        # worker discard whatever it eventually produces and exit.  The
        # supervisor forgets it immediately and spawns a replacement, so
        # pool capacity recovers even though the OS thread lingers until
        # the hung call returns.
        self.condemned.set()


class _Job:
    __slots__ = ("job_id", "fn", "args", "future", "deadline_s", "label",
                 "token", "trace", "attempts", "not_before", "started")

    def __init__(self, job_id: int, fn: Callable, args: Tuple,
                 future: "Future", deadline_s: Optional[float],
                 label: str, token: str,
                 trace: Optional[tracing.TraceContext] = None) -> None:
        self.job_id = job_id
        self.fn = fn
        self.args = args
        self.future = future
        self.deadline_s = deadline_s
        self.label = label
        self.token = token
        self.trace = trace
        self.attempts = 0          # dispatches so far
        self.not_before = 0.0      # backoff gate for the next dispatch
        self.started = False       # set_running_or_notify_cancel done


class PoolStats(CounterSet):
    """Monotonic supervision counters (exported via ``stats()``).

    Registry-backed (``repro_pool_*_total`` series, one ``instance`` label
    per pool) while keeping the attribute read/``+=`` semantics the
    supervisor and its tests use.
    """

    PREFIX = "repro_pool"
    FIELDS = ("submitted", "completed", "failed", "crashes", "deadline_kills",
              "retries", "workers_recycled", "pool_rebuilds", "queue_errors")
    HELP = {
        "submitted": "Tasks accepted by SupervisedPool.submit",
        "completed": "Tasks whose future resolved with a result",
        "failed": "Tasks whose future resolved with an error",
        "crashes": "Worker crashes observed while a task was running",
        "deadline_kills": "Workers killed for overrunning a task deadline",
        "retries": "Crash re-dispatches granted by the retry policy",
        "workers_recycled": "Workers reaped and replaced",
        "pool_rebuilds": "Wholesale pool rebuilds after supervision faults",
        "queue_errors": "Supervision loop errors (broken result queue etc.)",
    }


class SupervisedPool:
    """Self-healing task pool with per-task deadlines and bounded retry.

    Parameters
    ----------
    max_workers:
        Worker count (default: CPU count, floor 2 for thread workers).
    kind:
        ``"process"`` (real isolation) or ``"thread"`` (tests, 1-core runs).
    deadline_s:
        Default per-task wall-clock budget; ``None`` disables deadlines.
        :meth:`submit` can override per task.
    retry_policy:
        Crash re-dispatch budget + backoff (deadline overruns are *not*
        retried here: a hung task would very likely hang again, so the
        caller decides).
    mp_context:
        Multiprocessing context for process workers (default: ``fork``
        where available, matching the prewarmed architecture-cache
        contract of :mod:`repro.service.batch`).
    """

    _TICK_S = 0.02

    def __init__(self, max_workers: Optional[int] = None, *,
                 kind: str = "process",
                 deadline_s: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 mp_context=None) -> None:
        if kind not in ("process", "thread"):
            raise ValueError("kind must be 'process' or 'thread'")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        self.kind = kind
        cpu = os.cpu_count() or 1
        self.max_workers = max_workers or (max(2, cpu) if kind == "thread"
                                           else cpu)
        self.deadline_s = deadline_s
        self.retry_policy = retry_policy or RetryPolicy()
        if kind == "process":
            self._ctx = mp_context or _default_context()
        else:
            self._ctx = None
        self.stats = PoolStats()
        self._lock = threading.Lock()
        self._closed = False
        self._job_ids = itertools.count(1)
        self._pending: List[_Job] = []
        self._running: Dict[int, Tuple[_Job, object]] = {}
        self._workers: List[object] = []
        self._result_queue = self._make_result_queue()
        for _ in range(self.max_workers):
            self._workers.append(self._spawn_worker())
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True, name="repro-pool-supervisor")
        self._supervisor.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, fn: Callable, *args: Any,
               deadline_s: Optional[float] = -1.0,
               label: str = "", token: Optional[str] = None,
               trace: Optional[tracing.TraceContext] = None) -> "Future":
        """Schedule ``fn(*args)``; returns a ``concurrent.futures.Future``.

        ``deadline_s`` overrides the pool default (``None`` = unbounded;
        leave unset to inherit).  ``label`` decorates error messages;
        ``token`` seeds the retry jitter (defaults to the label).

        ``trace`` carries a :class:`~repro.telemetry.TraceContext` to the
        worker; when omitted the caller's active context (if any) is
        captured automatically, so submitting from inside a traced request
        links the worker's spans to it with no extra plumbing.
        """
        future: "Future" = Future()
        effective = self.deadline_s if deadline_s == -1.0 else deadline_s
        if trace is None:
            trace = tracing.current_context()
        with self._lock:
            if self._closed:
                raise PoolUnavailable("pool is shut down")
            job = _Job(next(self._job_ids), fn, args, future, effective,
                       label or fn.__class__.__name__, token or label,
                       trace=trace)
            self._pending.append(job)
            self.stats.submitted += 1
        return future

    def stats_dict(self) -> Dict[str, object]:
        with self._lock:
            payload: Dict[str, object] = {
                "kind": self.kind,
                "max_workers": self.max_workers,
                "workers_alive": sum(1 for worker in self._workers
                                     if worker.alive()),
                "pending": len(self._pending),
                "running": len(self._running),
                "deadline_s": self.deadline_s,
                "retry_max_attempts": self.retry_policy.max_attempts,
            }
            payload.update(self.stats.as_dict())
        return payload

    def shutdown(self, wait: bool = True) -> None:
        """Stop the supervisor, fail unfinished work, reap every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending)
            running = list(self._running.values())
            self._pending.clear()
            self._running.clear()
            workers = list(self._workers)
            self._workers = []
        for job in pending:
            _fail(job.future, PoolUnavailable(
                f"pool shut down before {job.label!r} ran"))
        for job, _worker in running:
            _fail(job.future, PoolUnavailable(
                f"pool shut down while {job.label!r} was running"))
        for worker in workers:
            if worker.job_id is None:
                worker.stop()
            else:
                worker.kill()
        if wait:
            self._supervisor.join(timeout=5.0)
            for worker in workers:
                if isinstance(worker, _ProcessWorker):
                    worker.process.join(timeout=2.0)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Supervisor loop
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            try:
                self._drain_results()
                now = time.monotonic()
                with self._lock:
                    if self._closed:
                        return
                    self._reap_dead_workers(now)
                    self._enforce_deadlines(now)
                    self._dispatch(now)
            except Exception:  # noqa: BLE001 - supervision must survive
                with self._lock:
                    self.stats.queue_errors += 1
                    broken = self.stats.queue_errors
                if broken % 3 == 0:
                    self._rebuild("supervision error")

    def _drain_results(self) -> None:
        while True:
            try:
                job_id, kind, payload, spans = self._result_queue.get(
                    timeout=self._TICK_S)
            except queue.Empty:
                return
            except (EOFError, OSError):
                # The queue itself broke (a kill mid-put): rebuild wholesale.
                with self._lock:
                    self.stats.queue_errors += 1
                self._rebuild("result queue broken")
                return
            if spans:
                # Worker-recorded spans surface through the global tracer;
                # the trace owner (e.g. the gateway) drains them by id.
                tracing.TRACER.ingest(spans)
            with self._lock:
                entry = self._running.pop(job_id, None)
                if entry is None:
                    continue  # late result of a deadline-killed/rebuilt job
                job, worker = entry
                worker.job_id = None
                if kind == _OK:
                    self.stats.completed += 1
                    _resolve(job.future, payload)
                    continue
                type_name, message = payload
                if type_name == WorkerCrashed.__name__:
                    # Fault-injected (or in-process-detected) crash: same
                    # re-dispatch path as a genuinely dead worker.
                    self._handle_crash(job, f"{message}")
                else:
                    self.stats.failed += 1
                    _fail(job.future, _task_error(type_name, message))

    def _reap_dead_workers(self, now: float) -> None:
        for index, worker in enumerate(list(self._workers)):
            if worker.alive():
                continue
            self.stats.workers_recycled += 1
            if worker.job_id is not None:
                entry = self._running.pop(worker.job_id, None)
                if entry is not None:
                    job, _ = entry
                    self._handle_crash(
                        job, f"worker ({worker.ident}) died while running "
                             f"{job.label!r}")
            self._workers[index] = self._spawn_worker()

    def _enforce_deadlines(self, now: float) -> None:
        for job_id, (job, worker) in list(self._running.items()):
            if job.deadline_s is None:
                continue
            if now - worker.started_at <= job.deadline_s:
                continue
            self.stats.deadline_kills += 1
            tracing.record_instant(job.trace, "pool.deadline_kill",
                                   label=job.label,
                                   deadline_s=job.deadline_s)
            self._running.pop(job_id, None)
            worker.job_id = None
            worker.kill()
            self.stats.workers_recycled += 1
            try:
                self._workers.remove(worker)
            except ValueError:  # pragma: no cover - already replaced
                pass
            self._workers.append(self._spawn_worker())
            _fail(job.future, DeadlineExceeded(
                f"{job.label!r} exceeded its {job.deadline_s:.3g}s deadline; "
                f"worker recycled"))

    def _dispatch(self, now: float) -> None:
        if not self._pending:
            return
        idle = [worker for worker in self._workers
                if worker.job_id is None and worker.alive()]
        if not idle:
            return
        remaining: List[_Job] = []
        for job in self._pending:
            if not idle:
                remaining.append(job)
                continue
            if job.not_before > now:
                remaining.append(job)
                continue
            if not job.started:
                if not job.future.set_running_or_notify_cancel():
                    continue  # cancelled while queued
                job.started = True
            elif job.future.done():
                continue  # resolved elsewhere (e.g. rebuild raced)
            worker = idle.pop()
            job.attempts += 1
            worker.job_id = job.job_id
            worker.started_at = now
            self._running[job.job_id] = (job, worker)
            worker.send((job.job_id, job.fn, job.args, job.trace, job.label))
        self._pending = remaining

    def _handle_crash(self, job: _Job, detail: str) -> None:
        """Crash outcome for a dispatched job: bounded re-dispatch or fail."""
        self.stats.crashes += 1
        tracing.record_instant(job.trace, "pool.crash", label=job.label,
                               attempt=job.attempts, detail=detail)
        if self.retry_policy.allows_retry(job.attempts):
            self.stats.retries += 1
            tracing.record_instant(job.trace, "pool.retry", label=job.label,
                                   attempt=job.attempts)
            job.not_before = time.monotonic() + self.retry_policy.backoff_s(
                job.attempts + 1, token=job.token)
            self._pending.append(job)
            return
        self.stats.failed += 1
        _fail(job.future, WorkerCrashed(
            f"{detail} (gave up after {job.attempts} attempts)"))

    def _rebuild(self, reason: str) -> None:
        """Replace queue + every worker; in-flight jobs re-enter retry."""
        with self._lock:
            if self._closed:
                return
            self.stats.pool_rebuilds += 1
            workers = list(self._workers)
            running = list(self._running.values())
            self._workers = []
            self._running.clear()
            self._result_queue = self._make_result_queue()
            for job, _worker in running:
                self._handle_crash(job, f"pool rebuilt ({reason}) while "
                                        f"{job.label!r} was running")
            for _ in range(self.max_workers):
                self._workers.append(self._spawn_worker())
        for worker in workers:
            worker.kill()

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _make_result_queue(self):
        if self.kind == "thread":
            return queue.Queue()
        return self._ctx.Queue()

    def _spawn_worker(self):
        factory = _ThreadWorker if self.kind == "thread" else _ProcessWorker
        return factory(self._ctx, self._result_queue)


def _default_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def _task_error(type_name: str, message: str) -> Exception:
    from .errors import CompileFailed

    return CompileFailed(f"{type_name}: {message}")


def _resolve(future: "Future", result) -> None:
    if not future.done():
        future.set_result(result)


def _fail(future: "Future", exc: Exception) -> None:
    if not future.done():
        future.set_exception(exc)
