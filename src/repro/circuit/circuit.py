"""Quantum circuit container.

:class:`QuantumCircuit` is a thin, ordered list of :class:`~repro.circuit.gate.Gate`
objects plus convenience builders for the standard gates the benchmarks use.
It deliberately does not simulate state vectors — the reproduction is a
compilation study, so the circuit is a purely structural object.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gate import (
    Gate,
    GateKind,
    barrier as _barrier,
    controlled_x,
    controlled_z,
    measurement,
    single_qubit_gate,
    swap_gate,
)

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` circuit qubits.

    Parameters
    ----------
    num_qubits:
        Number of circuit qubits ``n``.  Qubit indices are ``0 .. n-1``.
    name:
        Optional human-readable name (used in reports and QASM headers).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
                f"num_gates={len(self._gates)})")

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """Immutable view of the gate list."""
        return tuple(self._gates)

    # ------------------------------------------------------------------
    # Gate builders
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append an already-constructed gate after validating its qubits."""
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name} addresses qubit {qubit} outside the "
                    f"{self.num_qubits}-qubit register")
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    # Named single-qubit gates -----------------------------------------
    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("h", qubit))

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("x", qubit))

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("y", qubit))

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("z", qubit))

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("s", qubit))

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("sdg", qubit))

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("t", qubit))

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("tdg", qubit))

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("rx", qubit, theta))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("ry", qubit, theta))

    def rz(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("rz", qubit, phi))

    def p(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("p", qubit, phi))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(single_qubit_gate("u3", qubit, theta, phi, lam))

    # Entangling gates ---------------------------------------------------
    def cz(self, *qubits: int) -> "QuantumCircuit":
        """Append a ``C^{m-1}Z`` gate on ``qubits`` (any ``m >= 2``)."""
        return self.append(controlled_z(qubits))

    def ccz(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.append(controlled_z((a, b, c)))

    def cccz(self, a: int, b: int, c: int, d: int) -> "QuantumCircuit":
        return self.append(controlled_z((a, b, c, d)))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(controlled_x((control,), target))

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(controlled_x((c1, c2), target))

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Append a multi-controlled X with arbitrary control count."""
        return self.append(controlled_x(controls, target))

    def mcz(self, qubits: Sequence[int]) -> "QuantumCircuit":
        return self.append(controlled_z(qubits))

    def cp(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase rotation.

        Mapping-wise a controlled phase behaves exactly like a CZ (two-qubit
        diagonal entangling gate); we keep the angle so QASM round-trips.
        """
        return self.append(Gate("cp", (int(control), int(target)), (float(phi),),
                                GateKind.CONTROLLED_Z))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(swap_gate(a, b))

    def barrier(self, qubits: Optional[Iterable[int]] = None) -> "QuantumCircuit":
        if qubits is None:
            qubits = range(self.num_qubits)
        return self.append(_barrier(qubits))

    def measure(self, qubit: int) -> "QuantumCircuit":
        return self.append(measurement(qubit))

    def measure_all(self) -> "QuantumCircuit":
        for qubit in range(self.num_qubits):
            self.measure(qubit)
        return self

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def count_by_arity(self) -> Dict[int, int]:
        """Histogram of entangling-gate arities (``{2: nCZ, 3: nC2Z, ...}``).

        Single-qubit gates, barriers and measurements are excluded; this is
        the statistic reported in the paper's Table 1b.
        """
        counts: Dict[int, int] = {}
        for gate in self._gates:
            if gate.is_entangling:
                counts[gate.num_qubits] = counts.get(gate.num_qubits, 0) + 1
        return counts

    def num_entangling_gates(self) -> int:
        return sum(1 for gate in self._gates if gate.is_entangling)

    def num_single_qubit_gates(self) -> int:
        return sum(1 for gate in self._gates if gate.is_single_qubit)

    def used_qubits(self) -> frozenset:
        """Set of qubit indices that appear in at least one gate."""
        used = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return frozenset(used)

    def canonical_lines(self) -> List[str]:
        """Canonical text serialisation of the circuit structure.

        One line per gate covering every field that affects compilation
        (kind, name, qubits, parameters), preceded by a schema/size header.
        The circuit *name* is deliberately excluded: two structurally equal
        circuits must serialise identically regardless of how a caller
        labelled them, so the persistent result store deduplicates e.g. the
        same QASM document submitted under different request ids.
        """
        lines = [f"circuit/v1 n={self.num_qubits}"]
        for gate in self._gates:
            qubits = ",".join(str(q) for q in gate.qubits)
            params = ",".join(repr(float(p)) for p in gate.params)
            lines.append(f"{gate.kind} {gate.name} q={qubits} p={params}")
        return lines

    def canonical_digest(self) -> str:
        """SHA-256 over :meth:`canonical_lines` — the circuit's stable identity.

        Deterministic across processes and Python builds (plain ``hashlib``,
        ``repr`` of floats is exact), so it is safe to use as a component of
        persistent cache keys (:mod:`repro.store`).
        """
        payload = "\n".join(self.canonical_lines()).encode()
        return hashlib.sha256(payload).hexdigest()

    def depth(self) -> int:
        """Circuit depth counting every gate (including single-qubit gates)."""
        level: List[int] = [0] * self.num_qubits
        depth = 0
        for gate in self._gates:
            if gate.kind == GateKind.BARRIER:
                if gate.qubits:
                    fence = max(level[q] for q in gate.qubits)
                    for q in gate.qubits:
                        level[q] = fence
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def entangling_depth(self) -> int:
        """Circuit depth counting only entangling gates."""
        level: List[int] = [0] * self.num_qubits
        depth = 0
        for gate in self._gates:
            if not gate.is_entangling:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        other = QuantumCircuit(self.num_qubits, name or self.name)
        other._gates = list(self._gates)
        return other

    def remapped(self, mapping: Dict[int, int],
                 num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit indices translated by ``mapping``."""
        target_size = num_qubits if num_qubits is not None else self.num_qubits
        other = QuantumCircuit(target_size, self.name)
        for gate in self._gates:
            other.append(gate.remapped(mapping))
        return other

    def filtered(self, predicate: Callable[[Gate], bool]) -> "QuantumCircuit":
        """Return a copy containing only gates for which ``predicate`` is true."""
        other = QuantumCircuit(self.num_qubits, self.name)
        other._gates = [g for g in self._gates if predicate(g)]
        return other

    def without_trivial_ops(self) -> "QuantumCircuit":
        """Return a copy with barriers and measurements stripped.

        The mapper treats measurements as terminal and barriers purely as
        layer fences in the DAG, so benchmarks normalise circuits this way
        before comparing gate counts.
        """
        return self.filtered(lambda g: g.kind not in (GateKind.BARRIER, GateKind.MEASURE))

    def compose(self, other: "QuantumCircuit",
                qubit_offset: int = 0) -> "QuantumCircuit":
        """Append ``other``'s gates (shifted by ``qubit_offset``) to a copy of self."""
        needed = qubit_offset + other.num_qubits
        if needed > self.num_qubits:
            raise ValueError(
                f"composition needs {needed} qubits but circuit has {self.num_qubits}")
        result = self.copy()
        mapping = {q: q + qubit_offset for q in range(other.num_qubits)}
        for gate in other:
            result.append(gate.remapped(mapping))
        return result
