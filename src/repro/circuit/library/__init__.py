"""Benchmark circuit library mirroring the paper's Table 1b workload set.

The six named benchmarks are exposed through :func:`get_benchmark` so the
evaluation harness can instantiate any circuit by name and size:

* ``qft`` — Quantum Fourier Transform
* ``qpe`` — Quantum Phase Estimation
* ``graph`` — graph-state preparation on a sparse random graph
* ``bn``, ``call``, ``gray`` — reversible-function Toffoli networks with
  multi-controlled gates up to ``C3X``
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..circuit import QuantumCircuit
from .graph_state import benchmark_graph, graph_state, graph_state_from_edges
from .qft import qft
from .qpe import qpe
from .random_circuits import (
    local_window_circuit,
    qaoa_maxcut_circuit,
    random_layered_circuit,
)
from .reversible import REVERSIBLE_PROFILES, bn, call, gray, synthesize_reversible

__all__ = [
    "qft", "qpe", "graph_state", "graph_state_from_edges", "benchmark_graph",
    "bn", "call", "gray", "synthesize_reversible", "REVERSIBLE_PROFILES",
    "random_layered_circuit", "qaoa_maxcut_circuit", "local_window_circuit",
    "get_benchmark", "BENCHMARK_NAMES", "default_benchmark_size",
]

#: Canonical benchmark names in Table 1 order.
BENCHMARK_NAMES = ("graph", "qft", "qpe", "bn", "call", "gray")

#: Register sizes used in the paper's evaluation (Table 1b).
_PAPER_SIZES = {"graph": 200, "qft": 200, "qpe": 200, "bn": 48, "call": 25, "gray": 33}


def default_benchmark_size(name: str) -> int:
    """Return the register size the paper used for benchmark ``name``."""
    if name not in _PAPER_SIZES:
        raise ValueError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    return _PAPER_SIZES[name]


def get_benchmark(name: str, num_qubits: Optional[int] = None,
                  seed: int = 2024) -> QuantumCircuit:
    """Instantiate a named benchmark circuit.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES`.
    num_qubits:
        Register size; defaults to the size used in the paper (Table 1b).
    seed:
        Seed for the randomised benchmarks (graph state, reversible networks).
    """
    lowered = name.lower()
    size = num_qubits or default_benchmark_size(lowered)
    if lowered == "qft":
        return qft(size)
    if lowered == "qpe":
        return qpe(size)
    if lowered == "graph":
        return graph_state(size, seed=seed)
    if lowered == "bn":
        return bn(size, seed=seed)
    if lowered == "call":
        return call(size, seed=seed)
    if lowered == "gray":
        return gray(size, seed=seed)
    raise ValueError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
