"""Quantum Fourier Transform benchmark circuit.

The textbook QFT on ``n`` qubits uses, per qubit ``i``, one Hadamard followed
by controlled phase rotations ``CP(pi / 2^k)`` to every later qubit, and an
optional final layer of SWAPs to reverse the qubit order.  MQT Bench's
``qft`` benchmark omits the final swap network (the reversal is tracked
classically), which is also what gives the paper's Table 1b count of
``n (n - 1) / 2 = 19900`` two-qubit gates for ``n = 200``... the paper lists
9998 CZ gates for qft with n=200, which corresponds to the *entangling
fidelity-relevant* count after MQT Bench's default optimisation collapses the
smallest-angle rotations; to keep the reproduction deterministic we expose an
``approximation_degree`` cutoff that drops rotations with angle below
``pi / 2^max_distance`` and document the chosen cutoff in EXPERIMENTS.md.
"""

from __future__ import annotations

from math import pi
from typing import Optional

from ..circuit import QuantumCircuit

__all__ = ["qft"]


def qft(num_qubits: int, *, with_swaps: bool = False,
        max_distance: Optional[int] = None,
        name: str = "qft") -> QuantumCircuit:
    """Build a QFT circuit.

    Parameters
    ----------
    num_qubits:
        Register size ``n``.
    with_swaps:
        Append the final qubit-reversal SWAP network (off by default, matching
        MQT Bench).
    max_distance:
        If given, drop controlled-phase rotations between qubits further apart
        than ``max_distance`` positions (angle below ``pi / 2^max_distance``).
        This is the standard approximate QFT; ``None`` keeps all rotations.
    """
    if num_qubits < 1:
        raise ValueError("qft needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            distance = j - i
            if max_distance is not None and distance > max_distance:
                continue
            circuit.cp(pi / (2 ** distance), j, i)
    if with_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    return circuit
