"""Quantum Phase Estimation benchmark circuit.

The QPE benchmark estimates the eigenphase of a single-qubit unitary
``U = P(theta)`` applied to one target qubit, using ``n - 1`` estimation
qubits.  The structure is: Hadamards on the estimation register, a ladder of
controlled-phase gates ``CP(2^k theta)`` from estimation qubit ``k`` onto the
target, and an inverse QFT on the estimation register.  This mirrors the MQT
Bench ``qpeexact``/``qpeinexact`` family used in the paper's Table 1b and
yields a two-qubit gate count slightly above the plain QFT of the same width,
exactly as the table reports (10340 vs 9998 at n=200).
"""

from __future__ import annotations

from math import pi
from typing import Optional

from ..circuit import QuantumCircuit

__all__ = ["qpe"]


def qpe(num_qubits: int, *, phase: float = 1.0 / 7.0,
        max_distance: Optional[int] = None,
        name: str = "qpe") -> QuantumCircuit:
    """Build a QPE circuit on ``num_qubits`` qubits (``n - 1`` estimation + 1 target).

    Parameters
    ----------
    num_qubits:
        Total register size ``n`` (at least 2).
    phase:
        Eigenphase (as a fraction of ``2 pi``) of the estimated unitary.
    max_distance:
        Approximation cutoff forwarded to the inverse-QFT block; rotations
        between estimation qubits further apart than this are dropped.
    """
    if num_qubits < 2:
        raise ValueError("qpe needs at least two qubits (one estimation + one target)")
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    estimation = list(range(num_qubits - 1))
    target = num_qubits - 1

    # Eigenstate preparation for the target of P(theta): |1> is an eigenstate.
    circuit.x(target)
    for qubit in estimation:
        circuit.h(qubit)

    # Controlled powers of the unitary.
    for power, qubit in enumerate(estimation):
        angle = 2 * pi * phase * (2 ** power)
        circuit.cp(angle % (2 * pi), qubit, target)

    # Inverse QFT on the estimation register (no terminal swap network).
    for i in reversed(range(len(estimation))):
        for j in reversed(range(i + 1, len(estimation))):
            distance = j - i
            if max_distance is not None and distance > max_distance:
                continue
            circuit.cp(-pi / (2 ** distance), estimation[j], estimation[i])
        circuit.h(estimation[i])
    return circuit
