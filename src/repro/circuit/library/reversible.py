"""Reversible-function benchmark circuits (``bn``, ``call``, ``gray``).

The paper's multi-qubit benchmarks are classical reversible functions
synthesised by the SyReC synthesiser [Adarsh et al. 2022] into multi-controlled
Toffoli (``C^m X``, ``m <= 4``) networks.  The original ``.real``/SyReC inputs
are not redistributable here, so this module synthesises reversible circuits
with the *same structural profile* as Table 1b:

=========  ====  =====  ======  ======
benchmark   n    nCZ    nC2Z    nC3Z
=========  ====  =====  ======  ======
bn          48    133     87      0
call        25      0    192     56
gray        33      0     62      0
=========  ====  =====  ======  ======

(The counts are of the decomposed ``C^{m-1}Z`` gates; before decomposition the
circuits consist of ``CX``/``CCX``/``CCCX`` gates plus a handful of NOTs.)

Two layers are provided:

* :func:`synthesize_reversible` — a deterministic pseudo-random Toffoli-network
  synthesiser parameterised by the per-arity gate counts, qubit count and a
  seed.  It emulates the output statistics of ESOP/transformation-based
  synthesis: controls and targets are drawn with locality bias (neighbouring
  lines are more likely to interact, as in synthesised arithmetic), and no two
  consecutive gates are identical (they would cancel).
* :func:`bn`, :func:`call`, :func:`gray` — the named benchmarks with the
  Table 1b profiles, scalable to other qubit counts while preserving the
  relative gate-count mix.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import QuantumCircuit

__all__ = ["synthesize_reversible", "bn", "call", "gray", "REVERSIBLE_PROFILES"]


#: Structural profiles from Table 1b: (num_qubits, {arity: count}) where the
#: arity counts the total gate width of the C^{m-1}X gate (2 = CX, 3 = CCX, 4 = CCCX).
REVERSIBLE_PROFILES: Dict[str, Tuple[int, Dict[int, int]]] = {
    "bn": (48, {2: 133, 3: 87}),
    "call": (25, {3: 192, 4: 56}),
    "gray": (33, {3: 62}),
}


def synthesize_reversible(num_qubits: int, arity_counts: Dict[int, int], *,
                          seed: int = 2024, locality: float = 0.7,
                          name: str = "reversible") -> QuantumCircuit:
    """Create a deterministic Toffoli network with the requested gate mix.

    Parameters
    ----------
    num_qubits:
        Number of circuit lines.
    arity_counts:
        Mapping ``{gate width: count}``; width 2 is a CX, width 3 a CCX, and
        so on (width ``m`` means ``m - 1`` controls).
    seed:
        Seed of the deterministic pseudo-random construction.
    locality:
        Probability that each successive control is drawn from the immediate
        neighbourhood of the previous qubit rather than uniformly, mimicking
        the locality of synthesised arithmetic netlists.
    name:
        Circuit name.
    """
    max_width = max(arity_counts) if arity_counts else 2
    if num_qubits < max_width:
        raise ValueError(
            f"need at least {max_width} qubits for width-{max_width} gates, got {num_qubits}")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")

    # A few line initialisations, as transformation-based synthesis emits.
    for qubit in range(0, num_qubits, max(1, num_qubits // 6)):
        circuit.x(qubit)

    # Interleave the different arities deterministically so the circuit does
    # not consist of arity-sorted blocks (which would be unrealistically easy
    # to route).
    schedule: List[int] = []
    remaining = dict(arity_counts)
    while any(count > 0 for count in remaining.values()):
        for width in sorted(remaining):
            if remaining[width] > 0:
                schedule.append(width)
                remaining[width] -= 1
    rng.shuffle(schedule)

    previous_support: Optional[frozenset] = None
    for width in schedule:
        support = _draw_support(rng, num_qubits, width, locality, previous_support)
        qubits = sorted(support)
        target = qubits[rng.randrange(len(qubits))]
        controls = [q for q in qubits if q != target]
        circuit.mcx(controls, target)
        previous_support = frozenset(support)
    return circuit


def _draw_support(rng: random.Random, num_qubits: int, width: int,
                  locality: float, previous: Optional[frozenset]) -> List[int]:
    """Draw ``width`` distinct qubits with locality bias, avoiding an exact repeat."""
    for _ in range(64):
        anchor = rng.randrange(num_qubits)
        support = {anchor}
        while len(support) < width:
            if rng.random() < locality:
                # Neighbourhood draw around the most recent member.
                base = next(iter(support)) if len(support) == 1 else rng.choice(sorted(support))
                offset = rng.choice([-3, -2, -1, 1, 2, 3])
                candidate = min(max(base + offset, 0), num_qubits - 1)
            else:
                candidate = rng.randrange(num_qubits)
            support.add(candidate)
        if previous is None or frozenset(support) != previous:
            return list(support)
    # Extremely small registers may force a repeat; allow it rather than loop forever.
    return list(support)


def _scaled_profile(profile: Dict[int, int], base_qubits: int,
                    num_qubits: int) -> Dict[int, int]:
    """Scale per-arity gate counts proportionally to a different register size."""
    if num_qubits == base_qubits:
        return dict(profile)
    scale = num_qubits / base_qubits
    return {width: max(1, round(count * scale)) for width, count in profile.items()}


def bn(num_qubits: Optional[int] = None, seed: int = 2024) -> QuantumCircuit:
    """``bn`` benchmark: 48 lines, mixed CX / CCX network (Table 1b profile)."""
    base_qubits, profile = REVERSIBLE_PROFILES["bn"]
    qubits = num_qubits or base_qubits
    return synthesize_reversible(qubits, _scaled_profile(profile, base_qubits, qubits),
                                 seed=seed, name="bn")


def call(num_qubits: Optional[int] = None, seed: int = 2024) -> QuantumCircuit:
    """``call`` benchmark: 25 lines, CCX/CCCX-dominated network (Table 1b profile)."""
    base_qubits, profile = REVERSIBLE_PROFILES["call"]
    qubits = num_qubits or base_qubits
    return synthesize_reversible(qubits, _scaled_profile(profile, base_qubits, qubits),
                                 seed=seed, name="call")


def gray(num_qubits: Optional[int] = None, seed: int = 2024) -> QuantumCircuit:
    """``gray`` benchmark: 33 lines, pure CCX network (Table 1b profile)."""
    base_qubits, profile = REVERSIBLE_PROFILES["gray"]
    qubits = num_qubits or base_qubits
    return synthesize_reversible(qubits, _scaled_profile(profile, base_qubits, qubits),
                                 seed=seed, name="gray")
