"""Graph-state preparation benchmark circuit.

A graph state on a graph ``G = (V, E)`` is prepared by putting every vertex
qubit in ``|+>`` and applying one CZ per edge.  The MQT Bench ``graphstate``
benchmark uses a random 3-regular graph, which for ``n = 200`` vertices has
``3 n / 2 = 300`` edges; the paper's Table 1b lists 215 CZ gates, consistent
with a sparse random graph of average degree ~2.15.  The generator below is
deterministic given a seed and supports both regular and Erdős–Rényi-style
edge counts so that the benchmark description table can be regenerated
exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..circuit import QuantumCircuit

__all__ = ["graph_state", "graph_state_from_edges", "benchmark_graph"]


def graph_state_from_edges(num_qubits: int, edges: Iterable[Tuple[int, int]],
                           name: str = "graph") -> QuantumCircuit:
    """Prepare a graph state from an explicit edge list."""
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    seen = set()
    for u, v in edges:
        if u == v:
            raise ValueError("graph states have no self-loops")
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        circuit.cz(*key)
    return circuit


def benchmark_graph(num_qubits: int, num_edges: Optional[int] = None,
                    degree: Optional[int] = None, seed: int = 12345) -> nx.Graph:
    """Deterministic random graph matching the benchmark profile.

    Either an explicit ``num_edges`` (paper profile: roughly ``1.08 n`` edges,
    215 for n=200) or a ``degree`` for a random regular graph can be given.
    """
    if degree is not None:
        graph = nx.random_regular_graph(degree, num_qubits, seed=seed)
        return graph
    if num_edges is None:
        num_edges = max(1, round(1.075 * num_qubits))
    graph = nx.gnm_random_graph(num_qubits, num_edges, seed=seed)
    return graph


def graph_state(num_qubits: int, *, num_edges: Optional[int] = None,
                degree: Optional[int] = None, seed: int = 12345,
                name: str = "graph") -> QuantumCircuit:
    """Build a graph-state preparation circuit on a deterministic random graph."""
    graph = benchmark_graph(num_qubits, num_edges=num_edges, degree=degree, seed=seed)
    return graph_state_from_edges(num_qubits, graph.edges(), name=name)
