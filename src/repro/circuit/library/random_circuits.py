"""Randomised workload generators for stress tests and scaling studies.

The paper's evaluation uses six fixed benchmarks; scaling studies and fuzz
tests additionally need parameterised workloads whose structure can be dialed
between the two extremes the hybrid mapper cares about: local, highly
parallel circuits (shuttling-friendly once gathered) and long-range,
sequential circuits (SWAP-friendly on large-radius hardware).  All generators
are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..circuit import QuantumCircuit

__all__ = ["random_layered_circuit", "qaoa_maxcut_circuit", "local_window_circuit"]


def random_layered_circuit(num_qubits: int, num_layers: int, *,
                           multi_qubit_fraction: float = 0.0, seed: int = 7,
                           name: str = "random_layered") -> QuantumCircuit:
    """Brick-wall style random circuit.

    Each layer pairs up a random permutation of the qubits and applies a CZ to
    every pair (plus a random single-qubit rotation per qubit); a fraction of
    the layers' pairs is promoted to CCZ gates by absorbing a third qubit.

    Parameters
    ----------
    num_qubits / num_layers:
        Register size and number of entangling layers.
    multi_qubit_fraction:
        Fraction (0..1) of entangling gates widened to three qubits.
    seed:
        Seed of the deterministic construction.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    if not 0.0 <= multi_qubit_fraction <= 1.0:
        raise ValueError("multi_qubit_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}x{num_layers}")
    for _layer in range(num_layers):
        for qubit in range(num_qubits):
            circuit.rz(rng.uniform(0, 3.14159), qubit)
        order = list(range(num_qubits))
        rng.shuffle(order)
        index = 0
        while index + 1 < len(order):
            a, b = order[index], order[index + 1]
            if (multi_qubit_fraction > 0 and index + 2 < len(order)
                    and rng.random() < multi_qubit_fraction):
                circuit.ccz(a, b, order[index + 2])
                index += 3
            else:
                circuit.cz(a, b)
                index += 2
    return circuit


def qaoa_maxcut_circuit(num_qubits: int, *, edge_probability: float = 0.3,
                        rounds: int = 1, seed: int = 7,
                        name: str = "qaoa") -> QuantumCircuit:
    """QAOA MaxCut ansatz on an Erdős–Rényi graph.

    Per round: one ``CZ``-sandwiched ``RZ`` phase-separator per graph edge
    (compiled directly as ``CP``, which routes identically to ``CZ``) and one
    ``RX`` mixer per qubit.  The workload is interaction-graph-structured and
    therefore a natural study case for the layout strategies in
    :mod:`repro.mapping.initial_layout`.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    if not 0.0 < edge_probability <= 1.0:
        raise ValueError("edge probability must lie in (0, 1]")
    rng = random.Random(seed)
    edges = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)
             if rng.random() < edge_probability]
    if not edges:
        edges = [(0, 1)]
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for _round in range(rounds):
        gamma = rng.uniform(0, 3.14159)
        beta = rng.uniform(0, 3.14159)
        for a, b in edges:
            circuit.cp(2 * gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * beta, qubit)
    return circuit


def local_window_circuit(num_qubits: int, num_gates: int, *, window: int = 3,
                         seed: int = 7, name: str = "local") -> QuantumCircuit:
    """Circuit whose two-qubit gates only couple qubits within a sliding window.

    With the identity layout these gates are already (nearly) executable, so
    the workload isolates the mapper's overhead on well-localised circuits —
    the opposite extreme of :func:`qaoa_maxcut_circuit` on a dense graph.
    """
    if num_qubits < 2:
        raise ValueError("need at least two qubits")
    if window < 1:
        raise ValueError("window must be positive")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    for _ in range(num_gates):
        a = rng.randrange(num_qubits)
        offset = rng.randint(1, window)
        b = min(a + offset, num_qubits - 1)
        if a == b:
            b = max(a - offset, 0)
        if a == b:
            continue
        circuit.cz(a, b)
    return circuit
