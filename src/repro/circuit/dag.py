"""Directed acyclic dependency graph of a quantum circuit.

The DAG is the data structure behind the layer-creation block of the hybrid
mapping process (Section 3.2, block (1)): each node is a gate; an edge
``u -> v`` means gate ``v`` cannot execute before gate ``u`` because they act
on a common qubit and do not commute.  The *front layer* is the set of nodes
with no unexecuted predecessors; the *lookahead layer* collects the gates that
become available within a configurable depth behind the front layer.

The implementation keeps an explicit "executed" set so the mapper can mark
gates as done one by one and cheaply query the updated front layer, without
rebuilding the graph.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .circuit import QuantumCircuit
from .commutation import gates_commute
from .gate import Gate, GateKind

__all__ = ["CircuitDAG", "DAGNode"]


class DAGNode:
    """A gate together with its dependency bookkeeping."""

    __slots__ = ("index", "gate", "predecessors", "successors")

    def __init__(self, index: int, gate: Gate) -> None:
        self.index = index
        self.gate = gate
        self.predecessors: Set[int] = set()
        self.successors: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAGNode({self.index}, {self.gate.name}, qubits={self.gate.qubits})"


class CircuitDAG:
    """Commutation-aware dependency DAG with incremental execution state.

    Parameters
    ----------
    circuit:
        The circuit to analyse.
    use_commutation:
        If True (default), gates that commute with all unexecuted gates in
        front of them on their qubits may surface in the front layer early.
        If False, the DAG degrades to the plain "last gate on each wire"
        dependency structure.
    """

    def __init__(self, circuit: QuantumCircuit, use_commutation: bool = True) -> None:
        self.circuit = circuit
        self.use_commutation = use_commutation
        self.nodes: List[DAGNode] = [DAGNode(i, g) for i, g in enumerate(circuit)]
        self._executed: Set[int] = set()
        self._remaining_pred_count: Dict[int, int] = {}
        self._front: Set[int] = set()
        self._build_edges()
        self._initialise_front()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        """Create dependency edges.

        For every gate we walk backwards over the earlier gates that share a
        qubit.  A dependency edge is added to each such gate unless the two
        commute.  The backwards walk on a wire stops at the first
        non-commuting gate (anything earlier is already ordered transitively),
        which keeps construction close to linear for typical circuits.
        """
        last_blockers: Dict[int, List[int]] = {q: [] for q in range(self.circuit.num_qubits)}

        for node in self.nodes:
            gate = node.gate
            for qubit in gate.qubits:
                for other_index in reversed(last_blockers[qubit]):
                    other = self.nodes[other_index]
                    if self.use_commutation and gates_commute(gate, other.gate):
                        continue
                    if other_index not in node.predecessors:
                        node.predecessors.add(other_index)
                        other.successors.add(node.index)
                    break  # first non-commuting gate on this wire blocks transitively
            for qubit in gate.qubits:
                last_blockers[qubit].append(node.index)

        # With commutation enabled, transitive ordering through *commuting*
        # intermediaries is not guaranteed by the wire walk above, so add the
        # direct edge to every non-commuting earlier gate within the commuting
        # window.  This second pass only inspects the tail of each wire list up
        # to the first blocking gate found above, so it stays cheap.
        if self.use_commutation:
            self._add_window_edges()

    def _add_window_edges(self) -> None:
        per_wire: Dict[int, List[int]] = {q: [] for q in range(self.circuit.num_qubits)}
        for node in self.nodes:
            gate = node.gate
            for qubit in gate.qubits:
                wire = per_wire[qubit]
                for other_index in reversed(wire):
                    other = self.nodes[other_index]
                    if gates_commute(gate, other.gate):
                        continue
                    if other_index not in node.predecessors:
                        node.predecessors.add(other_index)
                        other.successors.add(node.index)
                    break
                wire.append(node.index)

    def _initialise_front(self) -> None:
        self._remaining_pred_count = {
            node.index: len(node.predecessors) for node in self.nodes
        }
        self._front = {
            node.index for node in self.nodes if not node.predecessors
        }

    # ------------------------------------------------------------------
    # Execution state
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.nodes)

    @property
    def num_executed(self) -> int:
        return len(self._executed)

    def is_finished(self) -> bool:
        return len(self._executed) == len(self.nodes)

    def is_executed(self, index: int) -> bool:
        return index in self._executed

    def execute(self, index: int) -> None:
        """Mark gate ``index`` as executed and release its successors."""
        if index in self._executed:
            raise ValueError(f"gate {index} already executed")
        if index not in self._front:
            raise ValueError(f"gate {index} is not in the front layer")
        self._executed.add(index)
        self._front.discard(index)
        for succ in self.nodes[index].successors:
            self._remaining_pred_count[succ] -= 1
            if self._remaining_pred_count[succ] == 0 and succ not in self._executed:
                self._front.add(succ)

    def execute_many(self, indices: Iterable[int]) -> None:
        for index in list(indices):
            self.execute(index)

    def reset(self) -> None:
        """Forget all execution state."""
        self._executed.clear()
        self._initialise_front()

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def front_layer(self) -> List[DAGNode]:
        """Gates with all dependencies satisfied, in circuit order."""
        return [self.nodes[i] for i in sorted(self._front)]

    def front_gate_indices(self) -> Set[int]:
        return set(self._front)

    def lookahead_layer(self, depth: int = 1) -> List[DAGNode]:
        """Gates that become available within ``depth`` releases behind the front.

        ``depth = 1`` returns the immediate successors of the current front
        layer (excluding gates already in the front); larger depths expand the
        horizon breadth-first.  The lookahead layer is used by both cost
        functions (Eq. 2 and Eq. 4) with the weighting factor ``w_l``.
        """
        if depth <= 0:
            return []
        seen: Set[int] = set(self._front) | set(self._executed)
        frontier: Set[int] = set(self._front)
        lookahead: List[int] = []
        for _ in range(depth):
            next_frontier: Set[int] = set()
            for index in frontier:
                for succ in self.nodes[index].successors:
                    if succ in seen:
                        continue
                    seen.add(succ)
                    next_frontier.add(succ)
                    lookahead.append(succ)
            if not next_frontier:
                break
            frontier = next_frontier
        return [self.nodes[i] for i in sorted(lookahead)]

    def layers(self) -> List[List[DAGNode]]:
        """Full layering of the circuit (destructively simulates execution).

        Returns the list of successive front layers if every available gate
        were executed greedily.  The DAG's execution state is restored
        afterwards, so this is safe to call at any time.
        """
        saved_executed = set(self._executed)
        saved_front = set(self._front)
        saved_counts = dict(self._remaining_pred_count)

        result: List[List[DAGNode]] = []
        while not self.is_finished():
            layer = self.front_layer()
            if not layer:
                break  # pragma: no cover - defensive, cannot happen for a DAG
            result.append(layer)
            for node in layer:
                self.execute(node.index)

        self._executed = saved_executed
        self._front = saved_front
        self._remaining_pred_count = saved_counts
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors_of(self, index: int) -> List[DAGNode]:
        return [self.nodes[i] for i in sorted(self.nodes[index].successors)]

    def predecessors_of(self, index: int) -> List[DAGNode]:
        return [self.nodes[i] for i in sorted(self.nodes[index].predecessors)]

    def entangling_front(self) -> List[DAGNode]:
        """Entangling gates currently in the front layer."""
        return [node for node in self.front_layer() if node.gate.is_entangling]

    def executable_trivially(self) -> List[DAGNode]:
        """Front-layer gates that need no routing (single-qubit, barrier, measure)."""
        return [node for node in self.front_layer() if not node.gate.is_entangling]
