"""Commutation rules between gates.

The layer creation step of the hybrid mapper (Section 3.2, block (1)) builds a
front layer "taking into account commutation rules": a gate may enter the
front layer even if an earlier gate on one of its qubits has not executed yet,
as long as the two gates commute.  The practically relevant rules for the NA
gate set are:

* gates with disjoint qubit supports always commute;
* diagonal gates (``Z``-type rotations, ``CZ``, ``CCZ``, ...) mutually
  commute, even when they share qubits;
* a ``C^{m-1}X`` commutes with a diagonal gate that only touches its
  *control* qubits (the controls remain in the computational basis);
* two ``C^{m-1}X`` gates commute if each one's target lies outside the
  other's support or both targets coincide and the shared qubits are
  otherwise controls on both sides (the standard CNOT commutation rules
  generalised to multiple controls);
* barriers and measurements never commute with anything that shares a qubit.
"""

from __future__ import annotations

from .gate import Gate, GateKind

__all__ = ["gates_commute"]


def _diagonal(gate: Gate) -> bool:
    return gate.is_diagonal


def gates_commute(first: Gate, second: Gate) -> bool:
    """Return True if ``first`` and ``second`` commute as operators.

    The check is conservative: when in doubt it returns False, which only
    shrinks the front layer and never produces an incorrect mapping.
    """
    shared = first.qubit_set() & second.qubit_set()
    if not shared:
        return True

    # Barriers and measurements are hard fences.
    for gate in (first, second):
        if gate.kind in (GateKind.BARRIER, GateKind.MEASURE):
            return False

    # Diagonal gates commute with each other regardless of shared qubits.
    if _diagonal(first) and _diagonal(second):
        return True

    # A controlled-X commutes with a diagonal gate acting only on its controls.
    for cx_gate, other in ((first, second), (second, first)):
        if cx_gate.kind == GateKind.CONTROLLED_X and _diagonal(other):
            if cx_gate.target not in other.qubit_set():
                return True

    # Two controlled-X gates.
    if first.kind == GateKind.CONTROLLED_X and second.kind == GateKind.CONTROLLED_X:
        first_controls = set(first.controls)
        second_controls = set(second.controls)
        target_clash = (first.target in second.qubit_set()) or (
            second.target in first.qubit_set())
        if not target_clash:
            # shared qubits are controls on both sides
            return True
        if first.target == second.target:
            # shared target, remaining shared qubits must be controls on both
            overlap = shared - {first.target}
            if overlap <= (first_controls & second_controls):
                return True
        return False

    # X gates on the same wire commute with CX targets on that wire.
    for x_gate, other in ((first, second), (second, first)):
        if (x_gate.kind == GateKind.SINGLE and x_gate.name == "x"
                and other.kind == GateKind.CONTROLLED_X
                and x_gate.qubits[0] == other.target):
            return True

    return False
