"""Minimal OpenQASM 2 subset reader and writer.

The reproduction does not depend on qiskit, so this module provides just
enough QASM support to import MQT-Bench-style benchmark files and to export
mapped circuits for inspection.  Supported statements:

* ``OPENQASM 2.0;`` header and ``include "qelib1.inc";`` (ignored)
* a single quantum register ``qreg q[n];`` (multiple registers are
  concatenated in declaration order)
* classical registers ``creg c[n];`` (parsed, otherwise ignored)
* gate applications from the standard library understood by
  :mod:`repro.circuit.gate` — single-qubit gates with optional parameters,
  ``cz``/``ccz``/``cccz``, ``cx``/``ccx``/``c3x``/``c4x``, ``cp``/``cu1``,
  ``swap``, ``barrier``, ``measure``
* comments (``//``) and blank lines

Parameter expressions may use ``pi``, numeric literals, and the operators
``+ - * /`` (evaluated with a tiny safe evaluator, no ``eval``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Sequence, Tuple

from .circuit import QuantumCircuit
from .gate import Gate, GateKind, controlled_x, controlled_z, single_qubit_gate

__all__ = ["loads", "dumps", "load", "dump", "QasmError"]


class QasmError(ValueError):
    """Raised when a QASM document cannot be parsed."""


_TOKEN_RE = re.compile(
    r"\s*(?:((?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)|(pi)|([+\-*/()]))")


def _evaluate_parameter(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * / and parens)."""
    tokens: List[str] = []
    pos = 0
    expr = expr.strip()
    while pos < len(expr):
        match = _TOKEN_RE.match(expr, pos)
        if not match:
            raise QasmError(f"cannot parse parameter expression {expr!r}")
        number, pi_token, operator = match.groups()
        if number is not None:
            tokens.append(number)
        elif pi_token is not None:
            tokens.append("pi")
        else:
            tokens.append(operator)
        pos = match.end()

    # Recursive-descent evaluation: expr := term (("+"|"-") term)*
    index = 0

    def parse_expression() -> float:
        nonlocal index
        value = parse_term()
        while index < len(tokens) and tokens[index] in "+-":
            operator = tokens[index]
            index += 1
            rhs = parse_term()
            value = value + rhs if operator == "+" else value - rhs
        return value

    def parse_term() -> float:
        nonlocal index
        value = parse_factor()
        while index < len(tokens) and tokens[index] in "*/":
            operator = tokens[index]
            index += 1
            rhs = parse_factor()
            if operator == "*":
                value *= rhs
            else:
                value /= rhs
        return value

    def parse_factor() -> float:
        nonlocal index
        if index >= len(tokens):
            raise QasmError(f"unexpected end of expression in {expr!r}")
        token = tokens[index]
        if token == "-":
            index += 1
            return -parse_factor()
        if token == "+":
            index += 1
            return parse_factor()
        if token == "(":
            index += 1
            value = parse_expression()
            if index >= len(tokens) or tokens[index] != ")":
                raise QasmError(f"unbalanced parentheses in {expr!r}")
            index += 1
            return value
        index += 1
        if token == "pi":
            return math.pi
        return float(token)

    result = parse_expression()
    if index != len(tokens):
        raise QasmError(f"trailing tokens in parameter expression {expr!r}")
    return result


_QREG_RE = re.compile(r"qreg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(
    r"([A-Za-z_][\w]*)\s*(?:\((.*)\))?\s+(.+)")
_OPERAND_RE = re.compile(r"([A-Za-z_][\w]*)\s*\[\s*(\d+)\s*\]")

# Mapping from QASM controlled-X spellings to the number of controls.
_MCX_NAMES = {"cx": 1, "ccx": 2, "c3x": 3, "c4x": 4, "mcx": None}
_MCZ_NAMES = {"cz": 2, "ccz": 3, "cccz": 4, "c3z": 4, "c4z": 5}


def loads(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2 document into a :class:`QuantumCircuit`."""
    register_offsets: Dict[str, int] = {}
    total_qubits = 0
    gates: List[Tuple[str, List[float], List[Tuple[str, int]]]] = []

    statements = _split_statements(text)
    for statement in statements:
        if not statement:
            continue
        lowered = statement.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        qreg_match = _QREG_RE.match(statement)
        if qreg_match:
            reg_name, size = qreg_match.group(1), int(qreg_match.group(2))
            register_offsets[reg_name] = total_qubits
            total_qubits += size
            continue
        if _CREG_RE.match(statement):
            continue
        if lowered.startswith("measure"):
            operands = _OPERAND_RE.findall(statement)
            if operands:
                gates.append(("measure", [], [(operands[0][0], int(operands[0][1]))]))
            continue
        if lowered.startswith("barrier"):
            operands = _OPERAND_RE.findall(statement)
            gates.append(("barrier", [], [(reg, int(idx)) for reg, idx in operands]))
            continue
        gate_match = _GATE_RE.match(statement)
        if not gate_match:
            raise QasmError(f"cannot parse statement {statement!r}")
        gate_name = gate_match.group(1).lower()
        param_text = gate_match.group(2)
        params = ([_evaluate_parameter(p) for p in param_text.split(",")]
                  if param_text else [])
        operands = [(reg, int(idx)) for reg, idx in _OPERAND_RE.findall(gate_match.group(3))]
        if not operands:
            raise QasmError(f"gate {gate_name} without operands in {statement!r}")
        gates.append((gate_name, params, operands))

    if total_qubits == 0:
        raise QasmError("no qreg declaration found")

    circuit = QuantumCircuit(total_qubits, name)

    def resolve(operand: Tuple[str, int]) -> int:
        reg, idx = operand
        if reg not in register_offsets:
            raise QasmError(f"unknown register {reg!r}")
        return register_offsets[reg] + idx

    for gate_name, params, operands in gates:
        qubits = [resolve(op) for op in operands]
        circuit.append(_build_gate(gate_name, params, qubits))
    return circuit


def _build_gate(name: str, params: Sequence[float], qubits: Sequence[int]) -> Gate:
    if name == "measure":
        return Gate("measure", tuple(qubits), (), GateKind.MEASURE)
    if name == "barrier":
        return Gate("barrier", tuple(qubits), (), GateKind.BARRIER)
    if name == "swap":
        return Gate("swap", tuple(qubits), (), GateKind.SWAP)
    if name in _MCZ_NAMES:
        return controlled_z(qubits)
    if name in ("cp", "cu1"):
        return Gate("cp", tuple(qubits), tuple(params), GateKind.CONTROLLED_Z)
    if name in _MCX_NAMES:
        return controlled_x(qubits[:-1], qubits[-1])
    if len(qubits) == 1:
        return single_qubit_gate(name, qubits[0], *params)
    raise QasmError(f"unsupported gate {name!r} on {len(qubits)} qubits")


def _split_statements(text: str) -> List[str]:
    cleaned_lines = []
    for line in text.splitlines():
        comment = line.find("//")
        if comment >= 0:
            line = line[:comment]
        cleaned_lines.append(line)
    joined = "\n".join(cleaned_lines)
    return [statement.strip() for statement in joined.split(";")]


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    operands = ",".join(f"q[{q}]" for q in gate.qubits)
    if gate.kind == GateKind.MEASURE:
        return f"measure q[{gate.qubits[0]}] -> c[{gate.qubits[0]}];"
    if gate.kind == GateKind.BARRIER:
        return f"barrier {operands};"
    name = gate.name
    if gate.kind == GateKind.CONTROLLED_X and gate.num_qubits >= 4:
        name = f"c{gate.num_qubits - 1}x"
    if gate.params:
        params = ",".join(repr(p) for p in gate.params)
        return f"{name}({params}) {operands};"
    return f"{name} {operands};"


def load(path: str) -> QuantumCircuit:
    """Read a circuit from a QASM file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), name=path)


def dump(circuit: QuantumCircuit, path: str) -> None:
    """Write a circuit to a QASM file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit))
