"""Quantum circuit substrate: gates, circuits, DAG analysis and decompositions."""

from .circuit import QuantumCircuit
from .commutation import gates_commute
from .dag import CircuitDAG, DAGNode
from .decompose import (
    decompose_mcx_to_mcz,
    decompose_swaps_to_cz,
    decompose_to_native,
    swap_decomposition,
)
from .gate import (
    Gate,
    GateKind,
    controlled_x,
    controlled_z,
    single_qubit_gate,
    swap_gate,
)

__all__ = [
    "QuantumCircuit",
    "Gate",
    "GateKind",
    "CircuitDAG",
    "DAGNode",
    "gates_commute",
    "single_qubit_gate",
    "controlled_z",
    "controlled_x",
    "swap_gate",
    "decompose_mcx_to_mcz",
    "decompose_swaps_to_cz",
    "decompose_to_native",
    "swap_decomposition",
]
