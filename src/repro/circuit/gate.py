"""Gate model for the reproduction's quantum circuit IR.

The hybrid mapper only needs a structural view of gates: which qubits a gate
acts on, whether the gate is a single-qubit operation, a two-qubit entangling
gate, or an ``m``-qubit multi-controlled phase gate, and whether two gates
commute.  Nevertheless the gate model carries enough semantic information
(names, parameters, matrices for the small standard gates) to support
round-tripping through OpenQASM and to implement exact decomposition passes.

The native gate set assumed by the paper (Section 2.1 and Table 1c) is:

* arbitrary single-qubit rotations (``U3`` and friends), executed with laser
  pulses on individually addressed atoms,
* the multi-controlled phase gates ``CZ``, ``CCZ``, ``CCCZ`` (``C^{m-1}Z``)
  realised via the Rydberg blockade,
* and, for circuit input convenience, the multi-controlled ``C^{m-1}X`` gates
  produced by reversible-logic synthesis, which are decomposed to ``C^{m-1}Z``
  conjugated by Hadamards before mapping (Section 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

__all__ = [
    "Gate",
    "GateKind",
    "single_qubit_gate",
    "controlled_z",
    "controlled_x",
    "swap_gate",
    "barrier",
    "measurement",
    "STANDARD_SINGLE_QUBIT_NAMES",
    "DIAGONAL_SINGLE_QUBIT_NAMES",
]


#: Names of single-qubit gates understood by the QASM reader/writer and the
#: decomposition passes.
STANDARD_SINGLE_QUBIT_NAMES = frozenset(
    {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
     "rx", "ry", "rz", "p", "u1", "u2", "u3", "u"}
)

#: Single-qubit gates that are diagonal in the computational basis.  These
#: commute with any other diagonal gate (in particular with CZ-type gates)
#: acting on the same qubit, which the commutation analysis exploits.
DIAGONAL_SINGLE_QUBIT_NAMES = frozenset({"id", "z", "s", "sdg", "t", "tdg", "rz", "p", "u1"})


class GateKind:
    """Coarse classification of gates used throughout the mapper."""

    SINGLE = "single"
    CONTROLLED_Z = "cz"            # C^{m-1}Z for any m >= 2
    CONTROLLED_X = "cx"            # C^{m-1}X for any m >= 2
    SWAP = "swap"
    BARRIER = "barrier"
    MEASURE = "measure"

    ALL = (SINGLE, CONTROLLED_Z, CONTROLLED_X, SWAP, BARRIER, MEASURE)


@dataclass(frozen=True)
class Gate:
    """A single circuit operation.

    Attributes
    ----------
    name:
        Lower-case gate mnemonic (``"h"``, ``"cz"``, ``"ccz"``, ``"ccx"``,
        ``"swap"``, ...).
    qubits:
        Tuple of circuit-qubit indices the gate acts on.  For controlled
        gates the last qubit is the target and the preceding qubits are
        controls; for the symmetric ``C^{m-1}Z`` family the distinction is
        irrelevant for mapping but preserved for QASM output.
    params:
        Tuple of real parameters (rotation angles) for parameterised gates.
    kind:
        One of :class:`GateKind`.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default_factory=tuple)
    kind: str = GateKind.SINGLE

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name} acts on duplicate qubits {self.qubits}")
        if self.kind not in GateKind.ALL:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if self.kind == GateKind.SINGLE and len(self.qubits) != 1:
            raise ValueError(f"single-qubit gate {self.name} got qubits {self.qubits}")
        if self.kind in (GateKind.CONTROLLED_Z, GateKind.CONTROLLED_X) and len(self.qubits) < 2:
            raise ValueError(f"controlled gate {self.name} needs at least two qubits")
        if self.kind == GateKind.SWAP and len(self.qubits) != 2:
            raise ValueError("swap gate acts on exactly two qubits")

    # ------------------------------------------------------------------
    # Structural queries used by the mapper
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_single_qubit(self) -> bool:
        return self.kind == GateKind.SINGLE

    @property
    def is_entangling(self) -> bool:
        """True for gates that require qubits to be within the interaction radius."""
        return self.kind in (GateKind.CONTROLLED_Z, GateKind.CONTROLLED_X, GateKind.SWAP)

    @property
    def is_multi_qubit(self) -> bool:
        """True for gates on three or more qubits (``m >= 3``)."""
        return self.is_entangling and self.num_qubits >= 3

    @property
    def is_diagonal(self) -> bool:
        """True if the gate is diagonal in the computational basis.

        Diagonal gates mutually commute, which the layer construction uses to
        enlarge the front layer (Section 3.2, block (1)).
        """
        if self.kind == GateKind.CONTROLLED_Z:
            return True
        if self.kind == GateKind.SINGLE:
            return self.name in DIAGONAL_SINGLE_QUBIT_NAMES
        return False

    @property
    def controls(self) -> Tuple[int, ...]:
        """Control qubits of a controlled gate (empty otherwise)."""
        if self.kind in (GateKind.CONTROLLED_Z, GateKind.CONTROLLED_X):
            return self.qubits[:-1]
        return ()

    @property
    def target(self) -> Optional[int]:
        """Target qubit of a controlled gate, or the single qubit, or ``None``."""
        if self.kind in (GateKind.CONTROLLED_Z, GateKind.CONTROLLED_X, GateKind.SINGLE):
            return self.qubits[-1]
        return None

    def qubit_set(self) -> frozenset:
        return frozenset(self.qubits)

    def overlaps(self, other: "Gate") -> bool:
        """True if the two gates share at least one qubit."""
        return bool(self.qubit_set() & other.qubit_set())

    def remapped(self, mapping: dict) -> "Gate":
        """Return a copy of the gate with qubit indices translated by ``mapping``."""
        return Gate(
            name=self.name,
            qubits=tuple(mapping[q] for q in self.qubits),
            params=self.params,
            kind=self.kind,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            angles = ",".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({angles}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def single_qubit_gate(name: str, qubit: int, *params: float) -> Gate:
    """Create a named single-qubit gate.

    ``name`` must be one of :data:`STANDARD_SINGLE_QUBIT_NAMES`.
    """
    lowered = name.lower()
    if lowered not in STANDARD_SINGLE_QUBIT_NAMES:
        raise ValueError(f"unknown single-qubit gate {name!r}")
    return Gate(lowered, (qubit,), tuple(float(p) for p in params), GateKind.SINGLE)


def controlled_z(qubits: Sequence[int]) -> Gate:
    """Create a ``C^{m-1}Z`` gate on ``qubits`` (``m = len(qubits) >= 2``)."""
    qubits = tuple(int(q) for q in qubits)
    if len(qubits) < 2:
        raise ValueError("controlled_z needs at least two qubits")
    name = "c" * (len(qubits) - 1) + "z"
    return Gate(name, qubits, (), GateKind.CONTROLLED_Z)


def controlled_x(controls: Sequence[int], target: int) -> Gate:
    """Create a ``C^{m-1}X`` gate with the given controls and target."""
    controls = tuple(int(q) for q in controls)
    if not controls:
        raise ValueError("controlled_x needs at least one control")
    name = "c" * len(controls) + "x"
    return Gate(name, controls + (int(target),), (), GateKind.CONTROLLED_X)


def swap_gate(qubit_a: int, qubit_b: int) -> Gate:
    """Create a SWAP gate."""
    return Gate("swap", (int(qubit_a), int(qubit_b)), (), GateKind.SWAP)


def barrier(qubits: Iterable[int]) -> Gate:
    """Create a barrier over ``qubits`` (scheduling/commutation fence)."""
    return Gate("barrier", tuple(int(q) for q in qubits), (), GateKind.BARRIER)


def measurement(qubit: int) -> Gate:
    """Create a terminal measurement on ``qubit``."""
    return Gate("measure", (int(qubit),), (), GateKind.MEASURE)


def gate_arity_name(num_qubits: int, base: str) -> str:
    """Return the canonical mnemonic of an ``num_qubits``-qubit controlled gate.

    ``gate_arity_name(3, "z") == "ccz"``.
    """
    if num_qubits < 2:
        raise ValueError("controlled gates act on at least two qubits")
    return "c" * (num_qubits - 1) + base


def euler_angles_of(gate: Gate) -> Tuple[float, float, float]:
    """Return ``(theta, phi, lambda)`` U3 angles for a standard single-qubit gate.

    Used by the scheduler to treat every single-qubit gate as one U3 pulse of
    duration ``t_U3`` (Table 1c).  Parameterised gates pass their own angles
    through; named Cliffords map onto their textbook angles.
    """
    if not gate.is_single_qubit:
        raise ValueError("euler_angles_of expects a single-qubit gate")
    name = gate.name
    p = gate.params
    pi = math.pi
    table = {
        "id": (0.0, 0.0, 0.0),
        "x": (pi, 0.0, pi),
        "y": (pi, pi / 2, pi / 2),
        "z": (0.0, 0.0, pi),
        "h": (pi / 2, 0.0, pi),
        "s": (0.0, 0.0, pi / 2),
        "sdg": (0.0, 0.0, -pi / 2),
        "t": (0.0, 0.0, pi / 4),
        "tdg": (0.0, 0.0, -pi / 4),
        "sx": (pi / 2, -pi / 2, pi / 2),
        "sxdg": (pi / 2, pi / 2, -pi / 2),
    }
    if name in table:
        return table[name]
    if name == "rx":
        return (p[0], -pi / 2, pi / 2)
    if name == "ry":
        return (p[0], 0.0, 0.0)
    if name in ("rz", "p", "u1"):
        return (0.0, 0.0, p[0])
    if name == "u2":
        return (pi / 2, p[0], p[1])
    if name in ("u3", "u"):
        return (p[0], p[1], p[2])
    raise ValueError(f"cannot derive U3 angles for gate {name!r}")
