"""Gate decomposition passes.

Two decompositions matter for the reproduction (Sections 2.2 and 4.1):

* ``C^{m-1}X -> H(target) C^{m-1}Z H(target)`` — benchmark circuits produced
  by reversible-logic synthesis use multi-controlled X gates, while the NA
  hardware natively executes multi-controlled Z gates.
* ``SWAP -> 3 CZ + single-qubit rotations`` — SWAP gates inserted by the
  gate-based router are decomposed into the native gate set before the final
  scheduling step (process block (5)).  A SWAP equals three CX gates with
  alternating direction, and each CX equals ``H(target) CZ H(target)``, so the
  canonical decomposition costs three CZ and six H gates (no adjacent
  Hadamard pair acts on the same qubit, so nothing cancels).
"""

from __future__ import annotations

from typing import List

from .circuit import QuantumCircuit
from .gate import Gate, GateKind, controlled_z, single_qubit_gate

__all__ = [
    "decompose_mcx_to_mcz",
    "decompose_swaps_to_cz",
    "decompose_to_native",
    "swap_decomposition",
    "cx_decomposition",
]


def cx_decomposition(control: int, target: int) -> List[Gate]:
    """``CX = H(t) . CZ(c, t) . H(t)``."""
    return [
        single_qubit_gate("h", target),
        controlled_z((control, target)),
        single_qubit_gate("h", target),
    ]


def swap_decomposition(qubit_a: int, qubit_b: int) -> List[Gate]:
    """SWAP as three CZ gates plus single-qubit Hadamards.

    ``SWAP(a, b) = CX(a, b) CX(b, a) CX(a, b)``; writing each CX through CZ
    and cancelling the back-to-back Hadamard pairs on the middle legs yields
    the pulse-count-optimal sequence of 3 CZ and 4 H gates.
    """
    return [
        single_qubit_gate("h", qubit_b),
        controlled_z((qubit_a, qubit_b)),
        single_qubit_gate("h", qubit_b),
        single_qubit_gate("h", qubit_a),
        controlled_z((qubit_b, qubit_a)),
        single_qubit_gate("h", qubit_a),
        single_qubit_gate("h", qubit_b),
        controlled_z((qubit_a, qubit_b)),
        single_qubit_gate("h", qubit_b),
    ]


def mcx_decomposition(gate: Gate) -> List[Gate]:
    """``C^{m-1}X = H(t) . C^{m-1}Z . H(t)`` for any number of controls."""
    if gate.kind != GateKind.CONTROLLED_X:
        raise ValueError("mcx_decomposition expects a controlled-X gate")
    target = gate.target
    assert target is not None
    return [
        single_qubit_gate("h", target),
        controlled_z(gate.qubits),
        single_qubit_gate("h", target),
    ]


def decompose_mcx_to_mcz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Return a copy of ``circuit`` with every ``C^{m-1}X`` rewritten to ``C^{m-1}Z``."""
    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for gate in circuit:
        if gate.kind == GateKind.CONTROLLED_X:
            result.extend(mcx_decomposition(gate))
        else:
            result.append(gate)
    return result


def decompose_swaps_to_cz(circuit: QuantumCircuit, optimised: bool = True) -> QuantumCircuit:
    """Return a copy of ``circuit`` with every SWAP decomposed to CZ + H.

    The canonical 3-CZ / 6-H sequence is already pulse-count minimal for the
    NA gate set (no adjacent Hadamard pair shares a qubit); the ``optimised``
    flag is kept for API compatibility and has no effect.
    """
    del optimised
    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for gate in circuit:
        if gate.kind == GateKind.SWAP:
            result.extend(swap_decomposition(*gate.qubits))
        else:
            result.append(gate)
    return result


def decompose_to_native(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite ``circuit`` entirely in the NA-native gate set.

    Native gates are single-qubit rotations and the multi-controlled Z family;
    this pass removes controlled-X gates and SWAPs, and leaves everything else
    untouched.  Barriers and measurements are preserved.
    """
    return decompose_swaps_to_cz(decompose_mcx_to_mcz(circuit))
