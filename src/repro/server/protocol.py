"""Wire protocol of the serving gateway: newline-delimited JSON.

Dependency-free by design (the repo may not install an RPC stack): every
request and response is one JSON object per line over a TCP stream.

Requests
--------
``{"op": "compile", "task": {...}}``
    ``task`` is a :class:`~repro.service.CompilationTask` in wire form —
    ``task_id``, ``architecture`` (an :class:`~repro.service.ArchitectureSpec`
    field dict), and either ``circuit_name``/``num_qubits``/``seed`` or a
    ``qasm`` document, plus ``mode``/``alpha``.  Three optional envelope
    fields ride outside ``task``: ``timeout_s`` (client deadline budget,
    tightened against the server's own per-task deadline), ``request_id``
    (client-assigned idempotency token, echoed verbatim in the response so
    a reconnecting client can pair retried requests with late answers),
    and ``trace`` (truthy → the response carries a Chrome-trace span tree
    of this request under its ``trace`` field).
``{"op": "stats"}``
    Gateway + store counters.
``{"op": "metrics"}``
    Telemetry registry snapshot (:mod:`repro.telemetry`).  Default is the
    JSON snapshot; ``{"op": "metrics", "format": "prometheus"}`` returns
    the Prometheus text exposition under a ``"text"`` key instead.
``{"op": "health"}``
    Supervision snapshot: overall ``status`` plus pool / circuit-breaker /
    retry / store counters (the operational surface of
    :mod:`repro.resilience`).
``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness probe / graceful stop (used by CI and the load generator).
    Shutdown drains: in-flight compiles finish before the server exits.

Responses
---------
Every response carries ``ok``; compile responses add ``source``
(``"store"`` | ``"coalesced"`` | ``"compiled"`` | ``"degraded"``), the
op-stream ``digest`` (same shape as
:meth:`repro.mapping.MappingResult.op_stream_digest`, so byte-identity
between a hit and a fresh compile is a straight comparison), the Table-1a
``metrics`` row, and ``server_seconds``.  Failures additionally carry
``error_class`` — ``"retryable"`` / ``"permanent"`` / ``"shed"`` (see
:mod:`repro.resilience.errors`) — so clients know whether resubmitting the
identical request can help.  New fields are backward-compatible: old
clients ignore them (``from_wire`` filters to known fields).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional

from ..service.batch import CompilationTask
from ..service.cache import ArchitectureSpec
from ..store.artifact import CompiledArtifact

__all__ = [
    "ProtocolError",
    "ServeResponse",
    "task_to_wire",
    "task_from_wire",
    "spec_to_wire",
    "spec_from_wire",
    "encode_line",
    "decode_line",
]


class ProtocolError(ValueError):
    """Raised when a wire payload cannot be decoded into a request/response."""


# ----------------------------------------------------------------------
# Line framing
# ----------------------------------------------------------------------
def encode_line(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("wire payload must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# ArchitectureSpec <-> wire
# ----------------------------------------------------------------------
def spec_to_wire(spec: ArchitectureSpec) -> Dict[str, Any]:
    """Field dict of a spec (nested tuples become JSON arrays)."""
    payload: Dict[str, Any] = {}
    for field_spec in fields(spec):
        value = getattr(spec, field_spec.name)
        if isinstance(value, tuple):
            value = [list(entry) if isinstance(entry, tuple) else entry
                     for entry in value]
        payload[field_spec.name] = value
    return payload


def spec_from_wire(payload: Dict[str, Any]) -> ArchitectureSpec:
    """Rebuild a spec; ``__post_init__`` re-normalises list-form layouts."""
    if not isinstance(payload, dict):
        raise ProtocolError("architecture must be a JSON object of spec fields")
    known = {field_spec.name for field_spec in fields(ArchitectureSpec)}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown architecture field(s) {sorted(unknown)}")
    if "hardware" not in payload:
        raise ProtocolError("architecture is missing the 'hardware' field")
    try:
        return ArchitectureSpec(**payload)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid architecture spec: {exc}") from None


# ----------------------------------------------------------------------
# CompilationTask <-> wire
# ----------------------------------------------------------------------
def task_to_wire(task: CompilationTask) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "task_id": task.task_id,
        "architecture": spec_to_wire(task.architecture),
        "mode": task.mode,
        "alpha": task.alpha,
        "seed": task.seed,
    }
    if task.qasm is not None:
        payload["qasm"] = task.qasm
    if task.circuit_name is not None:
        payload["circuit_name"] = task.circuit_name
    if task.num_qubits is not None:
        payload["num_qubits"] = task.num_qubits
    return payload


def task_from_wire(payload: Dict[str, Any]) -> CompilationTask:
    if not isinstance(payload, dict):
        raise ProtocolError("task must be a JSON object")
    if "task_id" not in payload or "architecture" not in payload:
        raise ProtocolError("task needs 'task_id' and 'architecture' fields")
    try:
        return CompilationTask(
            task_id=str(payload["task_id"]),
            architecture=spec_from_wire(payload["architecture"]),
            circuit_name=payload.get("circuit_name"),
            num_qubits=(None if payload.get("num_qubits") is None
                        else int(payload["num_qubits"])),
            seed=int(payload.get("seed", 2024)),
            qasm=payload.get("qasm"),
            mode=str(payload.get("mode", "hybrid")),
            alpha=float(payload.get("alpha", 1.0)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid task: {exc}") from None


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeResponse:
    """Outcome of one compile request (gateway-side and wire-side shape)."""

    ok: bool
    task_id: str
    source: Optional[str] = None       # "store" | "coalesced" | "compiled"
    digest: Optional[Dict[str, Any]] = None
    circuit_name: Optional[str] = None
    mode: Optional[str] = None
    num_qubits: Optional[int] = None
    metrics: Optional[Dict[str, Any]] = None
    runtime_seconds: Optional[float] = None
    server_seconds: float = 0.0
    error: Optional[str] = None
    #: Retryability of a failure ("retryable" | "permanent" | "shed");
    #: ``None`` on success and from pre-taxonomy servers.
    error_class: Optional[str] = None
    #: Client-assigned idempotency token, echoed verbatim (never generated
    #: server-side) so retrying clients can pair responses to requests.
    request_id: Optional[str] = None
    #: Chrome-trace payload (``trace_id`` + ``traceEvents``) attached when
    #: the request asked for ``"trace": true``; ``None`` otherwise.
    trace: Optional[Dict[str, Any]] = None

    @classmethod
    def from_artifact(cls, task: CompilationTask, circuit_name: str,
                      artifact: CompiledArtifact, source: str,
                      server_seconds: float) -> "ServeResponse":
        metrics = artifact.metrics_for(circuit_name)
        return cls(
            ok=True,
            task_id=task.task_id,
            source=source,
            digest=artifact.op_stream_digest(),
            circuit_name=circuit_name,
            mode=artifact.mode,
            num_qubits=artifact.num_qubits,
            metrics=None if metrics is None else asdict(metrics),
            runtime_seconds=artifact.runtime_seconds,
            server_seconds=server_seconds,
        )

    @classmethod
    def failure(cls, task_id: str, error: str,
                server_seconds: float = 0.0,
                error_class: Optional[str] = None) -> "ServeResponse":
        return cls(ok=False, task_id=task_id, error=error,
                   server_seconds=server_seconds, error_class=error_class)

    def with_request_id(self, request_id: Optional[str]) -> "ServeResponse":
        """Copy with the client's idempotency token echoed back."""
        if request_id is None:
            return self
        return replace(self, request_id=str(request_id))

    def to_wire(self) -> Dict[str, Any]:
        payload = {"op": "compile", **asdict(self)}
        return {key: value for key, value in payload.items() if value is not None
                or key in ("ok",)}

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "ServeResponse":
        known = {field_spec.name for field_spec in fields(cls)}
        data = {key: value for key, value in payload.items() if key in known}
        if "ok" not in data or "task_id" not in data:
            raise ProtocolError("compile response needs 'ok' and 'task_id'")
        return cls(**data)
