"""TCP front-end of the serving gateway (newline-delimited JSON).

:class:`ServingServer` binds an :class:`asyncio` stream server to a host and
port, parses one request object per line (see
:mod:`repro.server.protocol`) and dispatches compiles to a
:class:`~repro.server.gateway.ServingGateway`.  Connections are handled
concurrently by the event loop; a malformed line fails only its own request,
and a dropped connection only its own handler.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from .._version import __version__
from .gateway import ServingGateway
from .protocol import ProtocolError, decode_line, encode_line, task_from_wire

__all__ = ["ServingServer"]


class ServingServer:
    """Asyncio TCP server wrapping a gateway.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` to learn the actual one (used by tests, the self-test
    harness and the load generator).
    """

    def __init__(self, gateway: ServingGateway, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.gateway = gateway
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.gateway.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.gateway.close()

    async def __aenter__(self) -> "ServingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(encode_line(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, line: bytes) -> Dict[str, object]:
        """One request line → one response object; errors stay per-request."""
        try:
            payload = decode_line(line)
            op = payload.get("op")
            if op == "compile":
                task = task_from_wire(payload.get("task"))
                response = await self.gateway.compile(task)
                return response.to_wire()
            if op == "stats":
                return {"ok": True, "op": "stats", "version": __version__,
                        **self.gateway.stats_dict()}
            if op == "ping":
                return {"ok": True, "op": "pong", "version": __version__}
            if op == "shutdown":
                self._shutdown.set()
                return {"ok": True, "op": "shutdown"}
            raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            return {"ok": False, "op": "error", "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - isolate per request
            return {"ok": False, "op": "error",
                    "error": f"{type(exc).__name__}: {exc}"}
