"""TCP front-end of the serving gateway (newline-delimited JSON).

:class:`ServingServer` binds an :class:`asyncio` stream server to a host and
port, parses one request object per line (see
:mod:`repro.server.protocol`) and dispatches compiles to a
:class:`~repro.server.gateway.ServingGateway`.  Connections are handled
concurrently by the event loop.

Ugly input is part of the contract, not an exception path: a malformed line
fails only its own request, an **oversized** line (beyond
``max_line_bytes``) gets a structured error before its connection is
dropped (line framing past an overrun is unrecoverable) while the listener
keeps serving every other client, a client that disconnects mid-request or
mid-response only tears down its own handler — and every such event is counted in
:class:`ServerStats` and logged, so operators can see abuse without the
server caring.  Shutdown drains: accepted compiles finish (bounded by the
gateway's drain budget) before the listener goes away.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, Optional

from .._version import __version__
from ..telemetry.registry import CounterSet, get_registry
from .gateway import ServingGateway
from .protocol import ProtocolError, decode_line, encode_line, task_from_wire

__all__ = ["ServingServer", "ServerStats"]

logger = logging.getLogger("repro.server")

#: Default per-line cap.  A compile request with a large QASM document fits
#: comfortably; a runaway (or hostile) client that never sends a newline is
#: bounded at this many bytes instead of growing the read buffer forever.
DEFAULT_MAX_LINE_BYTES = 8 * 1024 * 1024


class ServerStats(CounterSet):
    """Connection-level counters (the gateway counts request-level ones).

    Registry-backed (``repro_server_*_total``); attribute reads and ``+=``
    writes keep working for handlers and tests.
    """

    PREFIX = "repro_server"
    FIELDS = ("connections", "requests", "malformed_lines",
              "oversized_lines", "disconnects_mid_request",
              "disconnects_mid_response")
    HELP = {
        "connections": "TCP connections accepted",
        "requests": "Request lines received",
        "malformed_lines": "Lines rejected by the protocol decoder",
        "oversized_lines": "Lines dropped for exceeding max_line_bytes",
        "disconnects_mid_request": "Clients gone while sending a request",
        "disconnects_mid_response": "Clients gone while receiving a response",
    }


class ServingServer:
    """Asyncio TCP server wrapping a gateway.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` to learn the actual one (used by tests, the self-test
    harness and the load generator).

    ``fault_plan`` is the chaos-test seam: a
    :class:`~repro.resilience.FaultPlan` with ``tcp-response`` faults makes
    the server abort the connection midway through writing a matching
    response, exercising client reconnect/retry.  Never set in production.
    """

    def __init__(self, gateway: ServingGateway, host: str = "127.0.0.1",
                 port: int = 0, *,
                 max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
                 drain_timeout_s: float = 30.0,
                 fault_plan=None) -> None:
        self.gateway = gateway
        self.host = host
        self.max_line_bytes = max_line_bytes
        self.drain_timeout_s = drain_timeout_s
        self.fault_plan = fault_plan
        self.stats = ServerStats()
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self.gateway.start()
        # ``limit`` bounds the StreamReader buffer: a line longer than this
        # raises LimitOverrunError instead of consuming unbounded memory.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port,
            limit=self.max_line_bytes)

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain before teardown: every accepted compile finishes (or the
        # budget expires) before the pools disappear under it.
        drained = await self.gateway.drain(self.drain_timeout_s)
        if not drained:  # pragma: no cover - pathological hang
            logger.warning("drain budget (%.1fs) expired with work in flight",
                           self.drain_timeout_s)
        self.gateway.close()

    async def __aenter__(self) -> "ServingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Line longer than the read buffer (readline surfaces
                    # the overrun as ValueError).  Framing on this
                    # connection cannot be recovered cheaply, so answer
                    # with a structured error and drop the connection; the
                    # listener keeps serving everyone else.
                    self.stats.oversized_lines += 1
                    logger.warning("oversized request line "
                                   "(> %d bytes); closing connection",
                                   self.max_line_bytes)
                    await self._send(writer, {
                        "ok": False, "op": "error",
                        "error": f"request line exceeds "
                                 f"{self.max_line_bytes} bytes"},
                        label="error")
                    break
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    self.stats.disconnects_mid_request += 1
                    logger.info("client disconnected mid-request")
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF without a trailing newline: a disconnect mid-line.
                    self.stats.disconnects_mid_request += 1
                    logger.info("client disconnected mid-request "
                                "(partial line, %d bytes)", len(line))
                    break
                self.stats.requests += 1
                response = await self._dispatch(line)
                if not await self._send(writer, response,
                                        label=str(response.get("op", ""))):
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, object], label: str) -> bool:
        """Write one response line; False when the connection is gone."""
        data = encode_line(response)
        if self.fault_plan is not None and self.fault_plan.draw_sever(label):
            # Chaos seam: write half the response, then abort the transport
            # — the client sees a truncated line and a dropped connection.
            writer.write(data[: max(1, len(data) // 2)])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.transport.abort()
            self.stats.disconnects_mid_response += 1
            logger.warning("fault injection severed connection mid-response")
            return False
        writer.write(data)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            self.stats.disconnects_mid_response += 1
            logger.info("client disconnected mid-response")
            return False
        return True

    async def _dispatch(self, line: bytes) -> Dict[str, object]:
        """One request line → one response object; errors stay per-request."""
        request_id: Optional[str] = None
        try:
            payload = decode_line(line)
            raw_request_id = payload.get("request_id")
            request_id = None if raw_request_id is None else str(raw_request_id)
            op = payload.get("op")
            if op == "compile":
                timeout_s = _parse_timeout(payload.get("timeout_s"))
                task = task_from_wire(payload.get("task"))
                response = await self.gateway.compile(
                    task, timeout_s=timeout_s,
                    trace=bool(payload.get("trace", False)))
                return response.with_request_id(request_id).to_wire()
            if op == "metrics":
                registry = get_registry()
                if payload.get("format") == "prometheus":
                    return self._echo(request_id, {
                        "ok": True, "op": "metrics",
                        "format": "prometheus",
                        "text": registry.render_prometheus()})
                return self._echo(request_id, {
                    "ok": True, "op": "metrics", "format": "json",
                    "metrics": registry.snapshot()})
            if op == "stats":
                return self._echo(request_id, {
                    "ok": True, "op": "stats", "version": __version__,
                    "server": self.stats.as_dict(),
                    **self.gateway.stats_dict()})
            if op == "health":
                return self._echo(request_id, {
                    "ok": True, "op": "health", "version": __version__,
                    "server": self.stats.as_dict(),
                    **self.gateway.health_dict()})
            if op == "ping":
                return self._echo(request_id, {
                    "ok": True, "op": "pong", "version": __version__})
            if op == "shutdown":
                self._shutdown.set()
                return self._echo(request_id, {"ok": True, "op": "shutdown"})
            raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            self.stats.malformed_lines += 1
            logger.info("malformed request: %s", exc)
            return self._echo(request_id,
                              {"ok": False, "op": "error", "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - isolate per request
            return self._echo(request_id, {
                "ok": False, "op": "error",
                "error": f"{type(exc).__name__}: {exc}"})

    @staticmethod
    def _echo(request_id: Optional[str],
              response: Dict[str, object]) -> Dict[str, object]:
        if request_id is not None:
            response["request_id"] = request_id
        return response


def _parse_timeout(raw) -> Optional[float]:
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ProtocolError(f"timeout_s must be a number, got {raw!r}") from None
    if value <= 0:
        raise ProtocolError("timeout_s must be positive")
    return value
