"""Async serving gateway: compile-once / serve-many in front of the pipeline.

The gateway is the long-lived process of the ROADMAP's north star.  For each
compile request it

1. computes the persistent :class:`~repro.store.StoreKey` of the request,
2. serves a **store hit** directly from the :class:`~repro.store.ResultStore`
   without touching the worker pool,
3. **coalesces** identical in-flight requests: the first miss for a key
   starts exactly one compile; requests for the same key arriving while it
   runs await the same future instead of compiling again,
4. runs misses on a bounded worker pool (process pool by default — mapping
   is CPU-bound pure Python — or a thread pool for tests/1-core smoke runs)
   behind an **admission limit**: beyond ``max_pending`` concurrent compiles
   new keys are rejected with a structured error instead of queueing
   unboundedly, and
5. isolates failures per request: a failing compile fails its own waiters,
   is *not* cached, and leaves the gateway serving.

Correctness rests on the repo's bit-identity contract (differential + golden
harnesses): a store/coalesced artifact is byte-identical to what a fresh
compile of the same request would emit, which the serving tests assert
digest-for-digest.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional, Tuple

from ..service.batch import (
    CompilationTask,
    _fork_context,
    compile_task_to_artifact,
    task_store_key,
)
from ..store import CompiledArtifact, ResultStore

__all__ = ["GatewayStats", "ServingGateway", "compile_task_artifact"]


@dataclass
class GatewayStats:
    """Request-path counters of one gateway instance."""

    requests: int = 0
    store_hits: int = 0
    coalesced: int = 0
    compiles: int = 0
    failures: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


def compile_task_artifact(task: CompilationTask,
                          store_spec: Optional[Tuple[str, Optional[int]]] = None,
                          evaluate: bool = True) -> CompiledArtifact:
    """Worker-side compile job: pipeline-compile ``task`` into an artifact.

    Module-level and argument-picklable so it runs on a process pool.  The
    actual flow is the shared
    :func:`~repro.service.batch.compile_task_to_artifact` — consult store
    (another worker may have landed the key meanwhile), compile, persist —
    so the batch and serving paths cannot diverge.
    """
    store = ResultStore.from_spec(store_spec) if store_spec is not None else None
    artifact, context, _ = compile_task_to_artifact(task, store=store,
                                                    evaluate=evaluate)
    if artifact is None:
        # Store-less gateway: the caller still needs the serialisable form.
        artifact = CompiledArtifact.from_context(context)
    return artifact


class ServingGateway:
    """Asynchronous request front-end over the compile pipeline.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ResultStore` consulted before (and
        populated after) every compile.  Without one the gateway still
        coalesces in-flight duplicates but recompiles across time.
    max_workers / pool:
        Worker pool sizing and kind (``"process"`` or ``"thread"``).
    max_pending:
        Admission bound on *concurrent primary compiles*; coalesced waiters
        ride along for free.  Requests beyond the bound receive a failed
        :class:`~repro.server.protocol.ServeResponse` whose error starts
        with ``"rejected"``.
    evaluate:
        Run schedule + evaluate per compile (metrics on every response).
    compile_fn:
        Injection point for tests: ``(task, store_spec, evaluate) ->
        CompiledArtifact``, executed on the pool.
    """

    def __init__(self, store: Optional[ResultStore] = None, *,
                 max_workers: Optional[int] = None,
                 max_pending: int = 32,
                 pool: str = "process",
                 evaluate: bool = True,
                 compile_fn: Optional[Callable] = None) -> None:
        if pool not in ("process", "thread"):
            raise ValueError("pool must be 'process' or 'thread'")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.store = store
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.pool_kind = pool
        self.evaluate = evaluate
        self.compile_fn = compile_fn or compile_task_artifact
        self.stats = GatewayStats()
        self._executor: Optional[Executor] = None
        self._prep_executor: Optional[ThreadPoolExecutor] = None
        self._inflight: Dict[str, "asyncio.Future[CompiledArtifact]"] = {}
        self._active_compiles = 0
        # Bumped after every finished primary compile; lets a request whose
        # async store lookup raced a completing compile re-check the store
        # instead of starting a redundant compile.
        self._completion_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Create the worker pools (idempotent)."""
        if self._prep_executor is None:
            # Request prep (circuit build / QASM parse, key hashing, store
            # reads) runs off the event loop so one large request cannot
            # stall every other connection.
            self._prep_executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-serve-prep")
        if self._executor is not None:
            return
        if self.pool_kind == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=_fork_context())
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-serve")

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._prep_executor is not None:
            self._prep_executor.shutdown(wait=True)
            self._prep_executor = None

    async def __aenter__(self) -> "ServingGateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def compile(self, task: CompilationTask):
        """Serve one compile request; never raises for request-shaped errors.

        Returns a :class:`~repro.server.protocol.ServeResponse` whose
        ``source`` records how it was served (``store`` / ``coalesced`` /
        ``compiled``).
        """
        from .protocol import ServeResponse  # local: avoid import cycle

        loop = asyncio.get_running_loop()
        start = loop.time()
        self.stats.requests += 1
        self.start()

        # (1) request prep + persistent store lookup, off the event loop:
        # QASM parsing, digest hashing and store file reads are per-request
        # CPU/IO that must not stall other connections.
        epoch_before = self._completion_epoch

        def _prepare():
            prepared_circuit = task.build_circuit()
            prepared_key = task_store_key(task, prepared_circuit)
            hit = (self.store.get(prepared_key, require_metrics=self.evaluate)
                   if self.store is not None else None)
            return prepared_circuit, prepared_key, hit

        try:
            circuit, key, artifact = await loop.run_in_executor(
                self._prep_executor, _prepare)
        except Exception as exc:  # noqa: BLE001 - bad requests are data
            self.stats.failures += 1
            return ServeResponse.failure(
                task.task_id, f"{type(exc).__name__}: {exc}",
                loop.time() - start)
        if artifact is not None:
            self.stats.store_hits += 1
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, "store", loop.time() - start)

        # (2) coalesce onto an identical in-flight compile.
        digest = key.digest()
        inflight = self._inflight.get(digest)
        if inflight is not None:
            self.stats.coalesced += 1
            try:
                artifact = await asyncio.shield(inflight)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                self.stats.failures += 1
                return ServeResponse.failure(
                    task.task_id, f"{type(exc).__name__}: {exc}",
                    loop.time() - start)
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, "coalesced", loop.time() - start)

        # (2b) if some compile finished while our store lookup was in
        # flight, the miss may be stale — re-check before compiling again.
        if self.store is not None and self._completion_epoch != epoch_before:
            artifact = self.store.get(key, require_metrics=self.evaluate)
            if artifact is not None:
                self.stats.store_hits += 1
                return ServeResponse.from_artifact(
                    task, circuit.name, artifact, "store", loop.time() - start)

        # (3) admission control for new keys.
        if self._active_compiles >= self.max_pending:
            self.stats.rejected += 1
            return ServeResponse.failure(
                task.task_id,
                f"rejected: admission queue full "
                f"({self._active_compiles} compiles in flight, "
                f"max_pending={self.max_pending})",
                loop.time() - start)

        # (4) primary compile on the pool.
        future: "asyncio.Future[CompiledArtifact]" = loop.create_future()
        self._inflight[digest] = future
        self._active_compiles += 1
        store_spec = self.store.spec if self.store is not None else None
        job = functools.partial(self.compile_fn, task, store_spec, self.evaluate)
        try:
            artifact = await loop.run_in_executor(self._executor, job)
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            self.stats.failures += 1
            future.set_exception(exc)
            future.exception()  # waiters re-raise; silence un-awaited logging
            return ServeResponse.failure(
                task.task_id, f"{type(exc).__name__}: {exc}",
                loop.time() - start)
        else:
            self.stats.compiles += 1
            self._completion_epoch += 1
            future.set_result(artifact)
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, "compiled", loop.time() - start)
        finally:
            # Failed compiles are never cached: dropping the in-flight entry
            # means the next identical request starts a fresh compile.  If
            # this (primary) request was cancelled mid-compile, the future
            # would otherwise never resolve — fail it so coalesced waiters
            # get an error response instead of hanging forever.
            if not future.done():
                future.set_exception(RuntimeError(
                    "primary compile request was cancelled"))
                future.exception()
            self._inflight.pop(digest, None)
            self._active_compiles -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "gateway": self.stats.as_dict(),
            "pool": self.pool_kind,
            "max_pending": self.max_pending,
            "inflight": len(self._inflight),
        }
        payload["store"] = (None if self.store is None
                            else self.store.stats_dict())
        return payload
