"""Async serving gateway: compile-once / serve-many in front of the pipeline.

The gateway is the long-lived process of the ROADMAP's north star.  For each
compile request it

1. computes the persistent :class:`~repro.store.StoreKey` of the request,
2. serves a **store hit** directly from the :class:`~repro.store.ResultStore`
   without touching the worker pool,
3. **coalesces** identical in-flight requests: the first miss for a key
   starts exactly one compile; requests for the same key arriving while it
   runs await the same future instead of compiling again,
4. runs misses on a **supervised** worker pool
   (:class:`~repro.resilience.SupervisedPool`: dead workers reaped and
   replaced, crashed tasks re-dispatched with bounded retry + backoff, hung
   tasks deadline-killed) behind an **admission limit**: beyond
   ``max_pending`` concurrent compiles new keys are rejected with a
   structured error instead of queueing unboundedly, and
5. isolates failures per request: a failing compile fails its own waiters,
   is *not* cached, and leaves the gateway serving.

Robustness layers on top (:mod:`repro.resilience`):

* every failure response carries an ``error_class`` from the
  retryable / permanent / shed taxonomy so clients know whether to retry;
* per-request deadlines are the tightest of the gateway's default budget
  and the client's ``timeout_s``, enforced by the pool (the worker is
  killed and recycled, the request fails retryable);
* a :class:`~repro.resilience.CircuitBreaker` watches *pool-level*
  failures (worker crash budgets exhausted, pool gone) — task-level
  compile errors never trip it.  While open, requests bypass the pool;
* **graceful degradation**: when the pool is unusable the gateway falls
  back to a bounded in-process serial compile lane, so correct answers
  keep flowing (slowly) instead of erroring; beyond the lane's bound
  requests are shed;
* **drain-based shutdown**: :meth:`drain` stops admissions and waits for
  in-flight compiles, so an operator stop never abandons accepted work.

Correctness rests on the repo's bit-identity contract (differential + golden
harnesses): a store/coalesced/degraded artifact is byte-identical to what a
fresh compile of the same request would emit, which the serving and chaos
tests assert digest-for-digest.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional, Tuple

from ..resilience import (
    LoadShed,
    PERMANENT,
    SHED,
    CircuitBreaker,
    DeadlineExceeded,
    PoolUnavailable,
    RetryPolicy,
    SupervisedPool,
    WorkerCrashed,
    classify_error,
    tightest,
)
from ..service.batch import (
    CompilationTask,
    _fork_context,
    compile_task_to_artifact,
    task_store_key,
)
from ..store import CompiledArtifact, ResultStore
from ..telemetry import tracing
from ..telemetry.registry import CounterSet, get_registry

__all__ = ["GatewayStats", "ServingGateway", "compile_task_artifact"]


class GatewayStats(CounterSet):
    """Request-path counters of one gateway instance.

    Registry-backed (``repro_gateway_*_total`` series, one ``instance``
    label per gateway); attribute reads and ``+=`` writes keep working.
    Every admitted request lands in exactly one outcome bucket:
    ``store_hits + coalesced + compiles + degraded + failures + rejected +
    shed == requests`` once the request path has quiesced (asserted by
    ``tests/server/test_gateway_counters.py``).
    """

    PREFIX = "repro_gateway"
    FIELDS = ("requests", "store_hits", "coalesced", "compiles", "failures",
              "rejected", "degraded", "shed")
    HELP = {
        "requests": "Compile requests received",
        "store_hits": "Requests served from the persistent result store",
        "coalesced": "Requests that joined an identical in-flight compile",
        "compiles": "Requests served by a fresh pool compile",
        "failures": "Requests that failed (task error or deadline)",
        "rejected": "Requests rejected by the admission limit",
        "degraded": "Requests served by the in-process fallback lane",
        "shed": "Requests shed (draining, or fallback lane full)",
    }


def compile_task_artifact(task: CompilationTask,
                          store_spec: Optional[Tuple[str, Optional[int]]] = None,
                          evaluate: bool = True) -> CompiledArtifact:
    """Worker-side compile job: pipeline-compile ``task`` into an artifact.

    Module-level and argument-picklable so it runs on a process pool.  The
    actual flow is the shared
    :func:`~repro.service.batch.compile_task_to_artifact` — consult store
    (another worker may have landed the key meanwhile), compile, persist —
    so the batch and serving paths cannot diverge.
    """
    store = ResultStore.from_spec(store_spec) if store_spec is not None else None
    artifact, context, _ = compile_task_to_artifact(task, store=store,
                                                    evaluate=evaluate)
    if artifact is None:
        # Store-less gateway: the caller still needs the serialisable form.
        artifact = CompiledArtifact.from_context(context)
    return artifact


class ServingGateway:
    """Asynchronous request front-end over the compile pipeline.

    Parameters
    ----------
    store:
        Optional :class:`~repro.store.ResultStore` consulted before (and
        populated after) every compile.  Without one the gateway still
        coalesces in-flight duplicates but recompiles across time.
    max_workers / pool:
        Worker pool sizing and kind (``"process"`` or ``"thread"``).
    max_pending:
        Admission bound on *concurrent primary compiles*; coalesced waiters
        ride along for free.  Requests beyond the bound receive a failed
        :class:`~repro.server.protocol.ServeResponse` whose error starts
        with ``"rejected"``.
    evaluate:
        Run schedule + evaluate per compile (metrics on every response).
    compile_fn:
        Injection point for tests: ``(task, store_spec, evaluate) ->
        CompiledArtifact``, executed on the pool.
    deadline_s:
        Default per-compile wall-clock budget enforced by the supervised
        pool (``None`` = unbounded).  A client ``timeout_s`` tightens it
        per request, never loosens it.
    retry_policy:
        Crash re-dispatch budget for the pool (default
        :class:`~repro.resilience.RetryPolicy`).
    breaker:
        Circuit breaker over pool-level failures; a default 5-failure /
        5-second breaker is built when not given.
    max_degraded:
        Bound on concurrent in-process fallback compiles while the breaker
        is open (beyond it requests are shed).
    """

    def __init__(self, store: Optional[ResultStore] = None, *,
                 max_workers: Optional[int] = None,
                 max_pending: int = 32,
                 pool: str = "process",
                 evaluate: bool = True,
                 compile_fn: Optional[Callable] = None,
                 deadline_s: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 max_degraded: int = 2) -> None:
        if pool not in ("process", "thread"):
            raise ValueError("pool must be 'process' or 'thread'")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_degraded < 1:
            raise ValueError("max_degraded must be at least 1")
        self.store = store
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.pool_kind = pool
        self.evaluate = evaluate
        self.compile_fn = compile_fn or compile_task_artifact
        self.deadline_s = deadline_s
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.max_degraded = max_degraded
        self.stats = GatewayStats()
        self._request_seconds = get_registry().histogram(
            "repro_gateway_request_seconds",
            help="End-to-end gateway request latency",
            labels={"instance": self.stats.instance})
        self._pool: Optional[SupervisedPool] = None
        self._prep_executor: Optional[ThreadPoolExecutor] = None
        self._degraded_executor: Optional[ThreadPoolExecutor] = None
        self._inflight: Dict[str, "asyncio.Future[CompiledArtifact]"] = {}
        self._active_compiles = 0
        self._active_degraded = 0
        self._draining = False
        # Bumped after every finished primary compile; lets a request whose
        # async store lookup raced a completing compile re-check the store
        # instead of starting a redundant compile.
        self._completion_epoch = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Create the worker pools (idempotent)."""
        if self._prep_executor is None:
            # Request prep (circuit build / QASM parse, key hashing, store
            # reads) runs off the event loop so one large request cannot
            # stall every other connection.
            self._prep_executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-serve-prep")
        if self._pool is not None:
            return
        self._pool = SupervisedPool(
            self.max_workers, kind=self.pool_kind,
            deadline_s=self.deadline_s, retry_policy=self.retry_policy,
            mp_context=_fork_context() if self.pool_kind == "process" else None)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for name in ("_prep_executor", "_degraded_executor"):
            executor = getattr(self, name)
            if executor is not None:
                executor.shutdown(wait=True)
                setattr(self, name, None)

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting work and wait for in-flight compiles to finish.

        Returns ``True`` when everything landed inside the budget.  New
        compile requests arriving during (and after) the drain are shed
        with a structured error; ``close()`` afterwards tears the pools
        down without abandoning accepted work.
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        give_up = loop.time() + timeout_s
        while (self._active_compiles > 0 or self._inflight
               or self._active_degraded > 0):
            if loop.time() >= give_up:
                return False
            await asyncio.sleep(0.01)
        return True

    async def __aenter__(self) -> "ServingGateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def compile(self, task: CompilationTask,
                      timeout_s: Optional[float] = None, *,
                      trace: bool = False):
        """Serve one compile request; never raises for request-shaped errors.

        Returns a :class:`~repro.server.protocol.ServeResponse` whose
        ``source`` records how it was served (``store`` / ``coalesced`` /
        ``compiled`` / ``degraded``) and whose ``error_class`` (on
        failure) tells the client whether a retry can help.

        With ``trace=True`` the request runs under a ``gateway.request``
        root span; every span produced on its behalf — request prep, pool
        dispatch, pipeline passes, shard slices/seams, store access — is
        collected into one tree and attached to the response as Chrome
        trace events (``response.trace``).  Tracing observes timestamps
        only, so the artifact is byte-identical with it on or off.
        """
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            if not trace:
                return await self._compile(task, timeout_s)
            with tracing.start_trace("gateway.request",
                                     task_id=task.task_id) as handle:
                response = await self._compile(task, timeout_s)
            spans = list(handle.spans)
            spans.extend(tracing.TRACER.drain(handle.trace_id))
            chrome = tracing.chrome_trace_events(spans)
            chrome["trace_id"] = handle.trace_id
            return dataclasses.replace(response, trace=chrome)
        finally:
            self._request_seconds.observe(loop.time() - start)

    async def _compile(self, task: CompilationTask,
                       timeout_s: Optional[float]):
        from .protocol import ServeResponse  # local: avoid import cycle

        loop = asyncio.get_running_loop()
        start = loop.time()
        self.stats.requests += 1
        if self._draining:
            self.stats.shed += 1
            return ServeResponse.failure(
                task.task_id, "shed: gateway is draining for shutdown",
                loop.time() - start, error_class=SHED)
        self.start()

        # (1) request prep + persistent store lookup, off the event loop:
        # QASM parsing, digest hashing and store file reads are per-request
        # CPU/IO that must not stall other connections.
        epoch_before = self._completion_epoch
        # run_in_executor does not propagate contextvars, so an active
        # trace must be re-activated explicitly inside executor closures;
        # their spans reach the request tree through the global TRACER.
        trace_ctx = tracing.current_context()

        def _prepare():
            sink = []
            try:
                with tracing.activate(trace_ctx, sink=sink):
                    with tracing.span("gateway.prepare",
                                      task_id=task.task_id):
                        prepared_circuit = task.build_circuit()
                        prepared_key = task_store_key(task, prepared_circuit)
                        hit = (self.store.get(prepared_key,
                                              require_metrics=self.evaluate)
                               if self.store is not None else None)
                        return prepared_circuit, prepared_key, hit
            finally:
                if sink:
                    tracing.TRACER.ingest(sink)

        try:
            circuit, key, artifact = await loop.run_in_executor(
                self._prep_executor, _prepare)
        except Exception as exc:  # noqa: BLE001 - bad requests are data
            self.stats.failures += 1
            return ServeResponse.failure(
                task.task_id, f"{type(exc).__name__}: {exc}",
                loop.time() - start, error_class=PERMANENT)
        if artifact is not None:
            self.stats.store_hits += 1
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, "store", loop.time() - start)

        # (2) coalesce onto an identical in-flight compile.
        digest = key.digest()
        inflight = self._inflight.get(digest)
        if inflight is not None:
            self.stats.coalesced += 1
            try:
                artifact = await asyncio.shield(inflight)
            except Exception as exc:  # noqa: BLE001 - failure isolation
                self.stats.failures += 1
                return ServeResponse.failure(
                    task.task_id, f"{type(exc).__name__}: {exc}",
                    loop.time() - start, error_class=classify_error(exc))
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, "coalesced", loop.time() - start)

        # (2b) if some compile finished while our store lookup was in
        # flight, the miss may be stale — re-check before compiling again.
        if self.store is not None and self._completion_epoch != epoch_before:
            artifact = self.store.get(key, require_metrics=self.evaluate)
            if artifact is not None:
                self.stats.store_hits += 1
                return ServeResponse.from_artifact(
                    task, circuit.name, artifact, "store", loop.time() - start)

        # (3) admission control for new keys.
        if self._active_compiles >= self.max_pending:
            self.stats.rejected += 1
            return ServeResponse.failure(
                task.task_id,
                f"rejected: admission queue full "
                f"({self._active_compiles} compiles in flight, "
                f"max_pending={self.max_pending})",
                loop.time() - start, error_class=SHED)

        # (4) primary compile — supervised pool, or the degraded lane when
        # the circuit breaker says the pool is currently unusable.
        future: "asyncio.Future[CompiledArtifact]" = loop.create_future()
        self._inflight[digest] = future
        self._active_compiles += 1
        store_spec = self.store.spec if self.store is not None else None
        deadline = tightest(self.deadline_s, timeout_s)
        source = "compiled"
        try:
            if self.breaker.allow():
                try:
                    artifact = await self._pool_compile(
                        task, store_spec, deadline)
                    self.breaker.record_success()
                except asyncio.CancelledError:
                    # Never leave a half-open probe dangling.
                    self.breaker.record_success()
                    raise
                except (WorkerCrashed, PoolUnavailable) as exc:
                    # Pool-level trouble: feed the breaker, then degrade —
                    # this request still deserves a correct (slow) answer.
                    self.breaker.record_failure()
                    artifact = await self._degraded_compile(
                        loop, task, store_spec, deadline, cause=exc)
                    source = "degraded"
                except Exception:
                    # Task-level failure (bad input, deadline kill): the
                    # pool demonstrably did its job, so the breaker sees
                    # health — only pool-level trouble may open it.
                    self.breaker.record_success()
                    raise
            else:
                artifact = await self._degraded_compile(
                    loop, task, store_spec, deadline, cause=None)
                source = "degraded"
        except Exception as exc:  # noqa: BLE001 - per-request isolation
            # Exactly one outcome counter per request: a shed (degraded
            # lane full) is classified here and nowhere else — bumping at
            # the raise site *and* counting the exception as a failure
            # double-counted shed requests (observable as stats drift
            # under mixed load).
            if isinstance(exc, LoadShed):
                self.stats.shed += 1
            else:
                self.stats.failures += 1
            future.set_exception(exc)
            future.exception()  # waiters re-raise; silence un-awaited logging
            return ServeResponse.failure(
                task.task_id, f"{type(exc).__name__}: {exc}",
                loop.time() - start, error_class=classify_error(exc))
        else:
            if source == "degraded":
                self.stats.degraded += 1
            else:
                self.stats.compiles += 1
            self._completion_epoch += 1
            future.set_result(artifact)
            return ServeResponse.from_artifact(
                task, circuit.name, artifact, source, loop.time() - start)
        finally:
            # Failed compiles are never cached: dropping the in-flight entry
            # means the next identical request starts a fresh compile.  If
            # this (primary) request was cancelled mid-compile, the future
            # would otherwise never resolve — fail it so coalesced waiters
            # get an error response instead of hanging forever.
            if not future.done():
                future.set_exception(RuntimeError(
                    "primary compile request was cancelled"))
                future.exception()
            self._inflight.pop(digest, None)
            self._active_compiles -= 1

    async def _pool_compile(self, task: CompilationTask, store_spec,
                            deadline: Optional[float]) -> CompiledArtifact:
        pool_future = self._pool.submit(
            self.compile_fn, task, store_spec, self.evaluate,
            deadline_s=deadline, label=task.task_id, token=task.task_id)
        return await asyncio.wrap_future(pool_future)

    async def _degraded_compile(self, loop, task: CompilationTask, store_spec,
                                deadline: Optional[float],
                                cause: Optional[Exception]) -> CompiledArtifact:
        """Bounded in-process serial fallback compile.

        Correctness first: the exact same ``compile_fn`` runs, so the
        artifact (and its op-stream digest) is identical to a pool compile.
        The lane is deliberately tiny — beyond ``max_degraded`` concurrent
        fallbacks the request is shed rather than queued, because an
        unbounded serial queue on a broken pool just converts an outage
        into unbounded latency.
        """
        if self._active_degraded >= self.max_degraded:
            # Counted by the caller's outcome classification (LoadShed →
            # ``shed``), not here — see the except arm in :meth:`_compile`.
            detail = f" (pool failure: {cause})" if cause is not None else ""
            raise LoadShed(
                f"shed: degraded lane full "
                f"({self._active_degraded}/{self.max_degraded}){detail}")
        if self._degraded_executor is None:
            self._degraded_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-degraded")
        self._active_degraded += 1
        trace_ctx = tracing.current_context()

        def _job():
            sink = []
            try:
                with tracing.activate(trace_ctx, sink=sink):
                    with tracing.span("gateway.degraded_compile",
                                      task_id=task.task_id):
                        return self.compile_fn(task, store_spec, self.evaluate)
            finally:
                self._active_degraded -= 1
                if sink:
                    tracing.TRACER.ingest(sink)

        call = loop.run_in_executor(self._degraded_executor, _job)
        if deadline is None:
            return await call
        try:
            return await asyncio.wait_for(asyncio.shield(call), deadline)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"{task.task_id!r} exceeded its {deadline:.3g}s deadline "
                f"on the degraded lane") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "gateway": self.stats.as_dict(),
            "pool": self.pool_kind,
            "max_pending": self.max_pending,
            "inflight": len(self._inflight),
            "breaker": self.breaker.as_dict(),
            "supervision": (None if self._pool is None
                            else self._pool.stats_dict()),
        }
        payload["store"] = (None if self.store is None
                            else self.store.stats_dict())
        return payload

    def health_dict(self) -> Dict[str, object]:
        """Operational snapshot for the ``health`` protocol verb."""
        breaker_state = self.breaker.state
        if self._draining:
            status = "draining"
        elif breaker_state != "closed":
            status = "degraded"
        else:
            status = "ok"
        pool = self._pool
        store = self.store
        return {
            "status": status,
            "draining": self._draining,
            "breaker": self.breaker.as_dict(),
            "pool": None if pool is None else pool.stats_dict(),
            "retry": {
                "max_attempts": self.retry_policy.max_attempts,
                "base_delay_s": self.retry_policy.base_delay_s,
                "multiplier": self.retry_policy.multiplier,
            },
            "deadline_s": self.deadline_s,
            "active_compiles": self._active_compiles,
            "active_degraded": self._active_degraded,
            "max_degraded": self.max_degraded,
            "gateway": self.stats.as_dict(),
            "store": None if store is None else store.stats_dict(),
        }
