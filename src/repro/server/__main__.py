"""Serving-gateway CLI: run the TCP gateway, or prove it end to end.

Serve mode (long-running)::

    PYTHONPATH=src python -m repro.server --port 7421 --store-dir ./store \
        --workers 4 --max-pending 32

Self-test mode (used by the CI serving-smoke job): starts the gateway on an
ephemeral port, submits duplicate + distinct requests — including a QASM
text document twice — through the synchronous client, asserts the
store-hit/coalescing counters and the byte-identity of served digests
against a fresh in-process compile, writes the gateway + store stats JSON,
and exits non-zero on any failed check::

    PYTHONPATH=src python -m repro.server --self-test \
        --stats-out serving-stats.json

Chaos self-test mode (used by the CI chaos-smoke job): same end-to-end
stack, but driven under a deterministic
:class:`~repro.resilience.FaultPlan` — an injected worker crash, a hung
compile (deadline-killed), a corrupted store entry and a severed
connection — asserting that every request still completes with consistent
digests, the corrupted entry is quarantined (never served), and the
``health`` verb reports the whole story::

    PYTHONPATH=src python -m repro.server --self-test --chaos \
        --stats-out chaos-stats.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from ..circuit.library import get_benchmark
from ..circuit.qasm import dumps as qasm_dumps
from ..mapping.config import MapperConfig
from ..pipeline.manager import compile_circuit
from ..service.batch import CompilationTask
from ..service.cache import ARCHITECTURE_CACHE, ArchitectureSpec
from ..store import ResultStore
from ..telemetry.registry import get_registry, validate_prometheus_text
from ..workloads import scaled_register_size
from .client import ServingClient, wait_until_ready
from .gateway import ServingGateway
from .tcp import ServingServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421,
                        help="TCP port (0 = ephemeral; default 7421)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size (default: CPU count)")
    parser.add_argument("--pool", choices=("process", "thread"), default=None,
                        help="worker pool kind (default: process when "
                             "serving, thread under --self-test)")
    parser.add_argument("--max-pending", type=int, default=32,
                        help="admission bound on concurrent compiles")
    parser.add_argument("--store-dir", default=None,
                        help="persistent store directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--store-max-mb", type=float, default=None,
                        help="LRU size budget of the store in MiB")
    parser.add_argument("--no-evaluate", action="store_true",
                        help="skip schedule+evaluate (responses carry no metrics)")
    parser.add_argument("--stats-out", default=None,
                        help="write gateway+store stats JSON here on exit")
    parser.add_argument("--metrics-dump", default=None,
                        help="write the telemetry registry snapshot JSON "
                             "here on exit")
    parser.add_argument("--trace-out", default=None,
                        help="with --self-test: write the sample request's "
                             "Chrome trace JSON here (load in Perfetto / "
                             "chrome://tracing)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the end-to-end serving smoke (CI mode)")
    parser.add_argument("--chaos", action="store_true",
                        help="with --self-test: run the fault-injection "
                             "smoke (worker crash, hang, corrupt store "
                             "entry, severed connection)")
    parser.add_argument("--scale", type=float, default=0.08,
                        help="workload scale of the self-test (default 0.08)")
    return parser


def _build_gateway(args) -> ServingGateway:
    store_dir = args.store_dir or tempfile.mkdtemp(prefix="repro-store-")
    max_bytes = (None if args.store_max_mb is None
                 else int(args.store_max_mb * 1024 * 1024))
    store = ResultStore(store_dir, max_bytes=max_bytes)
    pool = args.pool or ("thread" if args.self_test else "process")
    return ServingGateway(store, max_workers=args.workers,
                          max_pending=args.max_pending, pool=pool,
                          evaluate=not args.no_evaluate)


def _write_stats(gateway: ServingGateway, path: Optional[str],
                 extra: Optional[Dict] = None) -> None:
    if not path:
        return
    payload = gateway.stats_dict()
    if extra:
        payload.update(extra)
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def _write_metrics(path: Optional[str]) -> None:
    """Dump the process-global telemetry registry snapshot as JSON."""
    if not path:
        return
    Path(path).write_text(
        json.dumps(get_registry().snapshot(), indent=2) + "\n")
    print(f"wrote {path}")


# ----------------------------------------------------------------------
# Serve mode
# ----------------------------------------------------------------------
def run_server(args) -> int:
    gateway = _build_gateway(args)

    async def main() -> None:
        server = ServingServer(gateway, args.host, args.port)
        await server.start()
        print(f"repro.server listening on {args.host}:{server.port} "
              f"(pool={gateway.pool_kind}, store={gateway.store.root})")
        await server.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        _write_stats(gateway, args.stats_out)
        _write_metrics(args.metrics_dump)
    return 0


# ----------------------------------------------------------------------
# Self-test mode
# ----------------------------------------------------------------------
def _start_background_server(gateway: ServingGateway, host: str,
                             fault_plan=None
                             ) -> "tuple[threading.Thread, int]":
    """Run the asyncio server on a daemon thread; returns its bound port."""
    ready = threading.Event()
    box: Dict[str, int] = {}

    def runner() -> None:
        async def main() -> None:
            server = ServingServer(gateway, host, 0, fault_plan=fault_plan)
            await server.start()
            box["port"] = server.port
            ready.set()
            await server.serve_until_shutdown()
        asyncio.run(main())

    thread = threading.Thread(target=runner, name="repro-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("serving gateway failed to start within 30s")
    return thread, box["port"]


def _fresh_compile_sha(spec: ArchitectureSpec, circuit) -> str:
    """Digest of an in-process pipeline compile (the serving reference)."""
    architecture, connectivity = ARCHITECTURE_CACHE.get(spec)
    context = compile_circuit(circuit, architecture,
                              MapperConfig.for_mode("hybrid", 1.0),
                              connectivity=connectivity, alpha_ratio=1.0)
    return context.require_result().op_stream_digest()["sha256"]


def run_self_test(args) -> int:
    gateway = _build_gateway(args)
    thread, port = _start_background_server(gateway, args.host)
    scale = args.scale
    spec = ArchitectureSpec.scaled("mixed", scale)
    sizes = {name: scaled_register_size(name, scale)
             for name in ("qft", "graph", "qpe")}
    checks: List[Dict[str, object]] = []
    ok = True

    def check(name: str, passed: bool, detail: str = "") -> None:
        nonlocal ok
        ok &= passed
        checks.append({"check": name, "passed": passed, "detail": detail})
        print(f"[{'ok' if passed else 'FAIL'}] {name}"
              + (f" — {detail}" if detail and not passed else ""))

    with ServingClient(args.host, port) as client:
        check("ping", client.ping())

        # Duplicate library request: 2nd identical structure is a store hit.
        qft_a = CompilationTask("qft-a", spec, circuit_name="qft",
                                num_qubits=sizes["qft"])
        qft_b = CompilationTask("qft-b", spec, circuit_name="qft",
                                num_qubits=sizes["qft"])
        first = client.compile_task(qft_a)
        second = client.compile_task(qft_b)
        check("first qft compiles", first.ok and first.source == "compiled",
              f"source={first.source} error={first.error}")
        check("duplicate qft served from store",
              second.ok and second.source == "store",
              f"source={second.source}")
        check("hit digest byte-identical to compiled digest",
              first.digest == second.digest,
              f"{first.digest} != {second.digest}")
        fresh_sha = _fresh_compile_sha(
            spec, get_benchmark("qft", num_qubits=sizes["qft"], seed=2024))
        check("served digest equals fresh in-process compile",
              second.digest is not None and second.digest["sha256"] == fresh_sha,
              f"served={second.digest} fresh={fresh_sha}")

        # Distinct request compiles separately.
        graph = client.compile_task(CompilationTask(
            "graph-a", spec, circuit_name="graph", num_qubits=sizes["graph"]))
        check("distinct graph request compiles",
              graph.ok and graph.source == "compiled"
              and graph.digest != first.digest,
              f"source={graph.source}")

        # QASM text request: dedupes on structure, not on task id.
        qasm_text = qasm_dumps(
            get_benchmark("graph", num_qubits=sizes["graph"], seed=11))
        qasm_1 = client.compile_task(CompilationTask("qasm-a", spec,
                                                     qasm=qasm_text))
        qasm_2 = client.compile_task(CompilationTask("qasm-b", spec,
                                                     qasm=qasm_text))
        check("qasm request compiles", qasm_1.ok and qasm_1.source == "compiled",
              f"source={qasm_1.source} error={qasm_1.error}")
        check("duplicate qasm text served from store",
              qasm_2.ok and qasm_2.source == "store"
              and qasm_2.digest == qasm_1.digest,
              f"source={qasm_2.source}")

        # Traced request: a fresh key (distinct seed) compiled under
        # trace=true must come back with one rooted Chrome-trace span tree
        # covering gateway -> pool worker -> pipeline passes -> store.
        traced = client.compile_task(
            CompilationTask("trace-probe", spec, circuit_name="graph",
                            num_qubits=sizes["graph"], seed=7),
            trace=True)
        trace_payload = traced.trace or {}
        events = trace_payload.get("traceEvents") or []
        durations = [event for event in events if event.get("ph") == "X"]
        span_ids = {event["args"]["span_id"] for event in durations}
        roots = [event for event in durations
                 if event["args"].get("parent_id") is None]
        orphans = [event for event in events
                   if event["args"].get("parent_id") not in span_ids
                   and event["args"].get("parent_id") is not None]
        names = {event.get("name") for event in durations}
        check("traced compile returns trace events",
              traced.ok and traced.source == "compiled" and bool(events),
              f"source={traced.source} events={len(events)}")
        check("trace has exactly one root span (gateway.request)",
              len(roots) == 1 and roots[0]["name"] == "gateway.request",
              f"roots={[event['name'] for event in roots]}")
        check("every trace event's parent resolves (single tree)",
              not orphans, f"orphans={[e['name'] for e in orphans]}")
        check("trace spans cover pool, pipeline and store layers",
              {"pool.task", "compile_task", "store.put"} <= names
              and any(name.startswith("pass.") for name in names),
              f"names={sorted(names)}")
        check("trace is valid Chrome trace JSON",
              bool(json.dumps(trace_payload)) and all(
                  isinstance(event.get("ts"), (int, float))
                  and isinstance(event.get("pid"), int)
                  for event in events))
        if args.trace_out:
            Path(args.trace_out).write_text(
                json.dumps(trace_payload, indent=2) + "\n")
            print(f"wrote {args.trace_out}")

        # Metrics verb: JSON snapshot and Prometheus text exposition.
        gateway_requests = client.stats()["gateway"]["requests"]
        metrics = client.metrics()
        snapshot = metrics.get("metrics") or {}
        counters = snapshot.get("counters") or {}
        observed_requests = sum(
            value for series, value in counters.items()
            if series.startswith("repro_gateway_requests_total"))
        check("metrics verb returns a JSON snapshot",
              metrics.get("ok") is True
              and {"counters", "gauges", "histograms"} <= set(snapshot),
              f"keys={sorted(snapshot)}")
        check("metrics snapshot agrees with the stats verb",
              observed_requests == gateway_requests > 0,
              f"registry={observed_requests} stats={gateway_requests}")
        prometheus = client.metrics(format="prometheus")
        problems = validate_prometheus_text(prometheus.get("text", ""))
        check("prometheus exposition is well-formed",
              prometheus.get("ok") is True and not problems,
              "; ".join(problems[:3]))

        before = client.stats()["gateway"]

    # Concurrent identical requests (fresh key) must trigger exactly 1 compile.
    fanout = 6
    responses: List[object] = [None] * fanout
    qpe = CompilationTask("qpe-concurrent", spec, circuit_name="qpe",
                          num_qubits=sizes["qpe"])

    def submit(index: int) -> None:
        with ServingClient(args.host, port) as worker_client:
            responses[index] = worker_client.compile_task(qpe)

    threads = [threading.Thread(target=submit, args=(index,))
               for index in range(fanout)]
    for worker in threads:
        worker.start()
    for worker in threads:
        worker.join(timeout=600)

    with ServingClient(args.host, port) as client:
        after = client.stats()["gateway"]
        store_stats = client.stats().get("store")
        client.shutdown()

    compiles = after["compiles"] - before["compiles"]
    shared = (after["coalesced"] - before["coalesced"]) + \
        (after["store_hits"] - before["store_hits"])
    check("all concurrent responses ok",
          all(response is not None and response.ok for response in responses))
    check("concurrent identical requests trigger exactly 1 compile",
          compiles == 1, f"compiles={compiles}")
    check("remaining concurrent requests coalesced or store-served",
          shared == fanout - 1, f"coalesced+hits={shared}")
    check("concurrent responses all share one digest",
          len({json.dumps(response.digest, sort_keys=True)
               for response in responses if response is not None}) == 1)

    thread.join(timeout=10)
    _write_stats(gateway, args.stats_out,
                 extra={"checks": checks, "store_final": store_stats})
    _write_metrics(args.metrics_dump)
    print(f"self-test: {sum(1 for c in checks if c['passed'])}/{len(checks)} "
          f"checks passed")
    return 0 if ok else 1


# ----------------------------------------------------------------------
# Chaos self-test mode
# ----------------------------------------------------------------------
def run_chaos_self_test(args) -> int:
    """End-to-end fault-injection smoke (the CI chaos job).

    Arms one worker crash, one hung compile, one corrupted store entry and
    one severed connection against a duplicate-heavy request stream, then
    asserts the robustness contract: every request completes (the harness
    resubmits on ``error_class == "retryable"`` exactly as a production
    client would), duplicates share digests, the corrupted entry is
    quarantined instead of served, and the ``health`` verb accounts for
    every injected fault.
    """
    from ..resilience import FaultPlan, FaultSpec, FaultyCompile, RetryPolicy

    scale = args.scale
    spec = ArchitectureSpec.scaled("mixed", scale)
    sizes = {name: scaled_register_size(name, scale)
             for name in ("qft", "graph", "qpe")}
    plan = FaultPlan(tempfile.mkdtemp(prefix="repro-chaos-ledger-"), (
        FaultSpec("crash", "worker", match="graph-r0"),
        FaultSpec("hang", "worker", match="qpe-r0", hang_s=6.0),
        FaultSpec("corrupt", "store-put"),
        FaultSpec("sever", "tcp-response", match="compile"),
    ))
    store_dir = args.store_dir or tempfile.mkdtemp(prefix="repro-chaos-store-")
    store = ResultStore(store_dir, fault_plan=plan)
    gateway = ServingGateway(
        store, max_workers=args.workers, max_pending=args.max_pending,
        pool="thread", evaluate=not args.no_evaluate,
        deadline_s=3.0,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.05),
        compile_fn=FaultyCompile(plan))
    thread, port = _start_background_server(gateway, args.host,
                                            fault_plan=plan)

    checks: List[Dict[str, object]] = []
    ok = True

    def check(name: str, passed: bool, detail: str = "") -> None:
        nonlocal ok
        ok &= passed
        checks.append({"check": name, "passed": passed, "detail": detail})
        print(f"[{'ok' if passed else 'FAIL'}] {name}"
              + (f" — {detail}" if detail and not passed else ""))

    structures = ("qft", "graph", "qpe")
    rounds = 4
    digests: Dict[str, set] = {name: set() for name in structures}
    failures: List[str] = []
    resubmits = 0
    with ServingClient(args.host, port) as client:
        for round_index in range(rounds):
            for name in structures:
                task = CompilationTask(f"{name}-r{round_index}", spec,
                                       circuit_name=name,
                                       num_qubits=sizes[name])
                response = None
                for _attempt in range(4):
                    response = client.compile_task(task)
                    if response.ok or response.error_class != "retryable":
                        break
                    resubmits += 1
                if response is None or not response.ok:
                    failures.append(f"{task.task_id}: {response.error}")
                else:
                    digests[name].add(response.digest["sha256"])
        health = client.health()
        client.shutdown()
    thread.join(timeout=10)

    check("every request completed under faults", not failures,
          "; ".join(failures))
    check("deadline-killed request needed exactly one resubmission",
          resubmits == 1, f"resubmits={resubmits}")
    check("duplicates share one digest per structure",
          all(len(shas) == 1 for shas in digests.values()),
          str({name: len(shas) for name, shas in digests.items()}))
    check("every armed fault fired", plan.fired() == 4,
          f"fired={plan.fired()}")
    check("corrupted entry quarantined, never served",
          store.stats.corruptions == 1 and len(store.quarantined()) == 1,
          f"corruptions={store.stats.corruptions} "
          f"quarantined={len(store.quarantined())}")
    pool_stats = health.get("pool") or {}
    check("supervision observed the crash and the deadline kill",
          pool_stats.get("crashes", 0) >= 1
          and pool_stats.get("deadline_kills", 0) == 1,
          f"pool={pool_stats}")
    check("breaker closed, gateway healthy after recovery",
          health.get("status") == "ok"
          and (health.get("breaker") or {}).get("state") == "closed",
          f"status={health.get('status')} breaker={health.get('breaker')}")

    _write_stats(gateway, args.stats_out,
                 extra={"checks": checks, "health": health,
                        "faults_fired": plan.fired()})
    _write_metrics(args.metrics_dump)
    print(f"chaos self-test: {sum(1 for c in checks if c['passed'])}"
          f"/{len(checks)} checks passed")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.chaos and not args.self_test:
        raise SystemExit("--chaos requires --self-test")
    if args.self_test:
        return run_chaos_self_test(args) if args.chaos else run_self_test(args)
    return run_server(args)


if __name__ == "__main__":
    sys.exit(main())
