"""Synchronous client for the serving gateway's TCP protocol.

Plain blocking sockets (one JSON object per line), so callers — scripts,
the load generator, CI smoke jobs — need no asyncio of their own::

    from repro.server import ServingClient
    with ServingClient(port=7421) as client:
        response = client.compile_task(task)       # ServeResponse
        print(response.source, response.digest["sha256"])
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from ..service.batch import CompilationTask
from .protocol import (
    ProtocolError,
    ServeResponse,
    decode_line,
    encode_line,
    task_to_wire,
)

__all__ = ["ServingClient", "ServingUnavailable", "wait_until_ready"]


class ServingUnavailable(ConnectionError):
    """Raised when the gateway cannot be reached or drops the connection."""


class ServingClient:
    """One blocking connection to a :class:`~repro.server.ServingServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421, *,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServingUnavailable(
                f"cannot connect to gateway at {host}:{port}: {exc}") from None
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            self._file.write(encode_line(payload))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServingUnavailable(f"gateway connection lost: {exc}") from None
        if not line:
            raise ServingUnavailable("gateway closed the connection")
        return decode_line(line)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def compile_task(self, task: CompilationTask) -> ServeResponse:
        """Submit one compile request and return its :class:`ServeResponse`."""
        payload = self._roundtrip({"op": "compile", "task": task_to_wire(task)})
        if payload.get("op") == "error":
            raise ProtocolError(payload.get("error", "unknown protocol error"))
        return ServeResponse.from_wire(payload)

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"})

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("ok"))

    def shutdown(self) -> None:
        """Ask the server to stop accepting work (response is best-effort)."""
        try:
            self._roundtrip({"op": "shutdown"})
        except ServingUnavailable:
            pass

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_ready(host: str, port: int, timeout: float = 15.0,
                     interval: float = 0.05) -> bool:
    """Poll until a gateway answers ``ping`` (server startup handshake)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServingClient(host, port, timeout=interval * 40) as client:
                if client.ping():
                    return True
        except (ServingUnavailable, ProtocolError):
            pass
        time.sleep(interval)
    return False
