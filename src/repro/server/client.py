"""Synchronous client for the serving gateway's TCP protocol.

Plain blocking sockets (one JSON object per line), so callers — scripts,
the load generator, CI smoke jobs — need no asyncio of their own::

    from repro.server import ServingClient
    with ServingClient(port=7421) as client:
        response = client.compile_task(task)       # ServeResponse
        print(response.source, response.digest["sha256"])

Compile requests are **retried across reconnects**: a compile is idempotent
on the server (store + coalescing make a resubmitted request a cheap hit or
a join onto the in-flight compile), so when the connection drops mid-round
trip the client reconnects under a bounded
:class:`~repro.resilience.RetryPolicy` and resubmits the identical request.
Each attempt carries the same client-assigned ``request_id``, which the
server echoes verbatim — a response that answers a different request than
the one just sent is discarded instead of mis-paired.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, Optional

from ..resilience import RetryPolicy
from ..service.batch import CompilationTask
from .protocol import (
    ProtocolError,
    ServeResponse,
    decode_line,
    encode_line,
    task_to_wire,
)

__all__ = ["ServingClient", "ServingUnavailable", "wait_until_ready"]


class ServingUnavailable(ConnectionError):
    """Raised when the gateway cannot be reached or drops the connection."""


class ServingClient:
    """One blocking connection to a :class:`~repro.server.ServingServer`.

    ``retry_policy`` bounds reconnect-and-resubmit for idempotent compile
    requests (default: 3 attempts with exponential backoff).  Passing
    ``RetryPolicy(max_attempts=1)`` restores fail-fast behaviour.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7421, *,
                 timeout: float = 300.0,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy()
        #: Successful reconnects performed by the retry loop.
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
        except OSError as exc:
            raise ServingUnavailable(
                f"cannot connect to gateway at {self.host}:{self.port}: "
                f"{exc}") from None
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()
        self.reconnects += 1

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _roundtrip(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            self._file.write(encode_line(payload))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServingUnavailable(f"gateway connection lost: {exc}") from None
        if not line:
            raise ServingUnavailable("gateway closed the connection")
        if not line.endswith(b"\n"):
            # A severed connection mid-response leaves a truncated line.
            raise ServingUnavailable("gateway connection severed mid-response")
        return decode_line(line)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def compile_task(self, task: CompilationTask, *,
                     timeout_s: Optional[float] = None,
                     request_id: Optional[str] = None,
                     trace: bool = False) -> ServeResponse:
        """Submit one compile request and return its :class:`ServeResponse`.

        Retries across reconnects under :attr:`retry_policy`; every attempt
        resubmits the identical payload with the same ``request_id``, so
        the server side coalesces or store-hits rather than recompiling.

        ``trace=True`` asks the server to record a span tree for this
        request; the response then carries it as Chrome trace events under
        ``response.trace``.
        """
        request_id = request_id or uuid.uuid4().hex
        payload: Dict[str, Any] = {"op": "compile",
                                   "task": task_to_wire(task),
                                   "request_id": request_id}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if trace:
            payload["trace"] = True
        attempts = 0
        while True:
            attempts += 1
            try:
                answer = self._request_once(payload, request_id)
            except ServingUnavailable:
                if not self.retry_policy.allows_retry(attempts):
                    raise
                time.sleep(self.retry_policy.backoff_s(attempts,
                                                       token=request_id))
                self._reconnect()
                continue
            if answer.get("op") == "error":
                raise ProtocolError(answer.get("error",
                                               "unknown protocol error"))
            return ServeResponse.from_wire(answer)

    def _request_once(self, payload: Dict[str, Any],
                      request_id: str) -> Dict[str, Any]:
        answer = self._roundtrip(payload)
        echoed = answer.get("request_id")
        if echoed is not None and echoed != request_id:
            # A response for some other request on this connection (e.g. a
            # stale answer after a partial failure): the pairing is broken,
            # treat the connection as unusable rather than mis-attribute.
            raise ServingUnavailable(
                f"response pairing broken: expected request_id "
                f"{request_id!r}, got {echoed!r}")
        return answer

    def stats(self) -> Dict[str, Any]:
        return self._roundtrip({"op": "stats"})

    def metrics(self, format: str = "json") -> Dict[str, Any]:
        """Telemetry registry snapshot (``format="prometheus"`` for text)."""
        payload: Dict[str, Any] = {"op": "metrics"}
        if format != "json":
            payload["format"] = format
        return self._roundtrip(payload)

    def health(self) -> Dict[str, Any]:
        """Supervision snapshot (pool / breaker / retry / store counters)."""
        return self._roundtrip({"op": "health"})

    def ping(self) -> bool:
        return bool(self._roundtrip({"op": "ping"}).get("ok"))

    def shutdown(self) -> None:
        """Ask the server to stop accepting work (response is best-effort)."""
        try:
            self._roundtrip({"op": "shutdown"})
        except ServingUnavailable:
            pass

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_until_ready(host: str, port: int, timeout: float = 15.0,
                     interval: float = 0.05) -> bool:
    """Poll until a gateway answers ``ping`` (server startup handshake)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServingClient(host, port, timeout=interval * 40) as client:
                if client.ping():
                    return True
        except (ServingUnavailable, ProtocolError):
            pass
        time.sleep(interval)
    return False
