"""repro.server — asynchronous serving gateway over the compile pipeline.

The long-running front-end of the reproduction: an asyncio gateway that
serves compile requests from the persistent :mod:`repro.store`, coalesces
identical in-flight requests into one compile, and runs misses on a bounded
worker pool — plus a newline-delimited-JSON TCP server, a synchronous
client, and a ``python -m repro.server`` CLI (with ``--self-test`` and
``--self-test --chaos`` modes used by CI).

The pool is **supervised** (:mod:`repro.resilience`): dead workers are
reaped and replaced, crashed tasks re-dispatched under a bounded retry
budget, hung tasks deadline-killed; a circuit breaker diverts traffic to a
bounded in-process degraded lane when the pool is unhealthy, and the
``health`` protocol verb exposes the whole supervision surface.

Quickstart::

    PYTHONPATH=src python -m repro.server --port 7421 --store-dir ./store

    from repro import ArchitectureSpec, CompilationTask
    from repro.server import ServingClient
    spec = ArchitectureSpec.scaled("mixed", scale=0.1)
    task = CompilationTask("qft-0", spec, circuit_name="qft", num_qubits=12)
    with ServingClient(port=7421) as client:
        first = client.compile_task(task)    # source == "compiled"
        again = client.compile_task(task)    # source == "store" — same digest
"""

from .client import ServingClient, ServingUnavailable, wait_until_ready
from .gateway import GatewayStats, ServingGateway, compile_task_artifact
from .protocol import (
    ProtocolError,
    ServeResponse,
    spec_from_wire,
    spec_to_wire,
    task_from_wire,
    task_to_wire,
)
from .tcp import ServerStats, ServingServer

__all__ = [
    "ServingGateway",
    "GatewayStats",
    "ServingServer",
    "ServerStats",
    "ServingClient",
    "ServingUnavailable",
    "ServeResponse",
    "ProtocolError",
    "compile_task_artifact",
    "task_to_wire",
    "task_from_wire",
    "spec_to_wire",
    "spec_from_wire",
    "wait_until_ready",
]
