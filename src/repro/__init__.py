"""repro — Hybrid gate/shuttling circuit mapping for neutral-atom quantum computers.

Pure-Python reproduction of "Hybrid Circuit Mapping: Leveraging the Full
Spectrum of Computational Capabilities of Neutral Atom Quantum Computers"
(Schmid, Park, Kang, Wille — DAC 2024).

Public API overview
-------------------
* :mod:`repro.circuit` — circuit IR, benchmark library, decompositions
* :mod:`repro.hardware` — trap topologies (square/rectangular/zoned),
  device presets, connectivity
* :mod:`repro.shuttling` — atom moves and AOD batch scheduling
* :mod:`repro.mapping` — the hybrid mapper (gate-based + shuttling routing)
* :mod:`repro.pipeline` — pass-based compilation pipeline (the canonical
  compile path: decompose → layout → route → schedule → evaluate)
* :mod:`repro.service` — parallel batch compilation of independent circuits
* :mod:`repro.store` — persistent content-addressed compiled-result store
* :mod:`repro.server` — asyncio serving gateway (store hits, request
  coalescing, bounded worker pool) with TCP protocol + sync client
* :mod:`repro.scheduling` — ASAP hardware scheduler
* :mod:`repro.evaluation` — success-probability model and Table-1 harness

Quickstart
----------
>>> from repro import MapperConfig, compile_circuit, get_benchmark, preset
>>> architecture = preset("mixed", lattice_rows=8, num_atoms=40)
>>> circuit = get_benchmark("graph", num_qubits=30)
>>> context = compile_circuit(circuit, architecture, MapperConfig.hybrid(1.0))
>>> context.result.num_swaps + context.result.num_moves >= 0
True
>>> context.metrics.delta_fidelity >= 0
True
"""

from .circuit import (
    CircuitDAG,
    Gate,
    GateKind,
    QuantumCircuit,
    decompose_mcx_to_mcz,
    decompose_swaps_to_cz,
    decompose_to_native,
)
from .circuit.library import BENCHMARK_NAMES, get_benchmark
from .evaluation import (
    EvaluationMetrics,
    ExperimentSettings,
    evaluate,
    fidelity_decrease,
    format_table,
    run_mode_comparison,
    run_table1,
    success_probability,
)
from .hardware import (
    Fidelities,
    GateDurations,
    GridTopology,
    NeutralAtomArchitecture,
    RectangularLattice,
    SiteConnectivity,
    SquareLattice,
    Topology,
    Zone,
    ZonedTopology,
    build_topology,
    preset,
)
from .mapping import (
    HybridMapper,
    MapperConfig,
    MappingError,
    MappingResult,
    MappingState,
)
from .pipeline import (
    CompilationContext,
    PassManager,
    compile_circuit,
    default_pipeline,
)
from .scheduling import Schedule, Scheduler
from .service import (
    ArchitectureCache,
    ArchitectureSpec,
    BatchCompiler,
    BatchResult,
    CompilationTask,
    task_store_key,
)
from .store import (
    CompiledArtifact,
    ResultStore,
    StoreKey,
    compute_store_key,
)
from .server import (
    ServingClient,
    ServingGateway,
    ServingServer,
)
from ._version import __version__

__all__ = [
    "__version__",
    # circuit
    "QuantumCircuit", "Gate", "GateKind", "CircuitDAG",
    "decompose_mcx_to_mcz", "decompose_swaps_to_cz", "decompose_to_native",
    "get_benchmark", "BENCHMARK_NAMES",
    # hardware
    "NeutralAtomArchitecture", "SquareLattice", "SiteConnectivity",
    "Topology", "GridTopology", "RectangularLattice", "Zone", "ZonedTopology",
    "build_topology", "GateDurations", "Fidelities", "preset",
    # mapping
    "HybridMapper", "MapperConfig", "MappingResult", "MappingState", "MappingError",
    # pipeline
    "CompilationContext", "PassManager", "default_pipeline", "compile_circuit",
    # service
    "ArchitectureSpec", "ArchitectureCache", "CompilationTask", "BatchCompiler",
    "BatchResult", "task_store_key",
    # store + server
    "ResultStore", "CompiledArtifact", "StoreKey", "compute_store_key",
    "ServingGateway", "ServingServer", "ServingClient",
    # scheduling
    "Scheduler", "Schedule",
    # evaluation
    "evaluate", "EvaluationMetrics", "ExperimentSettings", "run_table1",
    "run_mode_comparison", "format_table", "success_probability", "fidelity_decrease",
]
