"""Structured tracing: span trees across threads, processes and the pool.

One gateway request becomes one **trace**: a tree of :class:`Span` records
linked by ``trace_id`` / ``parent_id``, covering gateway admission, the
prep executor, the supervised-pool worker (in another thread *or* process),
the pipeline passes, shard slice routing/stitching and store accesses.

The propagation primitive is :class:`TraceContext` — a tiny frozen
(picklable) pair of ids.  :class:`~repro.resilience.SupervisedPool` carries
it on the task wire format; the worker :func:`activate`\\ s it, runs the
task under a span, and ships the finished spans back with the result, where
the supervisor :func:`ingest`\\ s them into the process-global
:class:`Tracer`.  Lifecycle events the worker cannot report itself (crash,
deadline kill, retry) are recorded supervisor-side as **instant** spans
under the same context, so a chaotic task still yields a complete tree.

Recording is gated on an *active context* held in a :mod:`contextvars`
variable: without one, :func:`span` returns a shared no-op handle, so the
instrumented hot paths (pipeline passes, store get/put, shard slices) cost
a single context-variable load when nothing is being traced.  Timestamps
are ``time.monotonic`` — on Linux a system-wide clock, so spans from forked
pool workers land on the same timeline as the gateway's.

:func:`chrome_trace_events` renders any span list as Chrome trace-event
JSON (the ``{"traceEvents": [...]}`` shape Perfetto and ``chrome://tracing``
load directly); the gateway's ``trace: true`` request flag and
``perf_report.py --trace`` both export through it.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import OrderedDict, deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "Span",
    "Tracer",
    "TRACER",
    "start_trace",
    "span",
    "activate",
    "current_context",
    "record_instant",
    "chrome_trace_events",
    "span_tree",
]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """Propagation handle: which trace, and which span to parent under.

    Frozen and field-picklable, so it crosses process boundaries on the
    supervised pool's task queue unchanged.
    """

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        return TraceContext(self.trace_id, _new_id())


@dataclass
class Span:
    """One finished (or instant) operation on a trace's timeline."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    #: "span" (has duration) or "instant" (a point event, e.g. pool.crash).
    kind: str = "span"
    pid: int = 0
    tid: int = 0

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class _SpanHandle:
    """Context-manager handle of an in-flight span (returned by :func:`span`)."""

    __slots__ = ("_span", "_sink", "_token")

    def __init__(self, span_record: Span, sink: List[Span]) -> None:
        self._span = span_record
        self._sink = sink
        self._token = None

    @property
    def context(self) -> TraceContext:
        return TraceContext(self._span.trace_id, self._span.span_id)

    def set(self, **attrs) -> None:
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._token = _ACTIVE.set((self.context, self._sink))
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        self._span.end_s = time.monotonic()
        if exc_type is not None:
            self._span.status = "error"
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._sink.append(self._span)


class _NullSpan:
    """Shared no-op handle used whenever no trace is active."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()

#: (active context, sink list) of the current trace, or None.  asyncio
#: tasks copy the context at creation, so concurrent requests are isolated;
#: executor threads do NOT inherit it — worker-side code re-activates
#: explicitly (see :func:`activate`).
_ACTIVE: "ContextVar[Optional[Tuple[TraceContext, List[Span]]]]" = \
    ContextVar("repro_active_trace", default=None)


def current_context() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` when not tracing."""
    active = _ACTIVE.get()
    return None if active is None else active[0]


def span(name: str, **attrs) -> "_SpanHandle | _NullSpan":
    """A child span under the active context; a shared no-op without one."""
    active = _ACTIVE.get()
    if active is None:
        return _NULL_SPAN
    parent, sink = active
    record = Span(
        trace_id=parent.trace_id, span_id=_new_id(),
        parent_id=parent.span_id, name=name,
        start_s=time.monotonic(), attrs=dict(attrs),
        pid=os.getpid(), tid=threading.get_ident())
    return _SpanHandle(record, sink)


class _TraceHandle:
    """Root handle yielded by :func:`start_trace`."""

    __slots__ = ("root", "spans", "_token")

    def __init__(self, root: Span, spans: List[Span]) -> None:
        self.root = root
        self.spans = spans
        self._token = None

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.root.trace_id, self.root.span_id)

    @property
    def trace_id(self) -> str:
        return self.root.trace_id

    def set(self, **attrs) -> None:
        self.root.attrs.update(attrs)


@contextmanager
def start_trace(name: str, **attrs):
    """Open a new root span and activate its context for the ``with`` body.

    Spans opened inside the body (same thread/task, or explicitly
    re-activated elsewhere) accumulate on ``handle.spans``; the root span
    is closed and appended on exit, so afterwards ``handle.spans`` is the
    complete locally-recorded trace.  Spans recorded remotely (pool
    workers) are ingested into :data:`TRACER` by the supervisor — drain
    them by ``handle.trace_id`` and concatenate.
    """
    sink: List[Span] = []
    root = Span(
        trace_id=_new_id(), span_id=_new_id(), parent_id=None, name=name,
        start_s=time.monotonic(), attrs=dict(attrs),
        pid=os.getpid(), tid=threading.get_ident())
    handle = _TraceHandle(root, sink)
    token = _ACTIVE.set((handle.context, sink))
    try:
        yield handle
    except BaseException:
        root.status = "error"
        raise
    finally:
        _ACTIVE.reset(token)
        root.end_s = time.monotonic()
        sink.append(root)


@contextmanager
def activate(ctx: Optional[TraceContext], sink: Optional[List[Span]] = None):
    """Adopt a propagated context (worker threads/processes, executors).

    Yields the sink list; spans finished inside the body append to it as
    they close, so the caller can ship whatever was captured even when the
    body raises.  ``ctx=None`` is a no-op (yields an unused list), letting
    call sites stay unconditional.
    """
    captured: List[Span] = [] if sink is None else sink
    if ctx is None:
        yield captured
        return
    token = _ACTIVE.set((ctx, captured))
    try:
        yield captured
    finally:
        _ACTIVE.reset(token)


def record_instant(ctx: Optional[TraceContext], name: str, **attrs) -> None:
    """Record a point event under ``ctx`` directly into :data:`TRACER`.

    The supervisor uses this for lifecycle events whose task cannot report
    them itself: a crashed worker's ``pool.crash``, a ``pool.deadline_kill``,
    a ``pool.retry`` re-dispatch.  No-op without a context.
    """
    if ctx is None:
        return
    now = time.monotonic()
    TRACER.ingest([Span(
        trace_id=ctx.trace_id, span_id=_new_id(), parent_id=ctx.span_id,
        name=name, start_s=now, end_s=now, attrs=dict(attrs),
        kind="instant", pid=os.getpid(), tid=threading.get_ident())])


class Tracer:
    """Bounded process-global store of ingested spans, keyed by trace id.

    Holds spans that arrive *outside* their trace's local sink — worker
    spans shipped back through the pool, supervisor instant events — until
    the trace owner drains them.  Bounded both in traces and spans per
    trace; overflow is counted, never raised, because telemetry must not
    take the serving path down.
    """

    def __init__(self, max_traces: int = 256,
                 max_spans_per_trace: int = 4096) -> None:
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self.dropped = 0
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()

    def ingest(self, spans: Iterable[Span]) -> None:
        with self._lock:
            for record in spans:
                bucket = self._traces.get(record.trace_id)
                if bucket is None:
                    while len(self._traces) >= self.max_traces:
                        _, evicted = self._traces.popitem(last=False)
                        self.dropped += len(evicted)
                    bucket = []
                    self._traces[record.trace_id] = bucket
                if len(bucket) >= self.max_spans_per_trace:
                    self.dropped += 1
                    continue
                bucket.append(record)

    def drain(self, trace_id: str) -> List[Span]:
        """Remove and return every ingested span of ``trace_id``."""
        with self._lock:
            return self._traces.pop(trace_id, [])

    def peek(self, trace_id: str) -> List[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, []))


#: Process-global tracer the supervised pool and gateway share.
TRACER = Tracer()


# ----------------------------------------------------------------------
# Export + analysis helpers
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Iterable[Span]) -> Dict[str, object]:
    """Render spans as Chrome trace-event JSON (Perfetto-loadable).

    Complete spans become ``ph: "X"`` duration events, instants become
    ``ph: "i"`` point events; timestamps are microseconds relative to the
    earliest span so the file opens at t=0 regardless of process uptime.
    """
    records = list(spans)
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    base = min(record.start_s for record in records)
    events: List[Dict[str, object]] = []
    for record in sorted(records, key=lambda entry: entry.start_s):
        args: Dict[str, object] = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
            "parent_id": record.parent_id,
            "status": record.status,
        }
        args.update(record.attrs)
        event: Dict[str, object] = {
            "name": record.name,
            "ts": round((record.start_s - base) * 1e6, 3),
            "pid": record.pid,
            "tid": record.tid,
            "cat": "repro",
            "args": args,
        }
        if record.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(record.duration_s * 1e6, 3)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(spans: Iterable[Span]) -> Dict[Optional[str], List[Span]]:
    """Children-by-parent-id index (test/analysis helper).

    ``tree[None]`` holds the roots; a well-formed single-request trace has
    exactly one root and every other span's ``parent_id`` resolves to a
    span in the same trace (parent ids are kept verbatim, so an orphaned
    span shows up as a key that is not any span's id — tests assert there
    are none).
    """
    tree: Dict[Optional[str], List[Span]] = {}
    for record in spans:
        tree.setdefault(record.parent_id, []).append(record)
    return tree
