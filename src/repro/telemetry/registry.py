"""Process-global metrics registry: counters, gauges, histograms.

Every layer of the system used to invent its own counter scheme — dataclass
field bumps in the gateway and TCP server, ``setattr`` loops in the store
and pool, ad-hoc timing dicts in the benchmarks.  This module replaces them
with one registry of named instruments:

* **Counter** — monotonic event count (``inc``).
* **Gauge** — last-written value (``set``).
* **Histogram** — fixed bucket boundaries, count and sum; supports
  percentile estimates by linear interpolation over the cumulative bucket
  counts.

Instruments are get-or-create by ``(name, labels)`` and thread-safe.  The
registry is **near-zero-cost when disabled**: each record call is one
attribute load and a branch.  The clock is injectable so tests step time
instead of sleeping.  Two exporters render the same state:
:meth:`MetricsRegistry.snapshot` (deterministic JSON dict, served by the
gateway's ``metrics`` protocol verb) and
:meth:`MetricsRegistry.render_prometheus` (text exposition format, the
``format: "prometheus"`` variant of the same verb).

Telemetry never influences routing: instruments only *read* clocks and
count events, so goldens and the differential suites are byte-identical
with the registry enabled, disabled, and under either exporter —
``tests/telemetry`` asserts the cheap half of that and the golden suite the
rest.
"""

from __future__ import annotations

import itertools
import math
import re
import time
from bisect import bisect_left
from threading import Lock
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CounterSet",
    "REGISTRY",
    "get_registry",
    "percentile",
    "validate_prometheus_text",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds-scale latency buckets: sub-millisecond store touches up to
#: minute-scale full compiles, roughly geometric.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

_LabelItems = Tuple[Tuple[str, str], ...]


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of raw samples.

    Matches ``statistics.quantiles(..., method="inclusive")``: the value at
    position ``(len - 1) * fraction`` of the sorted data, interpolating
    between neighbours.  This is the one percentile implementation shared
    by the serving benchmark and the gateway's latency summary, so bench
    and server report numbers from identical math.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * fraction
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def _normalise_labels(labels: Optional[Dict[str, str]]) -> _LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


def _series_name(name: str, label_items: _LabelItems) -> str:
    if not label_items:
        return name
    rendered = ",".join(f'{key}="{_escape_label(value)}"'
                        for key, value in label_items)
    return f"{name}{{{rendered}}}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


class Counter:
    """Monotonic counter.  ``value`` reads are lock-free (int loads are
    atomic in CPython); increments take the instrument lock."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 label_items: _LabelItems) -> None:
        self._registry = registry
        self.name = name
        self.label_items = label_items
        self._lock = Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters are monotonic; inc must be >= 0")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (e.g. breaker state, live worker count)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 label_items: _LabelItems) -> None:
        self._registry = registry
        self.name = name
        self.label_items = label_items
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.value = value


class Histogram:
    """Fixed-boundary histogram with count, sum and an implicit +Inf bucket.

    ``quantile`` estimates percentiles by linear interpolation over the
    cumulative bucket counts — coarse but dependency-free, and the bucket
    boundaries are part of the export so a scraper recomputes identically.
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 label_items: _LabelItems,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self._registry = registry
        self.name = name
        self.label_items = label_items
        self.bounds = bounds
        self._lock = Lock()
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value

    def quantile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0..1) of the observations."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            total = self.count
            counts = list(self.bucket_counts)
        if total == 0:
            return 0.0
        target = fraction * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.bounds[-1])
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if index >= len(self.bounds):
                    return upper  # open-ended bucket: clamp to last bound
                within = (target - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, within))
        return self.bounds[-1]


class MetricsRegistry:
    """Get-or-create registry of named, optionally labelled instruments.

    One process-global instance (:data:`REGISTRY`) backs the whole system;
    tests build private registries.  Re-registering a name with a different
    instrument kind (or different histogram buckets) is an error — silent
    kind drift is exactly the counter-rot this module exists to end.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self.enabled = True
        self.clock = clock
        self._lock = Lock()
        self._instruments: Dict[Tuple[str, _LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(name, labels, "counter", help,
                                   lambda items: Counter(self, name, items))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(name, labels, "gauge", help,
                                   lambda items: Gauge(self, name, items))

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        instrument = self._get_or_create(
            name, labels, "histogram", help,
            lambda items: Histogram(self, name, items, buckets))
        if instrument.bounds != tuple(sorted(float(b) for b in buckets)):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.bounds}")
        return instrument

    def _get_or_create(self, name: str, labels, kind: str, help: str,
                       factory):
        items = _normalise_labels(labels)
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {existing_kind}, not a {kind}")
            instrument = self._instruments.get((name, items))
            if instrument is None:
                instrument = factory(items)
                self._instruments[(name, items)] = instrument
                self._kinds[name] = kind
                if help and name not in self._help:
                    self._help[name] = help
            return instrument

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._help.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic JSON-safe view of every series.

        Counters and gauges map series name (labels rendered inline) to
        value; histograms to ``{count, sum, buckets}`` where ``buckets``
        maps each upper bound (and ``"+Inf"``) to its cumulative count.
        """
        with self._lock:
            instruments = sorted(
                self._instruments.items(),
                key=lambda entry: (entry[0][0], entry[0][1]))
        payload: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for (name, items), instrument in instruments:
            series = _series_name(name, items)
            if instrument.kind == "counter":
                payload["counters"][series] = instrument.value
            elif instrument.kind == "gauge":
                payload["gauges"][series] = instrument.value
            else:
                cumulative = 0
                buckets: Dict[str, int] = {}
                for bound, bucket_count in zip(
                        instrument.bounds, instrument.bucket_counts):
                    cumulative += bucket_count
                    buckets[repr(bound)] = cumulative
                cumulative += instrument.bucket_counts[-1]
                buckets["+Inf"] = cumulative
                payload["histograms"][series] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": buckets,
                }
        return payload

    def render_prometheus(self) -> str:
        """Text exposition format (``# HELP`` / ``# TYPE`` + sample lines)."""
        with self._lock:
            instruments = sorted(
                self._instruments.items(),
                key=lambda entry: (entry[0][0], entry[0][1]))
            helps = dict(self._help)
            kinds = dict(self._kinds)
        lines: List[str] = []
        emitted_header = set()
        for (name, items), instrument in instruments:
            if name not in emitted_header:
                emitted_header.add(name)
                if helps.get(name):
                    lines.append(f"# HELP {name} {helps[name]}")
                lines.append(f"# TYPE {name} {kinds[name]}")
            if instrument.kind in ("counter", "gauge"):
                lines.append(f"{_series_name(name, items)} "
                             f"{_format_value(instrument.value)}")
                continue
            cumulative = 0
            for bound, bucket_count in zip(instrument.bounds,
                                           instrument.bucket_counts):
                cumulative += bucket_count
                bucket_items = items + (("le", repr(bound)),)
                lines.append(f"{_series_name(name + '_bucket', bucket_items)} "
                             f"{cumulative}")
            cumulative += instrument.bucket_counts[-1]
            lines.append(f"{_series_name(name + '_bucket', items + (('le', '+Inf'),))} "
                         f"{cumulative}")
            lines.append(f"{_series_name(name + '_sum', items)} "
                         f"{_format_value(instrument.sum)}")
            lines.append(f"{_series_name(name + '_count', items)} "
                         f"{instrument.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# ----------------------------------------------------------------------
# Prometheus line-format validation (CI metrics-smoke + self-test check)
# ----------------------------------------------------------------------
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    rf"^{_METRIC_NAME}(?:\{{{_LABEL_PAIR}(?:,{_LABEL_PAIR})*\}})?"
    r" [-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)(?: [0-9]+)?$")
_COMMENT_RE = re.compile(
    rf"^# (?:HELP {_METRIC_NAME} .*|TYPE {_METRIC_NAME} "
    r"(?:counter|gauge|histogram|summary|untyped))$")


def validate_prometheus_text(text: str) -> List[str]:
    """Line-format check of a text exposition payload.

    Returns a list of ``"line N: ..."`` problems — empty means every line
    parses as a comment, a blank line, or a well-formed sample.  Used by
    the serving self-test and the CI metrics-smoke job so a formatting
    regression fails loudly instead of breaking a scraper downstream.
    """
    problems: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_RE.match(line):
                problems.append(f"line {number}: malformed comment {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {number}: malformed sample {line!r}")
    return problems


# ----------------------------------------------------------------------
# CounterSet: registry-backed stats objects with attribute semantics
# ----------------------------------------------------------------------
_INSTANCE_IDS = itertools.count(1)


class CounterSet:
    """Registry-backed counter bundle preserving attribute semantics.

    The pre-telemetry stats objects (``GatewayStats``, ``ServerStats``,
    ``PoolStats``, ``StoreStats``) are read as attributes and bumped with
    ``stats.field += 1`` all over the serving path and its tests.  This
    base class keeps both spellings working while the actual state lives
    in registry counters: attribute reads return the counter value,
    attribute assignment increments by the delta.

    Each instance gets a unique ``instance`` label so concurrent gateways,
    pools and store handles in one process stay independent series in the
    shared registry.  Subclasses set ``FIELDS`` (counter attribute names)
    and ``PREFIX`` (metric name prefix, e.g. ``repro_gateway``).
    """

    FIELDS: Tuple[str, ...] = ()
    PREFIX = "repro"
    HELP: Dict[str, str] = {}

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 instance: Optional[str] = None) -> None:
        registry = registry or get_registry()
        instance = instance or f"{self.PREFIX.rsplit('_', 1)[-1]}-{next(_INSTANCE_IDS)}"
        counters = {
            name: registry.counter(
                f"{self.PREFIX}_{name}_total",
                help=self.HELP.get(name, ""),
                labels={"instance": instance})
            for name in self.FIELDS
        }
        # Bypass __setattr__ for the bookkeeping attributes themselves.
        object.__setattr__(self, "_counters", counters)
        object.__setattr__(self, "instance", instance)
        object.__setattr__(self, "registry", registry)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}")

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            delta = int(value) - counters[name].value
            if delta < 0:
                raise ValueError(
                    f"{type(self).__name__}.{name} is monotonic; cannot "
                    f"go from {counters[name].value} to {value}")
            counters[name].inc(delta)
            return
        object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: counter.value
                for name, counter in self._counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(f"{name}={counter.value}"
                             for name, counter in self._counters.items())
        return f"{type(self).__name__}({rendered})"


#: The process-global registry every production component records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
