"""Unified telemetry: metrics registry, structured tracing, timeline export.

The observability substrate of the serving system (ROADMAP item 1's fleet
mode scrapes and correlates through it):

* :mod:`repro.telemetry.registry` — process-global counters / gauges /
  histograms with JSON-snapshot and Prometheus-text exporters, plus the
  shared :func:`percentile` helper and the :class:`CounterSet` base the
  per-component stats objects are built on.
* :mod:`repro.telemetry.tracing` — :class:`Span` trees propagated across
  the supervised pool's thread/process workers via a picklable
  :class:`TraceContext`, exported as Chrome trace-event JSON
  (Perfetto-loadable) by :func:`chrome_trace_events`.

Telemetry observes; it never decides.  No instrument value feeds back into
routing, so op streams are byte-identical with telemetry enabled or
disabled (the golden and differential suites run with it enabled by
default).
"""

from .registry import (
    REGISTRY,
    Counter,
    CounterSet,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentile,
    validate_prometheus_text,
)
from .tracing import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    activate,
    chrome_trace_events,
    current_context,
    record_instant,
    span,
    span_tree,
    start_trace,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "CounterSet",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "percentile",
    "validate_prometheus_text",
    "TRACER",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "chrome_trace_events",
    "current_context",
    "record_instant",
    "span",
    "span_tree",
    "start_trace",
]
