"""Persistent store keys: the stable identity of one compilation.

A compiled artifact is fully determined by four components, and the store
key is exactly that quadruple (ROADMAP: "store key schema"):

* the **circuit digest** — :meth:`repro.circuit.QuantumCircuit.canonical_digest`,
  a SHA-256 over the structural gate list (name-independent, so the same
  QASM document submitted under different request ids deduplicates),
* the **architecture key** — :meth:`repro.service.ArchitectureSpec.store_key`,
  the normalised canonical string of the full topology identity,
* the **config fingerprint** — :meth:`repro.mapping.MapperConfig.fingerprint`,
  covering every mapper tunable (mode, alphas, lookahead, caches, ...),
* the **repro version** — compilations are bit-identical within one release
  by the differential/golden harnesses, but a new release may legitimately
  shift op streams, so version changes invalidate every prior entry.

Anything *not* in the key must never influence the emitted op stream; that
is precisely the bit-identity contract PR 1-4 established and test.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .._version import __version__

__all__ = ["StoreKey", "compute_store_key"]


@dataclass(frozen=True)
class StoreKey:
    """The ``(circuit, architecture, config, version)`` identity quadruple."""

    circuit_digest: str
    architecture_key: str
    config_fingerprint: str
    version: str = __version__

    def canonical(self) -> str:
        """Canonical one-line serialisation (hashed into :meth:`digest`)."""
        return (f"store-key/v1|version={self.version}"
                f"|circuit={self.circuit_digest}"
                f"|architecture={self.architecture_key}"
                f"|config={self.config_fingerprint}")

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` — the store's file-name identity."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def as_dict(self) -> dict:
        return {
            "circuit_digest": self.circuit_digest,
            "architecture_key": self.architecture_key,
            "config_fingerprint": self.config_fingerprint,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StoreKey":
        return cls(circuit_digest=str(data["circuit_digest"]),
                   architecture_key=str(data["architecture_key"]),
                   config_fingerprint=str(data["config_fingerprint"]),
                   version=str(data["version"]))


def compute_store_key(circuit, architecture_spec, config, *,
                      version: str = __version__) -> StoreKey:
    """Build the :class:`StoreKey` for compiling ``circuit`` on
    ``architecture_spec`` (an :class:`~repro.service.ArchitectureSpec`)
    under ``config`` (a :class:`~repro.mapping.MapperConfig`).

    Accepts the spec/config duck-typed (``store_key()`` / ``fingerprint()``)
    so this module depends only on the circuit layer.
    """
    return StoreKey(
        circuit_digest=circuit.canonical_digest(),
        architecture_key=architecture_spec.store_key(),
        config_fingerprint=config.fingerprint(),
        version=version,
    )
