"""Serialisable compiled artifact: everything a serving layer hands back.

A :class:`CompiledArtifact` captures the products of one pipeline run that
are cheap to persist and sufficient to *serve* the compilation without
re-running it: the canonical op-stream text (the bit-identity contract of
the differential harness), its SHA-256 digest, the headline counts, the
Table-1a metrics, and the per-stage/per-pass timings of the original
compile (kept for observability — a store hit reports what the compile
originally cost).

The JSON encoding is self-verifying: :func:`CompiledArtifact.from_json`
recomputes the op-stream SHA-256 and refuses payloads whose stored digest
does not match, which is what lets :class:`~repro.store.ResultStore`
quarantine corrupted files instead of serving them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..evaluation.metrics import EvaluationMetrics
from .keys import StoreKey

__all__ = ["ARTIFACT_SCHEMA", "ArtifactError", "CompiledArtifact"]

ARTIFACT_SCHEMA = "repro-store-artifact/v1"


class ArtifactError(ValueError):
    """Raised when an artifact payload is malformed or fails integrity."""


def _op_stream_sha256(lines: Tuple[str, ...]) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


@dataclass(frozen=True)
class CompiledArtifact:
    """One persisted compilation result."""

    circuit_name: str
    mode: str
    num_qubits: int
    op_stream: Tuple[str, ...]
    op_stream_sha256: str
    num_operations: int
    num_swaps: int
    num_moves: int
    runtime_seconds: float
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    metrics: Optional[EvaluationMetrics] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_context(cls, context) -> "CompiledArtifact":
        """Capture a finished :class:`~repro.pipeline.CompilationContext`."""
        result = context.require_result()
        lines = tuple(result.op_stream_lines())
        return cls(
            circuit_name=result.circuit.name,
            mode=result.mode,
            num_qubits=result.circuit.num_qubits,
            op_stream=lines,
            op_stream_sha256=_op_stream_sha256(lines),
            num_operations=len(result.operations),
            num_swaps=result.num_swaps,
            num_moves=result.num_moves,
            runtime_seconds=result.runtime_seconds,
            stage_seconds=dict(result.stage_seconds),
            pass_seconds=dict(context.pass_seconds),
            metrics=context.metrics,
        )

    # ------------------------------------------------------------------
    # Serving helpers
    # ------------------------------------------------------------------
    def op_stream_digest(self) -> Dict[str, object]:
        """Same shape as :meth:`repro.mapping.MappingResult.op_stream_digest`,
        so hit-vs-fresh byte-identity is a plain dict comparison."""
        return {
            "sha256": self.op_stream_sha256,
            "num_operations": self.num_operations,
            "num_gates": self.num_operations - self.num_swaps - self.num_moves,
            "num_swaps": self.num_swaps,
            "num_moves": self.num_moves,
        }

    def metrics_for(self, circuit_name: str) -> Optional[EvaluationMetrics]:
        """Metrics re-labelled for a request's circuit name.

        The store key excludes the circuit name (structure only), so a hit
        may serve a request whose circuit was labelled differently — e.g.
        the same QASM document under a new request id.  Every other metric
        field is identical by the bit-identity contract.
        """
        if self.metrics is None:
            return None
        if self.metrics.circuit_name == circuit_name:
            return self.metrics
        return replace(self.metrics, circuit_name=circuit_name)

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_json(self, key: Optional[StoreKey] = None) -> str:
        payload: Dict[str, object] = {
            "schema": ARTIFACT_SCHEMA,
            "circuit_name": self.circuit_name,
            "mode": self.mode,
            "num_qubits": self.num_qubits,
            "op_stream_sha256": self.op_stream_sha256,
            "num_operations": self.num_operations,
            "num_swaps": self.num_swaps,
            "num_moves": self.num_moves,
            "runtime_seconds": self.runtime_seconds,
            "stage_seconds": self.stage_seconds,
            "pass_seconds": self.pass_seconds,
            "metrics": None if self.metrics is None else asdict(self.metrics),
            "op_stream": list(self.op_stream),
        }
        if key is not None:
            payload["key"] = key.as_dict()
        return json.dumps(payload, indent=None, separators=(",", ":")) + "\n"

    @classmethod
    def from_json(cls, text: str,
                  expected_key: Optional[StoreKey] = None) -> "CompiledArtifact":
        """Parse and verify a persisted artifact.

        Raises :class:`ArtifactError` when the payload is not valid JSON,
        not this schema, fails the op-stream SHA-256 integrity check, or —
        with ``expected_key`` given — was stored under a different key
        (a hash-collision/misplaced-file guard).
        """
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or payload.get("schema") != ARTIFACT_SCHEMA:
            raise ArtifactError(
                f"unexpected artifact schema {payload.get('schema')!r}"
                if isinstance(payload, dict) else "artifact is not a JSON object")
        try:
            lines = tuple(str(line) for line in payload["op_stream"])
            stored_sha = str(payload["op_stream_sha256"])
            metrics_data = payload["metrics"]
            artifact = cls(
                circuit_name=str(payload["circuit_name"]),
                mode=str(payload["mode"]),
                num_qubits=int(payload["num_qubits"]),
                op_stream=lines,
                op_stream_sha256=stored_sha,
                num_operations=int(payload["num_operations"]),
                num_swaps=int(payload["num_swaps"]),
                num_moves=int(payload["num_moves"]),
                runtime_seconds=float(payload["runtime_seconds"]),
                stage_seconds={str(k): float(v)
                               for k, v in payload["stage_seconds"].items()},
                pass_seconds={str(k): float(v)
                              for k, v in payload["pass_seconds"].items()},
                metrics=None if metrics_data is None
                else EvaluationMetrics(**metrics_data),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from None
        actual_sha = _op_stream_sha256(lines)
        if actual_sha != stored_sha:
            raise ArtifactError(
                f"op-stream integrity failure: stored sha256 {stored_sha[:12]}… "
                f"but payload hashes to {actual_sha[:12]}…")
        if expected_key is not None and "key" in payload:
            stored_key = StoreKey.from_dict(payload["key"])
            if stored_key != expected_key:
                raise ArtifactError(
                    "artifact was stored under a different key "
                    f"({stored_key.digest()[:12]}… != {expected_key.digest()[:12]}…)")
        return artifact
