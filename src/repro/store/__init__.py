"""repro.store — persistent, content-addressed compiled-result store.

Compilation in this repo is deterministic and bit-identical by contract
(differential + golden harnesses of PR 3/4), which makes compile-once /
serve-many *verifiable*: a compiled artifact is fully determined by the
``(circuit digest, architecture key, config fingerprint, repro version)``
quadruple, so results can be persisted and replayed safely.

* :class:`StoreKey` / :func:`compute_store_key` — the identity quadruple,
* :class:`CompiledArtifact` — the serialisable compile products
  (op stream + digest, counts, metrics, per-pass timings),
* :class:`ResultStore` — the directory-backed store: atomic writes,
  integrity verification on load, LRU size-bounded eviction,
  hit/miss/corruption counters.

Consumed by :class:`repro.service.BatchCompiler` (``store=`` parameter) and
the :mod:`repro.server` gateway.
"""

from .artifact import ARTIFACT_SCHEMA, ArtifactError, CompiledArtifact
from .keys import StoreKey, compute_store_key
from .resultstore import ResultStore, StoreStats

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactError",
    "CompiledArtifact",
    "StoreKey",
    "compute_store_key",
    "ResultStore",
    "StoreStats",
]
