"""Directory-backed, content-addressed store of compiled artifacts.

One JSON file per :class:`~repro.store.StoreKey` digest, written atomically
(temp file + ``os.replace``), verified on every load (op-stream SHA-256 and
key match — see :mod:`repro.store.artifact`), and size-bounded with
LRU eviction (file mtimes double as recency stamps: a hit touches its
file).  Corrupted payloads are never served: they are quarantined under a
``.corrupt`` suffix, counted, and reported as misses so the caller simply
recompiles and overwrites.

The store is safe for concurrent readers and writers across threads *and*
processes: the atomic rename means a reader observes either the previous
complete payload or the new complete payload, never a torn write (enforced
by ``tests/store/test_store.py``).  Counters are per-handle (per process);
worker processes construct cheap handles from :meth:`ResultStore.spec`.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from threading import Lock
from typing import Dict, List, Optional, Tuple

from ..telemetry import tracing
from ..telemetry.registry import CounterSet
from .artifact import ArtifactError, CompiledArtifact
from .keys import StoreKey

__all__ = ["ResultStore", "StoreStats"]


class StoreStats(CounterSet):
    """Per-handle operation counters (hits / misses / corruption / churn).

    Registry-backed (``repro_store_*_total``, one ``instance`` label per
    handle); attribute reads and ``+=`` keep working for callers and tests.
    """

    PREFIX = "repro_store"
    FIELDS = ("hits", "misses", "corruptions", "puts", "evictions",
              "fsyncs", "orphans_swept")
    HELP = {
        "hits": "Store lookups served from a verified on-disk artifact",
        "misses": "Store lookups that found no usable artifact",
        "corruptions": "Artifacts that failed verification and were "
                       "quarantined",
        "puts": "Artifacts persisted",
        "evictions": "Artifacts evicted by the LRU size budget",
        "fsyncs": "fsyncs issued before atomic renames (durability)",
        "orphans_swept": "Stale *.tmp crash leftovers swept at startup",
    }


class ResultStore:
    """Persistent compiled-result store rooted at a directory.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on first use).
    max_bytes:
        Optional size budget.  After every write the store evicts
        least-recently-used entries until the total payload size fits;
        ``None`` disables eviction.
    """

    def __init__(self, root, max_bytes: Optional[int] = None, *,
                 fault_plan=None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.root = Path(root)
        self.max_bytes = max_bytes
        #: Test seam: a :class:`repro.resilience.FaultPlan` may corrupt a
        #: freshly-written entry (chaos suite); never set in production.
        self.fault_plan = fault_plan
        self.stats = StoreStats()
        self._lock = Lock()
        # Strictly increasing recency clock: consecutive touches within one
        # process always order correctly even on coarse-mtime filesystems.
        self._clock = time.time()
        self._sweep_orphans()

    # ------------------------------------------------------------------
    # Worker-handle plumbing
    # ------------------------------------------------------------------
    @property
    def spec(self):
        """Picklable handle spec for worker processes.

        ``(root, max_bytes)`` normally; an attached fault plan rides along
        as a third element so chaos-test workers rebuild handles with the
        same injection seam (the plan itself is picklable).
        """
        if self.fault_plan is not None:
            return (str(self.root), self.max_bytes, self.fault_plan)
        return (str(self.root), self.max_bytes)

    @classmethod
    def from_spec(cls, spec) -> "ResultStore":
        root, max_bytes, *rest = spec
        return cls(root, max_bytes=max_bytes,
                   fault_plan=rest[0] if rest else None)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: StoreKey) -> Path:
        return self.root / f"{key.digest()}.json"

    def _next_stamp(self) -> float:
        with self._lock:
            self._clock = max(time.time(), self._clock + 1e-4)
            return self._clock

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: StoreKey, *,
            require_metrics: bool = False) -> Optional[CompiledArtifact]:
        """The stored artifact for ``key``, or ``None`` on miss.

        A payload that fails integrity verification is quarantined (renamed
        to ``*.corrupt``), counted under ``stats.corruptions``, and reported
        as a miss.  With ``require_metrics`` a metrics-less artifact (stored
        by an ``evaluate=False`` compile) is also treated as a miss, so a
        metrics-expecting caller recompiles and upgrades the entry in place.
        """
        with tracing.span("store.get", digest=key.digest()) as trace_span:
            path = self.path_for(key)
            try:
                text = path.read_text()
            except (FileNotFoundError, OSError):
                self._bump("misses")
                trace_span.set(outcome="miss")
                return None
            try:
                artifact = CompiledArtifact.from_json(text, expected_key=key)
            except ArtifactError:
                self._quarantine(path)
                self._bump("corruptions")
                self._bump("misses")
                trace_span.set(outcome="corrupt")
                return None
            if require_metrics and artifact.metrics is None:
                self._bump("misses")
                trace_span.set(outcome="metrics-miss")
                return None
            self._touch(path)
            self._bump("hits")
            trace_span.set(outcome="hit")
            return artifact

    def __contains__(self, key: StoreKey) -> bool:
        return self.path_for(key).exists()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: StoreKey, artifact: CompiledArtifact) -> Path:
        """Atomically persist ``artifact`` under ``key``; returns its path.

        Concurrent writers of the same key are safe: each writes a private
        temp file and the last ``os.replace`` wins wholesale — readers never
        observe a torn payload.  The temp file is fsynced before the rename
        (and the directory after it, best effort) so a host crash can leave
        an *old* complete entry or a ``*.tmp`` orphan, but never a renamed
        file with unflushed content.
        """
        with tracing.span("store.put", digest=key.digest()):
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(key)
            temp = path.with_name(
                f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
            with open(temp, "w") as handle:
                handle.write(artifact.to_json(key))
                handle.flush()
                os.fsync(handle.fileno())
            self._bump("fsyncs")
            os.replace(temp, path)
            self._fsync_dir()
            if self.fault_plan is not None:
                self.fault_plan.fire_store_fault(path, key.digest())
            self._touch(path)
            self._bump("puts")
            self._evict_if_needed(protect=path.name)
            return path

    def _fsync_dir(self) -> None:
        """Flush the rename itself (directory entry) to disk, best effort."""
        try:
            dir_fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, Path]]:
        """Live entries as ``(mtime, size, path)``; vanished files skipped."""
        entries = []
        try:
            candidates = list(self.root.glob("*.json"))
        except OSError:
            return []
        for path in candidates:
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _evict_if_needed(self, protect: Optional[str] = None) -> None:
        if self.max_bytes is None:
            return
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            if total <= self.max_bytes:
                return
            # Oldest mtime first = least recently used (hits touch files).
            for _, size, path in sorted(entries, key=lambda entry: entry[0]):
                if path.name == protect:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                self.stats.evictions += 1
                total -= size
                if total <= self.max_bytes:
                    break

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _touch(self, path: Path) -> None:
        stamp = self._next_stamp()
        try:
            os.utime(path, (stamp, stamp))
        except OSError:
            pass

    #: A live writer holds its temp file for well under a minute; anything
    #: older is a crash leftover (the write never reached its rename).
    _ORPHAN_AGE_S = 60.0

    def _sweep_orphans(self) -> None:
        """Delete stale ``*.tmp`` files left behind by crashed writers.

        Only files older than :attr:`_ORPHAN_AGE_S` are swept so a handle
        constructed while another process is mid-write never yanks a live
        temp file out from under its rename.
        """
        try:
            candidates = list(self.root.glob(".*.tmp-*"))
        except OSError:
            return
        cutoff = time.time() - self._ORPHAN_AGE_S
        for path in candidates:
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:
                continue
            self._bump("orphans_swept")

    def _quarantine(self, path: Path) -> None:
        """Move a corrupted payload aside so it is never read again.

        The quarantined copy is kept (``*.corrupt``) for post-mortems rather
        than deleted; it no longer matches any key lookup or the eviction
        scan, so it cannot be served.
        """
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _bump(self, counter: str) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def num_entries(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def quarantined(self) -> List[Path]:
        try:
            return sorted(self.root.glob("*.corrupt"))
        except OSError:
            return []

    def stats_dict(self) -> Dict[str, object]:
        """Counters plus the current on-disk footprint (for the serving CLI)."""
        payload: Dict[str, object] = dict(self.stats.as_dict())
        payload.update({
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "num_entries": self.num_entries(),
            "total_bytes": self.total_bytes(),
            "num_quarantined": len(self.quarantined()),
        })
        return payload
