"""Neutral-atom hardware model: trap topologies, device parameters, connectivity."""

from .architecture import Fidelities, GateDurations, NeutralAtomArchitecture
from .connectivity import SiteConnectivity
from .lattice import SquareLattice
from .topology import (
    TOPOLOGY_REGISTRY,
    GridTopology,
    RectangularLattice,
    Topology,
    Zone,
    ZonedTopology,
    banded_zone_layout,
    build_topology,
    register_topology,
)
from .presets import (
    ALL_PRESET_NAMES,
    PRESET_NAMES,
    gate_optimised,
    mixed,
    preset,
    shuttling_optimised,
    zoned,
)

__all__ = [
    "Topology",
    "GridTopology",
    "SquareLattice",
    "RectangularLattice",
    "Zone",
    "ZonedTopology",
    "TOPOLOGY_REGISTRY",
    "register_topology",
    "build_topology",
    "banded_zone_layout",
    "NeutralAtomArchitecture",
    "GateDurations",
    "Fidelities",
    "SiteConnectivity",
    "preset",
    "shuttling_optimised",
    "gate_optimised",
    "mixed",
    "zoned",
    "PRESET_NAMES",
    "ALL_PRESET_NAMES",
]
