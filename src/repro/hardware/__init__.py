"""Neutral-atom hardware model: lattice geometry, device parameters, connectivity."""

from .architecture import Fidelities, GateDurations, NeutralAtomArchitecture
from .connectivity import SiteConnectivity
from .lattice import SquareLattice
from .presets import (
    PRESET_NAMES,
    gate_optimised,
    mixed,
    preset,
    shuttling_optimised,
)

__all__ = [
    "SquareLattice",
    "NeutralAtomArchitecture",
    "GateDurations",
    "Fidelities",
    "SiteConnectivity",
    "preset",
    "shuttling_optimised",
    "gate_optimised",
    "mixed",
    "PRESET_NAMES",
]
