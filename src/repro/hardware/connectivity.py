"""Connectivity graph over trap sites.

For a fixed atom mapping, the paper defines the connectivity graph
``G = (P, E)`` over the *physical qubits*; two atoms are connected when their
Euclidean distance is at most the interaction radius.  Because atoms move
(shuttling) and swap logical assignments (SWAP gates), the reproduction keeps
the *site-level* adjacency — which never changes — in this module and derives
the atom-level graph from the current occupancy in
:mod:`repro.mapping.state`.

:class:`SiteConnectivity` precomputes, for every trap site, the neighbouring
sites within the interaction radius and within the restriction radius, plus an
all-pairs hop-distance table on the site graph.  The hop distance between the
sites of two atoms minus one is the textbook lower bound on the number of
SWAPs required to make them adjacent, which both cost functions use.

Cost-engine caches
------------------
Because the trap lattice is immutable, every cache in this module is
write-once and never invalidated:

* ``are_adjacent`` is O(1) via a dense boolean adjacency matrix (one
  ``bytearray`` row per site) instead of scanning the neighbour tuple;
* ``interaction_set`` exposes each neighbourhood as a ``frozenset`` for O(1)
  membership tests and fast set intersections (used by the shuttling router's
  target-zone computation);
* the all-pairs hop-distance table is a preallocated list of per-source rows,
  each filled by a single BFS on first use (``hop_row``) and then shared by
  the gate-based router, the shuttling router, and the multi-qubit position
  finder.  Hot loops fetch a whole row once and index it directly rather than
  calling :meth:`hop_distance` per pair.

Only the *site-level* structure is cached here; anything that depends on the
mutable atom occupancy (BFS over occupied sites, shortest paths with an
``allowed`` set) is recomputed per query against the caller-supplied
occupancy view maintained incrementally by
:class:`~repro.mapping.state.MappingState`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environments
    _np = None

from .architecture import NeutralAtomArchitecture

__all__ = ["SiteConnectivity"]


class SiteConnectivity:
    """Precomputed geometric adjacency of the trap topology.

    Parameters
    ----------
    architecture:
        The device description supplying the topology and both radii.
    """

    def __init__(self, architecture: NeutralAtomArchitecture) -> None:
        self.architecture = architecture
        topology = architecture.topology
        self.num_sites = topology.num_sites

        # Neighbour tables come from the topology.  Unzoned topologies
        # resolve these to the plain geometric radius neighbourhoods built
        # by the (numpy-accelerated) row-vector kernel — one broadcast over
        # the in-radius offsets instead of a python scan per site, with
        # membership and ordering identical to per-site ``sites_within``
        # calls.  Zoned topologies additionally restrict pairs by zone
        # capability (storage traps have no interaction partners), so the
        # whole routing stack inherits the zone semantics through this one
        # construction point.
        self._interaction_neighbours: List[Tuple[int, ...]] = list(
            topology.interaction_neighbour_table(architecture.interaction_radius_um))
        self._restriction_neighbours: List[Tuple[int, ...]] = list(
            topology.restriction_neighbour_table(architecture.restriction_radius_um))

        # O(1) adjacency: a dense boolean matrix (bytearray rows) plus the
        # neighbourhoods as frozensets for set algebra.
        self._interaction_sets: List[FrozenSet[int]] = [
            frozenset(neighbours) for neighbours in self._interaction_neighbours]
        if _np is not None:
            # One scatter per site into a reused row buffer: no transient
            # num_sites x num_sites matrix alongside the bytearray rows.
            self._adjacent_rows: List[bytearray] = []
            row_buffer = _np.zeros(self.num_sites, dtype=_np.uint8)
            for neighbours in self._interaction_neighbours:
                row_buffer[:] = 0
                if neighbours:
                    row_buffer[list(neighbours)] = 1
                self._adjacent_rows.append(bytearray(row_buffer))
        else:
            self._adjacent_rows = []
            for site in range(self.num_sites):
                row = bytearray(self.num_sites)
                for neighbour in self._interaction_neighbours[site]:
                    row[neighbour] = 1
                self._adjacent_rows.append(row)

        # Preallocated all-pairs hop-distance table; each row is filled by a
        # single BFS on first use (see hop_row) and reused forever after.
        self._hop_rows: List[Optional[List[int]]] = [None] * self.num_sites

        # Lazy per-site interaction neighbourhoods as sorted int64 arrays,
        # for the vectorised chain kernel (numpy only).
        self._interaction_arrays: List = [None] * self.num_sites

    # ------------------------------------------------------------------
    # Adjacency queries
    # ------------------------------------------------------------------
    def interaction_neighbours(self, site: int) -> Tuple[int, ...]:
        """Sites whose atoms could take part in a gate with an atom at ``site``."""
        return self._interaction_neighbours[site]

    def restriction_neighbours(self, site: int) -> Tuple[int, ...]:
        """Sites whose atoms are blocked by a gate executing at ``site``."""
        return self._restriction_neighbours[site]

    def interaction_set(self, site: int) -> FrozenSet[int]:
        """The interaction neighbourhood of ``site`` as a frozenset."""
        return self._interaction_sets[site]

    def interaction_array(self, site: int):
        """The interaction neighbourhood of ``site`` as a sorted int64 array.

        Lazily built from the neighbour tuple (which the topology emits in
        ascending site order — the scan order of ``sites_within``) and cached
        forever; returned by reference, callers must not mutate it.  Used by
        the vectorised chain kernel for batched occupancy gathers.  Requires
        numpy.
        """
        array = self._interaction_arrays[site]
        if array is None:
            array = _np.asarray(self._interaction_neighbours[site],
                                dtype=_np.int64)
            self._interaction_arrays[site] = array
        return array

    def adjacency_row(self, site: int) -> bytearray:
        """Dense boolean adjacency row of ``site`` (index by partner site).

        Returned by reference for hot loops; callers must not mutate it.
        """
        return self._adjacent_rows[site]

    def are_adjacent(self, site_a: int, site_b: int) -> bool:
        """True if the two sites are within the interaction radius (O(1))."""
        return self._adjacent_rows[site_a][site_b] != 0

    def coordination_number(self, site: int) -> int:
        """``K_{r_int}`` of the given site."""
        return len(self._interaction_neighbours[site])

    def sites_mutually_interacting(self, sites: Sequence[int]) -> bool:
        """True if *every pair* of the given sites is within the interaction radius.

        This is the executability condition for an ``m``-qubit gate
        (Section 2.1): all participating qubits must lie within ``r_int`` of
        each other.
        """
        site_list = list(sites)
        adjacent_rows = self._adjacent_rows
        for i, site_a in enumerate(site_list):
            row = adjacent_rows[site_a]
            for site_b in site_list[i + 1:]:
                if site_a == site_b or not row[site_b]:
                    return False
        return True

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hop_distance(self, site_a: int, site_b: int) -> int:
        """Hop distance between two sites on the full site graph.

        Computed lazily with one BFS per source and cached.  A value of
        ``num_sites`` (unreachable) is only possible for degenerate radii.
        """
        row = self._hop_rows[site_a]
        if row is None:
            row = self._bfs_row(site_a)
        return row[site_b]

    def hop_row(self, source: int) -> List[int]:
        """Full hop-distance row of ``source`` (index by target site).

        Shared by both routers; returned by reference, so callers must treat
        it as read-only.  Fetching the row once and indexing it directly
        avoids a method call per site pair in the routing hot loops.
        """
        row = self._hop_rows[source]
        if row is None:
            row = self._bfs_row(source)
        return row

    def _bfs_row(self, source: int) -> List[int]:
        distances = [self.num_sites] * self.num_sites
        distances[source] = 0
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if distances[neighbour] > distances[current] + 1:
                    distances[neighbour] = distances[current] + 1
                    queue.append(neighbour)
        self._hop_rows[source] = distances
        return distances

    def bfs_distances_from(self, source: int,
                           allowed: Optional[Set[int]] = None) -> Dict[int, int]:
        """BFS hop distances from ``source``.

        If ``allowed`` is given, the search only traverses sites contained in
        it (the source is always traversable).  This is the primitive used to
        compute SWAP distances over *occupied* sites only.
        """
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if neighbour in distances:
                    continue
                if allowed is not None and neighbour not in allowed:
                    continue
                distances[neighbour] = distances[current] + 1
                queue.append(neighbour)
        return distances

    def shortest_path(self, site_a: int, site_b: int,
                      allowed: Optional[Set[int]] = None) -> Optional[List[int]]:
        """Shortest site path from ``site_a`` to ``site_b`` (inclusive), or ``None``.

        Traversal is restricted to ``allowed`` sites if given (the endpoints
        are always traversable).
        """
        if site_a == site_b:
            return [site_a]
        parents: Dict[int, int] = {site_a: site_a}
        queue = deque([site_a])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if neighbour in parents:
                    continue
                if allowed is not None and neighbour not in allowed and neighbour != site_b:
                    continue
                parents[neighbour] = current
                if neighbour == site_b:
                    path = [site_b]
                    while path[-1] != site_a:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
        return None

    # ------------------------------------------------------------------
    # Graph exports
    # ------------------------------------------------------------------
    def site_graph(self) -> nx.Graph:
        """The full site-level interaction graph as a networkx graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_sites))
        for site in range(self.num_sites):
            for neighbour in self._interaction_neighbours[site]:
                if neighbour > site:
                    graph.add_edge(site, neighbour)
        return graph

    def occupied_subgraph(self, occupied_sites: Iterable[int]) -> nx.Graph:
        """Atom-level connectivity graph ``G`` induced by the occupied sites."""
        occupied = set(occupied_sites)
        graph = nx.Graph()
        graph.add_nodes_from(occupied)
        for site in occupied:
            for neighbour in self._interaction_neighbours[site]:
                if neighbour in occupied and neighbour > site:
                    graph.add_edge(site, neighbour)
        return graph
