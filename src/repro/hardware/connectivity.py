"""Connectivity graph over trap sites.

For a fixed atom mapping, the paper defines the connectivity graph
``G = (P, E)`` over the *physical qubits*; two atoms are connected when their
Euclidean distance is at most the interaction radius.  Because atoms move
(shuttling) and swap logical assignments (SWAP gates), the reproduction keeps
the *site-level* adjacency — which never changes — in this module and derives
the atom-level graph from the current occupancy in
:mod:`repro.mapping.state`.

:class:`SiteConnectivity` precomputes, for every trap site, the neighbouring
sites within the interaction radius and within the restriction radius, plus an
all-pairs hop-distance table on the site graph.  The hop distance between the
sites of two atoms minus one is the textbook lower bound on the number of
SWAPs required to make them adjacent, which both cost functions use.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .architecture import NeutralAtomArchitecture

__all__ = ["SiteConnectivity"]


class SiteConnectivity:
    """Precomputed geometric adjacency of the trap lattice.

    Parameters
    ----------
    architecture:
        The device description supplying the lattice and both radii.
    """

    def __init__(self, architecture: NeutralAtomArchitecture) -> None:
        self.architecture = architecture
        lattice = architecture.lattice
        self.num_sites = lattice.num_sites

        self._interaction_neighbours: List[Tuple[int, ...]] = []
        self._restriction_neighbours: List[Tuple[int, ...]] = []
        for site in range(self.num_sites):
            self._interaction_neighbours.append(
                tuple(lattice.sites_within(site, architecture.interaction_radius_um)))
            self._restriction_neighbours.append(
                tuple(lattice.sites_within(site, architecture.restriction_radius_um)))

        self._hop_distance: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # Adjacency queries
    # ------------------------------------------------------------------
    def interaction_neighbours(self, site: int) -> Tuple[int, ...]:
        """Sites whose atoms could take part in a gate with an atom at ``site``."""
        return self._interaction_neighbours[site]

    def restriction_neighbours(self, site: int) -> Tuple[int, ...]:
        """Sites whose atoms are blocked by a gate executing at ``site``."""
        return self._restriction_neighbours[site]

    def are_adjacent(self, site_a: int, site_b: int) -> bool:
        """True if the two sites are within the interaction radius."""
        return site_b in self._interaction_neighbours[site_a]

    def coordination_number(self, site: int) -> int:
        """``K_{r_int}`` of the given site."""
        return len(self._interaction_neighbours[site])

    def sites_mutually_interacting(self, sites: Sequence[int]) -> bool:
        """True if *every pair* of the given sites is within the interaction radius.

        This is the executability condition for an ``m``-qubit gate
        (Section 2.1): all participating qubits must lie within ``r_int`` of
        each other.
        """
        site_list = list(sites)
        for i, site_a in enumerate(site_list):
            for site_b in site_list[i + 1:]:
                if site_a == site_b:
                    return False
                if not self.are_adjacent(site_a, site_b):
                    return False
        return True

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def hop_distance(self, site_a: int, site_b: int) -> int:
        """Hop distance between two sites on the full site graph.

        Computed lazily with one BFS per source and cached.  A value of
        ``num_sites`` (unreachable) is only possible for degenerate radii.
        """
        if self._hop_distance is None:
            self._hop_distance = [[-1] * self.num_sites for _ in range(self.num_sites)]
        row = self._hop_distance[site_a]
        if row[site_b] < 0:
            self._bfs_fill(site_a)
        return self._hop_distance[site_a][site_b]

    def _bfs_fill(self, source: int) -> None:
        assert self._hop_distance is not None
        distances = [self.num_sites] * self.num_sites
        distances[source] = 0
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if distances[neighbour] > distances[current] + 1:
                    distances[neighbour] = distances[current] + 1
                    queue.append(neighbour)
        self._hop_distance[source] = distances

    def bfs_distances_from(self, source: int,
                           allowed: Optional[Set[int]] = None) -> Dict[int, int]:
        """BFS hop distances from ``source``.

        If ``allowed`` is given, the search only traverses sites contained in
        it (the source is always traversable).  This is the primitive used to
        compute SWAP distances over *occupied* sites only.
        """
        distances = {source: 0}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if neighbour in distances:
                    continue
                if allowed is not None and neighbour not in allowed:
                    continue
                distances[neighbour] = distances[current] + 1
                queue.append(neighbour)
        return distances

    def shortest_path(self, site_a: int, site_b: int,
                      allowed: Optional[Set[int]] = None) -> Optional[List[int]]:
        """Shortest site path from ``site_a`` to ``site_b`` (inclusive), or ``None``.

        Traversal is restricted to ``allowed`` sites if given (the endpoints
        are always traversable).
        """
        if site_a == site_b:
            return [site_a]
        parents: Dict[int, int] = {site_a: site_a}
        queue = deque([site_a])
        while queue:
            current = queue.popleft()
            for neighbour in self._interaction_neighbours[current]:
                if neighbour in parents:
                    continue
                if allowed is not None and neighbour not in allowed and neighbour != site_b:
                    continue
                parents[neighbour] = current
                if neighbour == site_b:
                    path = [site_b]
                    while path[-1] != site_a:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
        return None

    # ------------------------------------------------------------------
    # Graph exports
    # ------------------------------------------------------------------
    def site_graph(self) -> nx.Graph:
        """The full site-level interaction graph as a networkx graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_sites))
        for site in range(self.num_sites):
            for neighbour in self._interaction_neighbours[site]:
                if neighbour > site:
                    graph.add_edge(site, neighbour)
        return graph

    def occupied_subgraph(self, occupied_sites: Iterable[int]) -> nx.Graph:
        """Atom-level connectivity graph ``G`` induced by the occupied sites."""
        occupied = set(occupied_sites)
        graph = nx.Graph()
        graph.add_nodes_from(occupied)
        for site in occupied:
            for neighbour in self._interaction_neighbours[site]:
                if neighbour in occupied and neighbour > site:
                    graph.add_edge(site, neighbour)
        return graph
