"""Square-lattice trap geometry.

The paper assumes the static SLM traps form a regular ``l x l`` square lattice
with lattice constant ``d`` (Section 2.1).  :class:`SquareLattice` enumerates
the trap coordinates ``C = {C_alpha}``, converts between coordinate indices and
physical positions, and answers the geometric queries the mapper needs:
Euclidean distance, neighbourhood within a radius, and Manhattan-style
rectangular shuttling distance (AOD moves travel along x then y, so the time
cost of a move is proportional to the rectangular distance, cf. ``s(M)`` in
the shuttling cost function).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["SquareLattice"]

Position = Tuple[float, float]


class SquareLattice:
    """Regular ``rows x cols`` grid of optical traps with spacing ``d``.

    Coordinate indices run row-major: index ``alpha`` sits at row
    ``alpha // cols`` and column ``alpha % cols``, i.e. at physical position
    ``(col * d, row * d)`` in micrometres.
    """

    def __init__(self, rows: int, cols: Optional[int] = None, spacing: float = 3.0) -> None:
        if rows <= 0:
            raise ValueError("lattice needs at least one row")
        cols = cols if cols is not None else rows
        if cols <= 0:
            raise ValueError("lattice needs at least one column")
        if spacing <= 0:
            raise ValueError("lattice spacing must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.spacing = float(spacing)
        self._num_sites = self.rows * self.cols
        # Geometry caches.  Site positions never change, so they are computed
        # once; radius neighbourhoods are memoised per (site, radius) because
        # the routers query the same few radii over and over.
        self._positions: List[Position] = [
            ((site % self.cols) * self.spacing, (site // self.cols) * self.spacing)
            for site in range(self._num_sites)
        ]
        self._sites_within_cache: Dict[Tuple[int, float], List[int]] = {}
        self._euclidean_rows: List[Optional[List[float]]] = [None] * self._num_sites
        self._rectangular_rows: List[Optional[List[float]]] = [None] * self._num_sites

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        """Total number of trap coordinates ``|C|``."""
        return self._num_sites

    def __len__(self) -> int:
        return self.num_sites

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_sites))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareLattice({self.rows}x{self.cols}, d={self.spacing} um)"

    # ------------------------------------------------------------------
    # Index <-> geometry conversions
    # ------------------------------------------------------------------
    def row_col(self, site: int) -> Tuple[int, int]:
        """Return the ``(row, col)`` grid coordinates of a site index."""
        self._check_site(site)
        return divmod(site, self.cols)

    def site_at(self, row: int, col: int) -> int:
        """Return the site index at grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"grid coordinates ({row}, {col}) outside "
                             f"{self.rows}x{self.cols} lattice")
        return row * self.cols + col

    def position(self, site: int) -> Position:
        """Physical ``(x, y)`` position of a site in micrometres."""
        self._check_site(site)
        return self._positions[site]

    def positions(self) -> List[Position]:
        """Positions of all sites in index order."""
        return list(self._positions)

    def site_near(self, x: float, y: float) -> int:
        """Site index closest to the physical position ``(x, y)``."""
        col = min(max(round(x / self.spacing), 0), self.cols - 1)
        row = min(max(round(y / self.spacing), 0), self.rows - 1)
        return self.site_at(int(row), int(col))

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self._num_sites:
            raise ValueError(f"site {site} outside lattice with {self._num_sites} sites")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def euclidean_distance(self, site_a: int, site_b: int) -> float:
        """Euclidean distance between two sites in micrometres."""
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return math.hypot(xa - xb, ya - yb)

    def rectangular_distance(self, site_a: int, site_b: int) -> float:
        """Manhattan (x-then-y) travel distance between two sites in micrometres.

        AOD moves displace the activated row and column independently, so the
        shuttling time of a single move is governed by this rectangular
        distance ``s(M)``.
        """
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return abs(xa - xb) + abs(ya - yb)

    def euclidean_row(self, site: int) -> List[float]:
        """Euclidean distances from ``site`` to every site (lazily cached row).

        Returned by reference for hot loops (the shuttling cost function
        evaluates millions of point distances); callers must not mutate it.
        The values are bit-identical to :meth:`euclidean_distance`.
        """
        self._check_site(site)
        row = self._euclidean_rows[site]
        if row is None:
            x, y = self._positions[site]
            row = [math.hypot(x - px, y - py) for px, py in self._positions]
            self._euclidean_rows[site] = row
        return row

    def rectangular_row(self, site: int) -> List[float]:
        """Rectangular (Manhattan) distances from ``site`` to every site (cached)."""
        self._check_site(site)
        row = self._rectangular_rows[site]
        if row is None:
            x, y = self._positions[site]
            row = [abs(x - px) + abs(y - py) for px, py in self._positions]
            self._rectangular_rows[site] = row
        return row

    def grid_distance(self, site_a: int, site_b: int) -> int:
        """Chebyshev distance in lattice units (number of king moves)."""
        ra, ca = self.row_col(site_a)
        rb, cb = self.row_col(site_b)
        return max(abs(ra - rb), abs(ca - cb))

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def sites_within(self, site: int, radius: float) -> List[int]:
        """All sites (excluding ``site`` itself) within Euclidean ``radius``.

        ``radius`` is in micrometres.  The scan is restricted to the bounding
        box of the radius, so the cost is ``O((radius/d)^2)`` rather than the
        full lattice; results are memoised per ``(site, radius)`` because the
        routers probe the same few radii millions of times.
        """
        self._check_site(site)
        if radius <= 0:
            return []
        cached = self._sites_within_cache.get((site, radius))
        if cached is not None:
            return list(cached)
        row, col = self.row_col(site)
        reach = int(math.floor(radius / self.spacing + 1e-9))
        found: List[int] = []
        for dr in range(-reach, reach + 1):
            for dc in range(-reach, reach + 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if not (0 <= r < self.rows and 0 <= c < self.cols):
                    continue
                distance = math.hypot(dr, dc) * self.spacing
                if distance <= radius + 1e-9:
                    found.append(self.site_at(r, c))
        self._sites_within_cache[(site, radius)] = found
        return list(found)

    def neighbourhood_size(self, radius: float) -> int:
        """Coordination number ``K_r`` of a bulk site for the given radius."""
        if radius <= 0:
            return 0
        reach = int(math.floor(radius / self.spacing + 1e-9))
        count = 0
        for dr in range(-reach, reach + 1):
            for dc in range(-reach, reach + 1):
                if dr == 0 and dc == 0:
                    continue
                if math.hypot(dr, dc) * self.spacing <= radius + 1e-9:
                    count += 1
        return count

    def all_pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield every unordered site pair within Euclidean ``radius``."""
        for site in range(self.num_sites):
            for other in self.sites_within(site, radius):
                if other > site:
                    yield (site, other)

    def boundary_sites(self) -> List[int]:
        """Sites on the outer rim of the lattice."""
        rim = []
        for site in range(self.num_sites):
            row, col = self.row_col(site)
            if row in (0, self.rows - 1) or col in (0, self.cols - 1):
                rim.append(site)
        return rim

    def interior_sites(self) -> List[int]:
        """Sites not on the outer rim."""
        boundary = set(self.boundary_sites())
        return [site for site in range(self.num_sites) if site not in boundary]
