"""Square-lattice trap geometry.

The paper assumes the static SLM traps form a regular ``l x l`` square lattice
with lattice constant ``d`` (Section 2.1).  :class:`SquareLattice` enumerates
the trap coordinates ``C = {C_alpha}``, converts between coordinate indices and
physical positions, and answers the geometric queries the mapper needs:
Euclidean distance, neighbourhood within a radius, and Manhattan-style
rectangular shuttling distance (AOD moves travel along x then y, so the time
cost of a move is proportional to the rectangular distance, cf. ``s(M)`` in
the shuttling cost function).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environments
    _np = None

__all__ = ["SquareLattice"]

Position = Tuple[float, float]


class SquareLattice:
    """Regular ``rows x cols`` grid of optical traps with spacing ``d``.

    Coordinate indices run row-major: index ``alpha`` sits at row
    ``alpha // cols`` and column ``alpha % cols``, i.e. at physical position
    ``(col * d, row * d)`` in micrometres.
    """

    def __init__(self, rows: int, cols: Optional[int] = None, spacing: float = 3.0) -> None:
        if rows <= 0:
            raise ValueError("lattice needs at least one row")
        cols = cols if cols is not None else rows
        if cols <= 0:
            raise ValueError("lattice needs at least one column")
        if spacing <= 0:
            raise ValueError("lattice spacing must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.spacing = float(spacing)
        self._num_sites = self.rows * self.cols
        # Geometry caches.  Site positions never change, so they are computed
        # once; radius neighbourhoods are memoised per (site, radius) because
        # the routers query the same few radii over and over.
        self._positions: List[Position] = [
            ((site % self.cols) * self.spacing, (site // self.cols) * self.spacing)
            for site in range(self._num_sites)
        ]
        self._sites_within_cache: Dict[Tuple[int, float], List[int]] = {}
        self._sites_within_set_cache: Dict[Tuple[int, float], frozenset] = {}
        self._radius_offsets_cache: Dict[float, List[Tuple[int, int]]] = {}
        self._neighbour_table_cache: Dict[float, List[Tuple[int, ...]]] = {}
        self._euclidean_rows: List[Optional[List[float]]] = [None] * self._num_sites
        self._rectangular_rows: List[Optional[List[float]]] = [None] * self._num_sites
        # numpy row-vector kernel: per-axis coordinate arrays, used to fill
        # rectangular-distance rows in one vectorised expression (exact for
        # any spacing — see rectangular_row).  Gated on numpy being
        # importable; the pure-python loops remain the fallback and the
        # reference (tests assert the rows are bit-identical).  Euclidean
        # rows intentionally stay scalar: vectorised sqrt differs from
        # math.hypot in the last bit on non-representable coordinates.
        if _np is not None:
            self._xs = _np.fromiter((p[0] for p in self._positions), dtype=_np.float64,
                                    count=self._num_sites)
            self._ys = _np.fromiter((p[1] for p in self._positions), dtype=_np.float64,
                                    count=self._num_sites)
        else:
            self._xs = self._ys = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        """Total number of trap coordinates ``|C|``."""
        return self._num_sites

    def __len__(self) -> int:
        return self.num_sites

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_sites))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareLattice({self.rows}x{self.cols}, d={self.spacing} um)"

    # ------------------------------------------------------------------
    # Index <-> geometry conversions
    # ------------------------------------------------------------------
    def row_col(self, site: int) -> Tuple[int, int]:
        """Return the ``(row, col)`` grid coordinates of a site index."""
        self._check_site(site)
        return divmod(site, self.cols)

    def site_at(self, row: int, col: int) -> int:
        """Return the site index at grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"grid coordinates ({row}, {col}) outside "
                             f"{self.rows}x{self.cols} lattice")
        return row * self.cols + col

    def position(self, site: int) -> Position:
        """Physical ``(x, y)`` position of a site in micrometres."""
        self._check_site(site)
        return self._positions[site]

    def positions(self) -> List[Position]:
        """Positions of all sites in index order."""
        return list(self._positions)

    def site_near(self, x: float, y: float) -> int:
        """Site index closest to the physical position ``(x, y)``."""
        col = min(max(round(x / self.spacing), 0), self.cols - 1)
        row = min(max(round(y / self.spacing), 0), self.rows - 1)
        return self.site_at(int(row), int(col))

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self._num_sites:
            raise ValueError(f"site {site} outside lattice with {self._num_sites} sites")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def euclidean_distance(self, site_a: int, site_b: int) -> float:
        """Euclidean distance between two sites in micrometres."""
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return math.hypot(xa - xb, ya - yb)

    def rectangular_distance(self, site_a: int, site_b: int) -> float:
        """Manhattan (x-then-y) travel distance between two sites in micrometres.

        AOD moves displace the activated row and column independently, so the
        shuttling time of a single move is governed by this rectangular
        distance ``s(M)``.
        """
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return abs(xa - xb) + abs(ya - yb)

    def euclidean_row(self, site: int) -> List[float]:
        """Euclidean distances from ``site`` to every site (lazily cached row).

        Returned by reference for hot loops (the shuttling cost function
        evaluates millions of point distances); callers must not mutate it.
        The values are bit-identical to :meth:`euclidean_distance`.  The
        fill deliberately stays on ``math.hypot``: a vectorised
        ``sqrt(dx*dx + dy*dy)`` differs from ``hypot`` in the last bit for
        coordinates that are not exactly representable (e.g. spacing 0.3),
        which would make routing decisions depend on whether numpy is
        installed.  Row construction is one-time per site, so the scalar
        loop costs nothing in the steady state.
        """
        self._check_site(site)
        row = self._euclidean_rows[site]
        if row is None:
            x, y = self._positions[site]
            row = [math.hypot(x - px, y - py) for px, py in self._positions]
            self._euclidean_rows[site] = row
        return row

    def rectangular_row(self, site: int) -> List[float]:
        """Rectangular (Manhattan) distances from ``site`` to every site (cached).

        The numpy kernel is exact here for any spacing: subtraction, ``abs``
        and addition are single correctly-rounded IEEE operations, so the
        vectorised row is bit-identical to the scalar formula (asserted by
        the hardware kernel tests).
        """
        self._check_site(site)
        row = self._rectangular_rows[site]
        if row is None:
            x, y = self._positions[site]
            if self._xs is not None:
                row = (_np.abs(x - self._xs) + _np.abs(y - self._ys)).tolist()
            else:
                row = [abs(x - px) + abs(y - py) for px, py in self._positions]
            self._rectangular_rows[site] = row
        return row

    def grid_distance(self, site_a: int, site_b: int) -> int:
        """Chebyshev distance in lattice units (number of king moves)."""
        ra, ca = self.row_col(site_a)
        rb, cb = self.row_col(site_b)
        return max(abs(ra - rb), abs(ca - cb))

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def _radius_offsets(self, radius: float) -> List[Tuple[int, int]]:
        """In-radius ``(dr, dc)`` grid offsets in scan order (memoised).

        The distance predicate is evaluated once per offset instead of once
        per (site, offset); the values and ordering are exactly those of the
        historical per-site bounding-box scan.
        """
        cached = self._radius_offsets_cache.get(radius)
        if cached is None:
            reach = int(math.floor(radius / self.spacing + 1e-9))
            cached = [
                (dr, dc)
                for dr in range(-reach, reach + 1)
                for dc in range(-reach, reach + 1)
                if (dr, dc) != (0, 0)
                and math.hypot(dr, dc) * self.spacing <= radius + 1e-9
            ]
            self._radius_offsets_cache[radius] = cached
        return cached

    def sites_within(self, site: int, radius: float) -> List[int]:
        """All sites (excluding ``site`` itself) within Euclidean ``radius``.

        ``radius`` is in micrometres.  The scan is restricted to the shared
        in-radius offset table, so the cost is ``O((radius/d)^2)`` rather
        than the full lattice; results are memoised per ``(site, radius)``
        because the routers probe the same few radii millions of times.
        """
        self._check_site(site)
        if radius <= 0:
            return []
        cached = self._sites_within_cache.get((site, radius))
        if cached is not None:
            return list(cached)
        row, col = self.row_col(site)
        rows, cols = self.rows, self.cols
        found: List[int] = []
        for dr, dc in self._radius_offsets(radius):
            r, c = row + dr, col + dc
            if 0 <= r < rows and 0 <= c < cols:
                found.append(r * cols + c)
        self._sites_within_cache[(site, radius)] = found
        return list(found)

    def neighbour_table(self, radius: float) -> List[Tuple[int, ...]]:
        """:meth:`sites_within` for *every* site at once (memoised).

        With numpy available the whole table is computed as one broadcast
        over the in-radius offsets (the row-vector kernel the connectivity
        construction uses); the fallback assembles the same rows per site.
        Ordering and membership are identical to :meth:`sites_within`.
        """
        cached = self._neighbour_table_cache.get(radius)
        if cached is not None:
            return cached
        if radius <= 0:
            table: List[Tuple[int, ...]] = [() for _ in range(self._num_sites)]
        elif _np is not None:
            offsets = self._radius_offsets(radius)
            if offsets:
                drs = _np.fromiter((o[0] for o in offsets), dtype=_np.int64,
                                   count=len(offsets))
                dcs = _np.fromiter((o[1] for o in offsets), dtype=_np.int64,
                                   count=len(offsets))
                sites = _np.arange(self._num_sites, dtype=_np.int64)
                r = sites[:, None] // self.cols + drs[None, :]
                c = sites[:, None] % self.cols + dcs[None, :]
                valid = ((r >= 0) & (r < self.rows) & (c >= 0) & (c < self.cols))
                neighbour = r * self.cols + c
                table = [tuple(neighbour[i, valid[i]].tolist())
                         for i in range(self._num_sites)]
            else:
                table = [() for _ in range(self._num_sites)]
        else:
            table = [tuple(self.sites_within(site, radius))
                     for site in range(self._num_sites)]
        self._neighbour_table_cache[radius] = table
        return table

    def sites_within_set(self, site: int, radius: float) -> frozenset:
        """The :meth:`sites_within` disc as a memoised frozenset.

        Shared by reference for set algebra in hot loops (e.g. the chain
        cache's occupancy-read recording), so no per-call copy is made.
        """
        key = (site, radius)
        cached = self._sites_within_set_cache.get(key)
        if cached is None:
            cached = frozenset(self.sites_within(site, radius))
            self._sites_within_set_cache[key] = cached
        return cached

    def neighbourhood_size(self, radius: float) -> int:
        """Coordination number ``K_r`` of a bulk site for the given radius."""
        if radius <= 0:
            return 0
        return len(self._radius_offsets(radius))

    def all_pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield every unordered site pair within Euclidean ``radius``."""
        for site in range(self.num_sites):
            for other in self.sites_within(site, radius):
                if other > site:
                    yield (site, other)

    def boundary_sites(self) -> List[int]:
        """Sites on the outer rim of the lattice."""
        rim = []
        for site in range(self.num_sites):
            row, col = self.row_col(site)
            if row in (0, self.rows - 1) or col in (0, self.cols - 1):
                rim.append(site)
        return rim

    def interior_sites(self) -> List[int]:
        """Sites not on the outer rim."""
        boundary = set(self.boundary_sites())
        return [site for site in range(self.num_sites) if site not in boundary]
