"""Square-lattice trap geometry.

The paper assumes the static SLM traps form a regular ``l x l`` square lattice
with lattice constant ``d`` (Section 2.1).  :class:`SquareLattice` enumerates
the trap coordinates ``C = {C_alpha}``, converts between coordinate indices and
physical positions, and answers the geometric queries the mapper needs:
Euclidean distance, neighbourhood within a radius, and Manhattan-style
rectangular shuttling distance (AOD moves travel along x then y, so the time
cost of a move is proportional to the rectangular distance, cf. ``s(M)`` in
the shuttling cost function).

The implementation now lives in :class:`repro.hardware.topology.GridTopology`
— the shared grid backend of the pluggable topology layer — of which
:class:`SquareLattice` is the isotropic instantiation (``spacing_x ==
spacing_y``).  Every code path a square lattice runs is byte-for-byte the
historical one, which is what keeps the golden op-stream digests of the
square presets unchanged across the topology refactor.
"""

from __future__ import annotations

from typing import Optional

from .topology import GridTopology, register_topology

__all__ = ["SquareLattice"]


@register_topology
class SquareLattice(GridTopology):
    """Regular ``rows x cols`` grid of optical traps with spacing ``d``.

    Coordinate indices run row-major: index ``alpha`` sits at row
    ``alpha // cols`` and column ``alpha % cols``, i.e. at physical position
    ``(col * d, row * d)`` in micrometres.
    """

    kind = "square"

    def __init__(self, rows: int, cols: Optional[int] = None,
                 spacing: float = 3.0) -> None:
        super().__init__(rows, cols, spacing_x=spacing, spacing_y=spacing)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareLattice({self.rows}x{self.cols}, d={self.spacing} um)"
