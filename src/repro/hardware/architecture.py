"""Neutral-atom architecture description.

:class:`NeutralAtomArchitecture` bundles everything the mapper, scheduler and
fidelity evaluation need to know about the target device (Section 2.1 and
Table 1c of the paper):

* the trap lattice (size ``l x l``, spacing ``d``) and the number of atoms
  ``N`` loaded into it,
* the interaction radius ``r_int`` and restriction radius ``r_restr``
  (both expressed in units of the lattice constant ``d``),
* operation fidelities — entangling gates ``F_CZ``, single-qubit gates
  ``F_1q`` (called ``F_H`` in the table) and shuttling ``F_shuttle``,
* operation durations — single-qubit pulse ``t_1q``, the ``C^{m-1}Z`` family
  ``t_CZ``/``t_CCZ``/``t_CCCZ``, AOD (de)activation ``t_act``/``t_deact`` and
  the shuttling speed ``v``,
* coherence times ``T1`` and ``T2`` from which the effective decay time
  ``T_eff = T1 T2 / (T1 + T2)`` of the success-probability model (Eq. 1)
  follows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .lattice import SquareLattice
from .topology import Topology

__all__ = ["NeutralAtomArchitecture", "GateDurations", "Fidelities"]


@dataclass(frozen=True)
class GateDurations:
    """Operation durations in microseconds (Table 1c, lower block)."""

    single_qubit: float = 0.5        # t_U3
    cz: float = 0.2                  # t_CZ
    ccz: float = 0.4                 # t_CCZ
    cccz: float = 0.6                # t_CCCZ
    aod_activation: float = 20.0     # t_act
    aod_deactivation: float = 20.0   # t_deact

    def entangling(self, num_qubits: int) -> float:
        """Duration of a ``num_qubits``-wide multi-controlled Z gate.

        The table specifies up to four qubits; wider gates extrapolate the
        linear trend of +0.2 us per additional qubit.
        """
        if num_qubits < 2:
            raise ValueError("entangling gates act on at least two qubits")
        if num_qubits == 2:
            return self.cz
        if num_qubits == 3:
            return self.ccz
        if num_qubits == 4:
            return self.cccz
        return self.cccz + 0.2 * (num_qubits - 4)


@dataclass(frozen=True)
class Fidelities:
    """Average operation fidelities (Table 1c, upper block)."""

    cz: float = 0.995                # F_CZ, also used per two-qubit interaction
    single_qubit: float = 0.999      # F_H
    shuttling: float = 0.9999        # F_Shuttling (per move)

    def __post_init__(self) -> None:
        for name in ("cz", "single_qubit", "shuttling"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"fidelity {name} must lie in (0, 1], got {value}")

    def entangling(self, num_qubits: int) -> float:
        """Fidelity of a ``num_qubits``-wide multi-controlled Z gate.

        The blockade gate addresses all participating atoms with the same
        Rydberg pulse; to first order the error accumulates per participating
        qubit pair beyond the first, so ``F(m) = F_CZ^(m-1)``.  For ``m = 2``
        this reduces to ``F_CZ`` exactly as in the table.
        """
        if num_qubits < 2:
            raise ValueError("entangling gates act on at least two qubits")
        return self.cz ** (num_qubits - 1)


@dataclass(frozen=True)
class NeutralAtomArchitecture:
    """Complete description of a neutral-atom device.

    Radii are given in units of the lattice constant ``d`` (matching the
    presentation in the paper); the properties :attr:`interaction_radius_um`
    and :attr:`restriction_radius_um` convert them to micrometres.

    The trap layout is any :class:`~repro.hardware.topology.Topology`
    implementation (square, rectangular, zoned, ...); the field keeps its
    historical name ``lattice``, with :attr:`topology` as the
    protocol-level alias.  Zone capabilities (which traps may host
    entangling gates, corridor transit penalties) are part of the topology
    and surface here through :meth:`is_entangling_site` /
    :meth:`can_interact` / :meth:`within_restriction`.
    """

    name: str = "custom"
    lattice: Topology = field(default_factory=lambda: SquareLattice(15, 15, 3.0))
    num_atoms: int = 200
    interaction_radius: float = 2.5       # r_int, in units of d
    restriction_radius: float = 2.5       # r_restr >= r_int, in units of d
    fidelities: Fidelities = field(default_factory=Fidelities)
    durations: GateDurations = field(default_factory=GateDurations)
    shuttling_speed: float = 0.3          # v [um / us]
    t1: float = 100_000_000.0             # T1 [us]
    t2: float = 1_500_000.0               # T2 [us]

    def __post_init__(self) -> None:
        if self.num_atoms <= 0:
            raise ValueError("architecture needs at least one atom")
        if self.num_atoms >= self.lattice.num_sites:
            raise ValueError(
                "the paper assumes a non-zero number of unoccupied coordinates "
                f"(mu = l^2 - 1 > m); got {self.num_atoms} atoms for "
                f"{self.lattice.num_sites} sites")
        if self.interaction_radius <= 0:
            raise ValueError("interaction radius must be positive")
        if self.restriction_radius < self.interaction_radius:
            raise ValueError("restriction radius must be >= interaction radius")
        if self.shuttling_speed <= 0:
            raise ValueError("shuttling speed must be positive")
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValueError("coherence times must be positive")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The trap topology (protocol-level alias of :attr:`lattice`)."""
        return self.lattice

    @property
    def interaction_radius_um(self) -> float:
        """Interaction radius in micrometres."""
        return self.interaction_radius * self.lattice.spacing

    @property
    def restriction_radius_um(self) -> float:
        """Restriction radius in micrometres."""
        return self.restriction_radius * self.lattice.spacing

    @property
    def coordination_number(self) -> int:
        """Number of neighbouring sites within the interaction radius (bulk site)."""
        return self.lattice.neighbourhood_size(self.interaction_radius_um)

    @property
    def effective_decoherence_time(self) -> float:
        """``T_eff = T1 T2 / (T1 + T2)`` used in the success-probability model."""
        return self.t1 * self.t2 / (self.t1 + self.t2)

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.lattice.num_sites:  # negative would wrap
            raise ValueError(f"site {site} outside topology with "
                             f"{self.lattice.num_sites} sites")

    def sites_interacting_with(self, site: int) -> list:
        """Sites whose atoms could share a gate with an atom at ``site``."""
        self._check_site(site)
        return list(self.lattice.interaction_neighbour_table(
            self.interaction_radius_um)[site])

    def sites_restricted_by(self, site: int) -> list:
        """Sites blocked by a gate executing at ``site``."""
        self._check_site(site)
        return list(self.lattice.restriction_neighbour_table(
            self.restriction_radius_um)[site])

    def can_interact(self, site_a: int, site_b: int) -> bool:
        """True if atoms at the two sites can take part in the same gate.

        Zone-aware: on a zoned topology both sites must be capable of the
        interaction at that distance (storage traps never are).
        """
        return self.lattice.can_interact_within(site_a, site_b,
                                                self.interaction_radius_um)

    def within_restriction(self, site_a: int, site_b: int) -> bool:
        """True if an atom at ``site_b`` blocks parallel gates at ``site_a``."""
        return self.lattice.within_restriction_of(site_a, site_b,
                                                  self.restriction_radius_um)

    # ------------------------------------------------------------------
    # Zone capabilities (delegated to the topology)
    # ------------------------------------------------------------------
    @property
    def all_sites_entangling(self) -> bool:
        """True when every trap may host entangling gates (unzoned devices)."""
        return self.lattice.all_sites_entangling

    def is_entangling_site(self, site: int) -> bool:
        """True if 2Q+ gates may execute at ``site``."""
        return self.lattice.is_entangling_site(site)

    def entangling_sites(self) -> tuple:
        """All sites where entangling gates may execute, in index order."""
        return self.lattice.entangling_sites()

    # ------------------------------------------------------------------
    # Operation timing and fidelity
    # ------------------------------------------------------------------
    def gate_duration(self, num_qubits: int) -> float:
        """Duration of a gate of the given width (1 = single-qubit pulse)."""
        if num_qubits == 1:
            return self.durations.single_qubit
        return self.durations.entangling(num_qubits)

    def gate_fidelity(self, num_qubits: int) -> float:
        """Fidelity of a gate of the given width (1 = single-qubit pulse)."""
        if num_qubits == 1:
            return self.fidelities.single_qubit
        return self.fidelities.entangling(num_qubits)

    def shuttle_move_duration(self, distance_um: float) -> float:
        """Pure travel time of a move over ``distance_um`` (no load/unload)."""
        return distance_um / self.shuttling_speed

    def shuttle_duration(self, distance_um: float, *, include_activation: bool = True,
                         include_deactivation: bool = True) -> float:
        """Full duration of a single shuttling move.

        A move consists of loading the atom into the AOD (activation), the
        travel itself, and unloading back into a static trap (deactivation).
        When moves are grouped into one AOD batch the (de)activation overhead
        is shared, which the scheduler accounts for by calling this with the
        corresponding flags disabled.
        """
        duration = self.shuttle_move_duration(distance_um)
        if include_activation:
            duration += self.durations.aod_activation
        if include_deactivation:
            duration += self.durations.aod_deactivation
        return duration

    def shuttle_fidelity(self) -> float:
        """Fidelity of a single shuttling move."""
        return self.fidelities.shuttling

    def swap_cz_cost(self) -> int:
        """Number of native CZ gates one inserted SWAP decomposes into."""
        return 3

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "NeutralAtomArchitecture":
        """Return a copy with selected fields replaced (functional update)."""
        return replace(self, **kwargs)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the architecture parameters (for reports)."""
        return {
            "name": self.name,
            "topology": self.lattice.kind,
            "rows": self.lattice.rows,
            "cols": self.lattice.cols,
            "spacing_um": self.lattice.spacing,
            "num_zones": self.lattice.num_zones,
            "num_atoms": self.num_atoms,
            "r_int": self.interaction_radius,
            "r_restr": self.restriction_radius,
            "F_cz": self.fidelities.cz,
            "F_1q": self.fidelities.single_qubit,
            "F_shuttle": self.fidelities.shuttling,
            "t_1q_us": self.durations.single_qubit,
            "t_cz_us": self.durations.cz,
            "t_ccz_us": self.durations.ccz,
            "t_cccz_us": self.durations.cccz,
            "t_act_us": self.durations.aod_activation,
            "t_deact_us": self.durations.aod_deactivation,
            "shuttle_speed_um_per_us": self.shuttling_speed,
            "T1_us": self.t1,
            "T2_us": self.t2,
        }
