"""Hardware presets reproducing Table 1c of the paper.

Three configurations are evaluated in the paper, all on a 15 x 15 lattice
with ``d = 3 um`` and ``N = 200`` atoms:

=====================  ==========  ======  ======
parameter              Shuttling   Gate    Mixed
=====================  ==========  ======  ======
``r_int = r_restr``    2           4.5     2.5
``F_CZ``               0.994       0.9995  0.995
``F_H``                0.995       0.9999  0.999
``F_Shuttling``        1           0.999   0.9999
``v`` [um/us]          0.55        0.2     0.3
``t_act/deact`` [us]   20          50      40
=====================  ==========  ======  ======

Shared parameters: ``t_U3 = 0.5 us``, ``t_CZ = 0.2 us``, ``t_CCZ = 0.4 us``,
``t_CCCZ = 0.6 us``, ``T1 = 1e8 us``, ``T2 = 1.5e6 us``.

The factory functions accept ``lattice_rows`` / ``num_atoms`` overrides so
that the benchmark harness can run scaled-down instances with the same
relative characteristics.
"""

from __future__ import annotations

from typing import Dict, Optional

from .architecture import Fidelities, GateDurations, NeutralAtomArchitecture
from .lattice import SquareLattice

__all__ = [
    "shuttling_optimised",
    "gate_optimised",
    "mixed",
    "preset",
    "PRESET_NAMES",
]

PRESET_NAMES = ("shuttling", "gate", "mixed")

_SHARED_DURATIONS = dict(single_qubit=0.5, cz=0.2, ccz=0.4, cccz=0.6)
_SHARED_COHERENCE = dict(t1=100_000_000.0, t2=1_500_000.0)


def _build(name: str, *, r_int: float, f_cz: float, f_1q: float, f_shuttle: float,
           speed: float, t_act: float, lattice_rows: int, spacing: float,
           num_atoms: Optional[int]) -> NeutralAtomArchitecture:
    lattice = SquareLattice(lattice_rows, lattice_rows, spacing)
    atoms = num_atoms if num_atoms is not None else min(200, lattice.num_sites - 1)
    return NeutralAtomArchitecture(
        name=name,
        lattice=lattice,
        num_atoms=atoms,
        interaction_radius=r_int,
        restriction_radius=r_int,
        fidelities=Fidelities(cz=f_cz, single_qubit=f_1q, shuttling=f_shuttle),
        durations=GateDurations(aod_activation=t_act, aod_deactivation=t_act,
                                **_SHARED_DURATIONS),
        shuttling_speed=speed,
        **_SHARED_COHERENCE,
    )


def shuttling_optimised(lattice_rows: int = 15, spacing: float = 3.0,
                        num_atoms: Optional[int] = None) -> NeutralAtomArchitecture:
    """Table 1c column (1): short-range gates, fast and lossless shuttling."""
    return _build("shuttling", r_int=2.0, f_cz=0.994, f_1q=0.995, f_shuttle=1.0,
                  speed=0.55, t_act=20.0, lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms)


def gate_optimised(lattice_rows: int = 15, spacing: float = 3.0,
                   num_atoms: Optional[int] = None) -> NeutralAtomArchitecture:
    """Table 1c column (2): long-range high-fidelity gates, slow lossy shuttling."""
    return _build("gate", r_int=4.5, f_cz=0.9995, f_1q=0.9999, f_shuttle=0.999,
                  speed=0.2, t_act=50.0, lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms)


def mixed(lattice_rows: int = 15, spacing: float = 3.0,
          num_atoms: Optional[int] = None) -> NeutralAtomArchitecture:
    """Table 1c column (3): near-term device without a clearly preferred capability."""
    return _build("mixed", r_int=2.5, f_cz=0.995, f_1q=0.999, f_shuttle=0.9999,
                  speed=0.3, t_act=40.0, lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms)


def preset(name: str, lattice_rows: int = 15, spacing: float = 3.0,
           num_atoms: Optional[int] = None) -> NeutralAtomArchitecture:
    """Instantiate a preset by name (``"shuttling"``, ``"gate"`` or ``"mixed"``)."""
    factories = {
        "shuttling": shuttling_optimised,
        "gate": gate_optimised,
        "mixed": mixed,
    }
    lowered = name.lower()
    if lowered not in factories:
        raise ValueError(f"unknown hardware preset {name!r}; choose from {PRESET_NAMES}")
    return factories[lowered](lattice_rows=lattice_rows, spacing=spacing, num_atoms=num_atoms)
