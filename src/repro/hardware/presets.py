"""Hardware presets reproducing Table 1c of the paper.

Three configurations are evaluated in the paper, all on a 15 x 15 lattice
with ``d = 3 um`` and ``N = 200`` atoms:

=====================  ==========  ======  ======
parameter              Shuttling   Gate    Mixed
=====================  ==========  ======  ======
``r_int = r_restr``    2           4.5     2.5
``F_CZ``               0.994       0.9995  0.995
``F_H``                0.995       0.9999  0.999
``F_Shuttling``        1           0.999   0.9999
``v`` [um/us]          0.55        0.2     0.3
``t_act/deact`` [us]   20          50      40
=====================  ==========  ======  ======

Shared parameters: ``t_U3 = 0.5 us``, ``t_CZ = 0.2 us``, ``t_CCZ = 0.4 us``,
``t_CCCZ = 0.6 us``, ``T1 = 1e8 us``, ``T2 = 1.5e6 us``.

The factory functions accept ``lattice_rows`` / ``num_atoms`` overrides so
that the benchmark harness can run scaled-down instances with the same
relative characteristics, plus topology overrides (``topology`` /
``lattice_cols`` / ``spacing_y`` / ``zone_layout`` / ``corridor_transit_um``)
so any preset can target a rectangular or zoned trap layout.

Beyond the paper's three square-lattice columns, :func:`zoned` instantiates
the *mixed* device parameters on a :class:`~repro.hardware.topology.
ZonedTopology` — storage bands flanking a central entangling band, with a
corridor transit penalty of one lattice constant per crossed zone boundary
by default.  It models multi-zone trap systems where entangling gates only
execute in a dedicated region and atoms shuttle between storage and
computation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .architecture import Fidelities, GateDurations, NeutralAtomArchitecture
from .topology import Topology, Zone, ZoneLayout, build_topology

__all__ = [
    "shuttling_optimised",
    "gate_optimised",
    "mixed",
    "zoned",
    "preset",
    "PRESET_NAMES",
    "ALL_PRESET_NAMES",
]

#: The paper's three square-lattice device columns (Table 1c).
PRESET_NAMES = ("shuttling", "gate", "mixed")

#: Every named preset, including the zoned multi-zone scenario.
ALL_PRESET_NAMES = PRESET_NAMES + ("zoned",)

_SHARED_DURATIONS = dict(single_qubit=0.5, cz=0.2, ccz=0.4, cccz=0.6)
_SHARED_COHERENCE = dict(t1=100_000_000.0, t2=1_500_000.0)

#: Table 1c column (3) device parameters — shared by :func:`mixed` and
#: :func:`zoned` so the zoned scenario can never drift from its documented
#: "mixed parameters on a zoned topology" contract.
_MIXED_DEVICE = dict(r_int=2.5, f_cz=0.995, f_1q=0.999, f_shuttle=0.9999,
                     speed=0.3, t_act=40.0)


def _build(name: str, *, r_int: float, f_cz: float, f_1q: float, f_shuttle: float,
           speed: float, t_act: float, lattice_rows: int, spacing: float,
           num_atoms: Optional[int], topology: str = "square",
           lattice_cols: Optional[int] = None, spacing_y: Optional[float] = None,
           zone_layout: Optional[Union[Sequence[Zone], ZoneLayout]] = None,
           corridor_transit_um: Optional[float] = None
           ) -> NeutralAtomArchitecture:
    trap_topology: Topology = build_topology(
        topology, lattice_rows, cols=lattice_cols, spacing=spacing,
        spacing_y=spacing_y, zone_layout=zone_layout,
        corridor_transit_um=corridor_transit_um)
    if num_atoms is not None:
        atoms = num_atoms
    elif trap_topology.all_sites_entangling:
        atoms = min(200, trap_topology.num_sites - 1)
    else:
        # Zoned devices keep the fill factor at ~1/2 so the entangling band
        # retains free traps for gathering gate qubits.
        atoms = min(200, max(trap_topology.num_sites // 2, 1))
    return NeutralAtomArchitecture(
        name=name,
        lattice=trap_topology,
        num_atoms=atoms,
        interaction_radius=r_int,
        restriction_radius=r_int,
        fidelities=Fidelities(cz=f_cz, single_qubit=f_1q, shuttling=f_shuttle),
        durations=GateDurations(aod_activation=t_act, aod_deactivation=t_act,
                                **_SHARED_DURATIONS),
        shuttling_speed=speed,
        **_SHARED_COHERENCE,
    )


def shuttling_optimised(lattice_rows: int = 15, spacing: float = 3.0,
                        num_atoms: Optional[int] = None,
                        **topology_kwargs) -> NeutralAtomArchitecture:
    """Table 1c column (1): short-range gates, fast and lossless shuttling."""
    return _build("shuttling", r_int=2.0, f_cz=0.994, f_1q=0.995, f_shuttle=1.0,
                  speed=0.55, t_act=20.0, lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms, **topology_kwargs)


def gate_optimised(lattice_rows: int = 15, spacing: float = 3.0,
                   num_atoms: Optional[int] = None,
                   **topology_kwargs) -> NeutralAtomArchitecture:
    """Table 1c column (2): long-range high-fidelity gates, slow lossy shuttling."""
    return _build("gate", r_int=4.5, f_cz=0.9995, f_1q=0.9999, f_shuttle=0.999,
                  speed=0.2, t_act=50.0, lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms, **topology_kwargs)


def mixed(lattice_rows: int = 15, spacing: float = 3.0,
          num_atoms: Optional[int] = None,
          **topology_kwargs) -> NeutralAtomArchitecture:
    """Table 1c column (3): near-term device without a clearly preferred capability."""
    return _build("mixed", lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms, **_MIXED_DEVICE, **topology_kwargs)


def zoned(lattice_rows: int = 15, spacing: float = 3.0,
          num_atoms: Optional[int] = None,
          **topology_kwargs) -> NeutralAtomArchitecture:
    """Multi-zone scenario: the mixed device parameters on a zoned topology.

    Storage bands flank a central entangling band
    (:func:`~repro.hardware.topology.banded_zone_layout`); 2Q+ gates only
    execute in the entangling band and shuttles crossing a zone corridor
    pay ``corridor_transit_um`` (default: one lattice constant) of extra
    travel.  Override ``zone_layout`` / ``corridor_transit_um`` for custom
    band structures.  The preset is zoned by definition — a ``topology``
    override other than ``"zoned"`` is rejected rather than silently
    producing an unzoned device named "zoned".
    """
    requested = topology_kwargs.setdefault("topology", "zoned")
    if requested != "zoned":
        raise ValueError(
            f"the 'zoned' preset requires topology='zoned', got {requested!r}")
    return _build("zoned", lattice_rows=lattice_rows, spacing=spacing,
                  num_atoms=num_atoms, **_MIXED_DEVICE, **topology_kwargs)


def preset(name: str, lattice_rows: int = 15, spacing: float = 3.0,
           num_atoms: Optional[int] = None,
           **topology_kwargs) -> NeutralAtomArchitecture:
    """Instantiate a preset by name (:data:`ALL_PRESET_NAMES`).

    ``topology_kwargs`` (``topology``, ``lattice_cols``, ``spacing_y``,
    ``zone_layout``, ``corridor_transit_um``) forward to
    :func:`~repro.hardware.topology.build_topology`, so e.g.
    ``preset("mixed", topology="zoned")`` runs the mixed device parameters
    on a zoned trap layout.
    """
    factories = {
        "shuttling": shuttling_optimised,
        "gate": gate_optimised,
        "mixed": mixed,
        "zoned": zoned,
    }
    lowered = name.lower()
    if lowered not in factories:
        raise ValueError(
            f"unknown hardware preset {name!r}; choose from {ALL_PRESET_NAMES}")
    return factories[lowered](lattice_rows=lattice_rows, spacing=spacing,
                              num_atoms=num_atoms, **topology_kwargs)
