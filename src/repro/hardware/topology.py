"""Pluggable trap-topology layer.

The paper evaluates the hybrid gate/shuttling trade-off on a regular square
lattice (Section 2.1), but nothing in the mapping process depends on the
traps forming a square: the routers only consume *geometric queries* — site
positions, distances, radius neighbourhoods — plus, for multi-zone systems,
*zone capabilities* (which traps may host entangling gates, what extra
transit a shuttle pays for crossing a zone corridor).

This module defines that contract and its implementations:

* :class:`Topology` — the protocol every trap layout implements: ``num_sites``,
  positions, ``neighbours_within(site, r)`` and distance rows (scalar +
  numpy-kernel variants), plus zone hooks that default to the unzoned
  single-region behaviour so square lattices are unaffected.
* :class:`GridTopology` — the shared row-major grid implementation
  (anisotropic ``spacing_x`` / ``spacing_y``), extracted from the historical
  ``SquareLattice`` with its caches (positions, per-radius offset rings,
  lazily filled distance rows, vectorised neighbour tables) intact.
* :class:`RectangularLattice` — ``rows != cols`` grids with anisotropic
  spacing, registered as ``"rectangular"``.
* :class:`Zone` / :class:`ZonedTopology` — storage + entangling bands with
  per-zone interaction/restriction radii and a configurable corridor transit
  penalty, registered as ``"zoned"``.  Storage traps hold atoms but cannot
  host entangling gates; the mapper shuttles gate qubits into an entangling
  zone (cf. multi-zone trap systems such as the AQT multi-zone router).

``SquareLattice`` (kind ``"square"``) lives in :mod:`repro.hardware.lattice`
for backwards compatibility and registers itself here on import.

Bit-identity contract
---------------------
For isotropic grids every code path — offset rings, distance rows, the
numpy kernels — is the exact code the square lattice always ran, so the
golden op-stream digests of the square presets are unchanged by this layer.
Anisotropic and zoned behaviour only engages through the new parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Iterator, List, Optional,
                    Sequence, Tuple, Type, Union)

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environments
    _np = None

__all__ = [
    "Position",
    "Topology",
    "GridTopology",
    "RectangularLattice",
    "Zone",
    "ZonedTopology",
    "TOPOLOGY_REGISTRY",
    "register_topology",
    "build_topology",
    "banded_zone_layout",
    "zones_from_layout",
    "ZoneLayout",
]

Position = Tuple[float, float]

#: Geometric tolerance shared by every radius predicate (matches the
#: historical square-lattice implementation bit for bit).
_EPSILON = 1e-9

#: Serialisable zone layout: ``((kind, rows), ...)`` or full ``Zone`` tuples.
ZoneLayout = Tuple[Tuple[str, int], ...]


class Topology:
    """Protocol for trap layouts the architecture and mapper consume.

    Concrete classes provide the *geometry*: :attr:`num_sites`, positions,
    ``neighbours_within`` / :meth:`sites_within` and the distance rows (with
    scalar reference semantics; a numpy kernel may accelerate construction
    as long as the rows stay bit-identical).  The *zone* hooks below have
    single-region defaults, so unzoned topologies need not override them:

    * every site may host entangling gates (:meth:`is_entangling_site`),
    * the interaction/restriction neighbour tables are the plain geometric
      radius neighbourhoods,
    * travel distances carry no corridor penalties.
    """

    #: Registry key of the topology family (``"square"``, ``"rectangular"``,
    #: ``"zoned"``); subclasses override.
    kind: str = "abstract"

    #: Grid shape and lattice constant — part of the protocol, not just of
    #: :class:`GridTopology`: the mapper's safety bounds consume
    #: ``rows``/``cols`` (stall threshold, max routing steps), the radius
    #: conversions and move-away heuristics consume ``spacing`` (the
    #: lattice constant ``d``), and the initial-layout strategies consume
    #: :meth:`row_col`.  A non-grid implementation must still provide
    #: meaningful values (e.g. the bounding-box shape and the minimum
    #: trap pitch).
    rows: int
    cols: int
    spacing: float

    # -- geometry (must be implemented) --------------------------------
    @property
    def num_sites(self) -> int:
        raise NotImplementedError

    def row_col(self, site: int) -> Tuple[int, int]:
        """Grid coordinates of a site (bounding-box coordinates off-grid)."""
        raise NotImplementedError

    def position(self, site: int) -> Position:
        raise NotImplementedError

    def positions(self) -> List[Position]:
        raise NotImplementedError

    def euclidean_distance(self, site_a: int, site_b: int) -> float:
        raise NotImplementedError

    def rectangular_distance(self, site_a: int, site_b: int) -> float:
        raise NotImplementedError

    def euclidean_row(self, site: int) -> List[float]:
        raise NotImplementedError

    def rectangular_row(self, site: int) -> List[float]:
        raise NotImplementedError

    def sites_within(self, site: int, radius: float) -> List[int]:
        raise NotImplementedError

    def sites_within_set(self, site: int, radius: float) -> FrozenSet[int]:
        raise NotImplementedError

    def neighbour_table(self, radius: float) -> List[Tuple[int, ...]]:
        raise NotImplementedError

    def neighbourhood_size(self, radius: float) -> int:
        raise NotImplementedError

    def cache_key(self) -> Tuple:
        """Hashable identity of the topology (type + dims + spacing + zones)."""
        raise NotImplementedError

    # -- protocol conveniences -----------------------------------------
    def neighbours_within(self, site: int, radius: float) -> List[int]:
        """Protocol alias of :meth:`sites_within`."""
        return self.sites_within(site, radius)

    def rectangular_row_array(self, site: int):
        """:meth:`rectangular_row` as a cached float64 numpy array.

        Values are taken verbatim from the scalar row (bit-identical,
        including zoned travel penalties via the subclass override), so
        vectorised argmin/argsort selections over the array reproduce the
        scalar comparisons exactly.  Returned by reference; callers must
        not mutate it.  Requires numpy (the chain kernel is gated on it).
        """
        cache = getattr(self, "_rect_row_arrays", None)
        if cache is None:
            cache = {}
            self._rect_row_arrays = cache
        array = cache.get(site)
        if array is None:
            array = _np.asarray(self.rectangular_row(site), dtype=_np.float64)
            cache[site] = array
        return array

    def sites_within_array(self, site: int, radius: float):
        """:meth:`sites_within` as a cached int64 numpy array.

        The scan order of :meth:`sites_within` is ascending site index, so
        first-occurrence argmin over this array matches the scalar
        ``min(..., key=(value, site))`` tie-break.  Returned by reference;
        callers must not mutate it.  Requires numpy.
        """
        cache = getattr(self, "_sites_within_arrays", None)
        if cache is None:
            cache = {}
            self._sites_within_arrays = cache
        key = (site, radius)
        array = cache.get(key)
        if array is None:
            array = _np.asarray(self.sites_within(site, radius),
                                dtype=_np.int64)
            cache[key] = array
        return array

    def __len__(self) -> int:
        return self.num_sites

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_sites))

    # -- zone hooks (single-region defaults) ---------------------------
    @property
    def num_zones(self) -> int:
        return 1

    @property
    def all_sites_entangling(self) -> bool:
        """True when every trap may host entangling gates (unzoned default)."""
        return True

    @property
    def has_travel_penalties(self) -> bool:
        """True when travel distances exceed the plain rectangular metric."""
        return False

    def zone_of(self, site: int) -> int:
        """Index of the zone containing ``site`` (0 for unzoned layouts)."""
        return 0

    def is_entangling_site(self, site: int) -> bool:
        """True if entangling (2Q+) gates may execute at ``site``."""
        return True

    def entangling_sites(self) -> Tuple[int, ...]:
        """All sites where entangling gates may execute, in index order."""
        return tuple(range(self.num_sites))

    def zone_partition(self) -> List[Tuple[int, ...]]:
        """Sites grouped by zone; the groups partition ``range(num_sites)``."""
        return [tuple(range(self.num_sites))]

    def interaction_neighbour_table(self, radius_um: float
                                    ) -> List[Tuple[int, ...]]:
        """Per-site interaction partners under the device radius ``radius_um``.

        The unzoned default is the plain geometric neighbourhood; zoned
        topologies restrict pairs by their zones' capabilities.
        """
        return self.neighbour_table(radius_um)

    def restriction_neighbour_table(self, radius_um: float
                                    ) -> List[Tuple[int, ...]]:
        """Per-site blocked partners when a gate executes at the site."""
        return self.neighbour_table(radius_um)

    def can_interact_within(self, site_a: int, site_b: int,
                            radius_um: float) -> bool:
        """True if atoms at the two sites may share a gate at ``radius_um``."""
        return self.euclidean_distance(site_a, site_b) <= radius_um + _EPSILON

    def within_restriction_of(self, site_a: int, site_b: int,
                              radius_um: float) -> bool:
        """True if an atom at ``site_b`` blocks a gate executing at ``site_a``."""
        return self.euclidean_distance(site_a, site_b) <= radius_um + _EPSILON


class GridTopology(Topology):
    """Row-major ``rows x cols`` grid of optical traps.

    Coordinate indices run row-major: index ``alpha`` sits at row
    ``alpha // cols`` and column ``alpha % cols``, i.e. at physical position
    ``(col * spacing_x, row * spacing_y)`` in micrometres.  ``spacing`` (the
    lattice constant ``d`` used for radius conversions) is the smaller of
    the two pitches; for isotropic grids all three coincide and every code
    path below is exactly the historical square-lattice implementation.
    """

    kind = "grid"

    def __init__(self, rows: int, cols: Optional[int] = None,
                 spacing_x: float = 3.0,
                 spacing_y: Optional[float] = None) -> None:
        if rows <= 0:
            raise ValueError("lattice needs at least one row")
        cols = cols if cols is not None else rows
        if cols <= 0:
            raise ValueError("lattice needs at least one column")
        spacing_y = spacing_y if spacing_y is not None else spacing_x
        if spacing_x <= 0 or spacing_y <= 0:
            raise ValueError("lattice spacing must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.spacing_x = float(spacing_x)
        self.spacing_y = float(spacing_y)
        #: Lattice constant ``d`` used to convert radii given in units of
        #: ``d`` to micrometres (the smaller pitch for anisotropic grids).
        self.spacing = min(self.spacing_x, self.spacing_y)
        self._num_sites = self.rows * self.cols
        # Geometry caches.  Site positions never change, so they are computed
        # once; radius neighbourhoods are memoised per (site, radius) because
        # the routers query the same few radii over and over.
        self._positions: List[Position] = [
            ((site % self.cols) * self.spacing_x,
             (site // self.cols) * self.spacing_y)
            for site in range(self._num_sites)
        ]
        self._sites_within_cache: Dict[Tuple[int, float], List[int]] = {}
        self._sites_within_set_cache: Dict[Tuple[int, float], frozenset] = {}
        self._radius_offsets_cache: Dict[float, List[Tuple[int, int]]] = {}
        self._neighbour_table_cache: Dict[float, List[Tuple[int, ...]]] = {}
        self._euclidean_rows: List[Optional[List[float]]] = [None] * self._num_sites
        self._rectangular_rows: List[Optional[List[float]]] = [None] * self._num_sites
        # numpy row-vector kernel: per-axis coordinate arrays, used to fill
        # rectangular-distance rows in one vectorised expression (exact for
        # any spacing — see rectangular_row).  Gated on numpy being
        # importable; the pure-python loops remain the fallback and the
        # reference (tests assert the rows are bit-identical).  Euclidean
        # rows intentionally stay scalar: vectorised sqrt differs from
        # math.hypot in the last bit on non-representable coordinates.
        if _np is not None:
            self._xs = _np.fromiter((p[0] for p in self._positions), dtype=_np.float64,
                                    count=self._num_sites)
            self._ys = _np.fromiter((p[1] for p in self._positions), dtype=_np.float64,
                                    count=self._num_sites)
        else:
            self._xs = self._ys = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        """Total number of trap coordinates ``|C|``."""
        return self._num_sites

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.rows}x{self.cols}, "
                f"dx={self.spacing_x} um, dy={self.spacing_y} um)")

    def cache_key(self) -> Tuple:
        kind = self.kind
        if kind == "rectangular" and self.spacing_x == self.spacing_y:
            # An isotropic rectangular grid is physically a square lattice:
            # fold the family name so the two spellings of one device share
            # cache/store identities.  Anisotropic grids keep their own kind
            # (and both pitches are part of the key, so two grids sharing
            # only a minimum spacing never collide).
            kind = "square"
        return (kind, self.rows, self.cols, self.spacing_x, self.spacing_y)

    # ------------------------------------------------------------------
    # Index <-> geometry conversions
    # ------------------------------------------------------------------
    def row_col(self, site: int) -> Tuple[int, int]:
        """Return the ``(row, col)`` grid coordinates of a site index."""
        self._check_site(site)
        return divmod(site, self.cols)

    def site_at(self, row: int, col: int) -> int:
        """Return the site index at grid coordinates ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"grid coordinates ({row}, {col}) outside "
                             f"{self.rows}x{self.cols} lattice")
        return row * self.cols + col

    def position(self, site: int) -> Position:
        """Physical ``(x, y)`` position of a site in micrometres."""
        self._check_site(site)
        return self._positions[site]

    def positions(self) -> List[Position]:
        """Positions of all sites in index order."""
        return list(self._positions)

    def site_near(self, x: float, y: float) -> int:
        """Site index closest to the physical position ``(x, y)``."""
        col = min(max(round(x / self.spacing_x), 0), self.cols - 1)
        row = min(max(round(y / self.spacing_y), 0), self.rows - 1)
        return self.site_at(int(row), int(col))

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self._num_sites:
            raise ValueError(f"site {site} outside lattice with {self._num_sites} sites")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def euclidean_distance(self, site_a: int, site_b: int) -> float:
        """Euclidean distance between two sites in micrometres."""
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return math.hypot(xa - xb, ya - yb)

    def rectangular_distance(self, site_a: int, site_b: int) -> float:
        """Manhattan (x-then-y) travel distance between two sites in micrometres.

        AOD moves displace the activated row and column independently, so the
        shuttling time of a single move is governed by this rectangular
        distance ``s(M)``.
        """
        if site_a < 0 or site_b < 0:  # list indexing would silently wrap
            self._check_site(site_a)
            self._check_site(site_b)
        xa, ya = self._positions[site_a]
        xb, yb = self._positions[site_b]
        return abs(xa - xb) + abs(ya - yb)

    def euclidean_row(self, site: int) -> List[float]:
        """Euclidean distances from ``site`` to every site (lazily cached row).

        Returned by reference for hot loops (the shuttling cost function
        evaluates millions of point distances); callers must not mutate it.
        The values are bit-identical to :meth:`euclidean_distance`.  The
        fill deliberately stays on ``math.hypot``: a vectorised
        ``sqrt(dx*dx + dy*dy)`` differs from ``hypot`` in the last bit for
        coordinates that are not exactly representable (e.g. spacing 0.3),
        which would make routing decisions depend on whether numpy is
        installed.  Row construction is one-time per site, so the scalar
        loop costs nothing in the steady state.
        """
        self._check_site(site)
        row = self._euclidean_rows[site]
        if row is None:
            x, y = self._positions[site]
            row = [math.hypot(x - px, y - py) for px, py in self._positions]
            self._euclidean_rows[site] = row
        return row

    def rectangular_row(self, site: int) -> List[float]:
        """Rectangular (Manhattan) distances from ``site`` to every site (cached).

        The numpy kernel is exact here for any spacing: subtraction, ``abs``
        and addition are single correctly-rounded IEEE operations, so the
        vectorised row is bit-identical to the scalar formula (asserted by
        the hardware kernel tests).  Zoned topologies override this with
        the *travel* metric including corridor penalties; the plain grid
        metric and the travel metric coincide here.
        """
        self._check_site(site)
        row = self._rectangular_rows[site]
        if row is None:
            x, y = self._positions[site]
            if self._xs is not None:
                row = (_np.abs(x - self._xs) + _np.abs(y - self._ys)).tolist()
            else:
                row = [abs(x - px) + abs(y - py) for px, py in self._positions]
            self._rectangular_rows[site] = row
        return row

    def grid_distance(self, site_a: int, site_b: int) -> int:
        """Chebyshev distance in lattice units (number of king moves)."""
        ra, ca = self.row_col(site_a)
        rb, cb = self.row_col(site_b)
        return max(abs(ra - rb), abs(ca - cb))

    # ------------------------------------------------------------------
    # Neighbourhoods
    # ------------------------------------------------------------------
    def _radius_offsets(self, radius: float) -> List[Tuple[int, int]]:
        """In-radius ``(dr, dc)`` grid offsets in scan order (memoised).

        The distance predicate is evaluated once per offset instead of once
        per (site, offset); the values and ordering are exactly those of the
        historical per-site bounding-box scan.  The isotropic branch keeps
        the historical formula ``hypot(dr, dc) * spacing`` verbatim — it is
        the reference the golden digests pin; the anisotropic branch scales
        each axis by its own pitch before the hypotenuse.
        """
        cached = self._radius_offsets_cache.get(radius)
        if cached is None:
            if self.spacing_x == self.spacing_y:
                spacing = self.spacing_x
                reach = int(math.floor(radius / spacing + _EPSILON))
                cached = [
                    (dr, dc)
                    for dr in range(-reach, reach + 1)
                    for dc in range(-reach, reach + 1)
                    if (dr, dc) != (0, 0)
                    and math.hypot(dr, dc) * spacing <= radius + _EPSILON
                ]
            else:
                reach_r = int(math.floor(radius / self.spacing_y + _EPSILON))
                reach_c = int(math.floor(radius / self.spacing_x + _EPSILON))
                cached = [
                    (dr, dc)
                    for dr in range(-reach_r, reach_r + 1)
                    for dc in range(-reach_c, reach_c + 1)
                    if (dr, dc) != (0, 0)
                    and math.hypot(dc * self.spacing_x,
                                   dr * self.spacing_y) <= radius + _EPSILON
                ]
            self._radius_offsets_cache[radius] = cached
        return cached

    def sites_within(self, site: int, radius: float) -> List[int]:
        """All sites (excluding ``site`` itself) within Euclidean ``radius``.

        ``radius`` is in micrometres.  The scan is restricted to the shared
        in-radius offset table, so the cost is ``O((radius/d)^2)`` rather
        than the full lattice; results are memoised per ``(site, radius)``
        because the routers probe the same few radii millions of times.
        """
        self._check_site(site)
        if radius <= 0:
            return []
        cached = self._sites_within_cache.get((site, radius))
        if cached is not None:
            return list(cached)
        row, col = self.row_col(site)
        rows, cols = self.rows, self.cols
        found: List[int] = []
        for dr, dc in self._radius_offsets(radius):
            r, c = row + dr, col + dc
            if 0 <= r < rows and 0 <= c < cols:
                found.append(r * cols + c)
        self._sites_within_cache[(site, radius)] = found
        return list(found)

    def neighbour_table(self, radius: float) -> List[Tuple[int, ...]]:
        """:meth:`sites_within` for *every* site at once (memoised).

        With numpy available the whole table is computed as one broadcast
        over the in-radius offsets (the row-vector kernel the connectivity
        construction uses); the fallback assembles the same rows per site.
        Ordering and membership are identical to :meth:`sites_within`.
        """
        cached = self._neighbour_table_cache.get(radius)
        if cached is not None:
            return cached
        if radius <= 0:
            table: List[Tuple[int, ...]] = [() for _ in range(self._num_sites)]
        elif _np is not None:
            offsets = self._radius_offsets(radius)
            if offsets:
                drs = _np.fromiter((o[0] for o in offsets), dtype=_np.int64,
                                   count=len(offsets))
                dcs = _np.fromiter((o[1] for o in offsets), dtype=_np.int64,
                                   count=len(offsets))
                sites = _np.arange(self._num_sites, dtype=_np.int64)
                r = sites[:, None] // self.cols + drs[None, :]
                c = sites[:, None] % self.cols + dcs[None, :]
                valid = ((r >= 0) & (r < self.rows) & (c >= 0) & (c < self.cols))
                neighbour = r * self.cols + c
                table = [tuple(neighbour[i, valid[i]].tolist())
                         for i in range(self._num_sites)]
            else:
                table = [() for _ in range(self._num_sites)]
        else:
            table = [tuple(self.sites_within(site, radius))
                     for site in range(self._num_sites)]
        self._neighbour_table_cache[radius] = table
        return table

    def sites_within_set(self, site: int, radius: float) -> frozenset:
        """The :meth:`sites_within` disc as a memoised frozenset.

        Shared by reference for set algebra in hot loops (e.g. the chain
        cache's occupancy-read recording), so no per-call copy is made.
        """
        key = (site, radius)
        cached = self._sites_within_set_cache.get(key)
        if cached is None:
            cached = frozenset(self.sites_within(site, radius))
            self._sites_within_set_cache[key] = cached
        return cached

    def neighbourhood_size(self, radius: float) -> int:
        """Coordination number ``K_r`` of a bulk site for the given radius."""
        if radius <= 0:
            return 0
        return len(self._radius_offsets(radius))

    def all_pairs_within(self, radius: float) -> Iterator[Tuple[int, int]]:
        """Yield every unordered site pair within Euclidean ``radius``."""
        for site in range(self.num_sites):
            for other in self.sites_within(site, radius):
                if other > site:
                    yield (site, other)

    def boundary_sites(self) -> List[int]:
        """Sites on the outer rim of the lattice."""
        rim = []
        for site in range(self.num_sites):
            row, col = self.row_col(site)
            if row in (0, self.rows - 1) or col in (0, self.cols - 1):
                rim.append(site)
        return rim

    def interior_sites(self) -> List[int]:
        """Sites not on the outer rim."""
        boundary = set(self.boundary_sites())
        return [site for site in range(self.num_sites) if site not in boundary]


class RectangularLattice(GridTopology):
    """``rows x cols`` grid with independent per-axis spacing.

    The geometry generalises the square lattice along both axes: AOD travel
    still decomposes into an x shift and a y shift, so all distance metrics
    carry over unchanged; only the offset rings become anisotropic.
    """

    kind = "rectangular"

    def __init__(self, rows: int, cols: int, spacing_x: float = 3.0,
                 spacing_y: Optional[float] = None) -> None:
        super().__init__(rows, cols, spacing_x=spacing_x, spacing_y=spacing_y)


@dataclass(frozen=True)
class Zone:
    """One horizontal band of a :class:`ZonedTopology`.

    ``interaction_radius`` / ``restriction_radius`` are given in units of
    the lattice constant ``d`` (matching the device parameters); ``None``
    selects the architecture default — except that a storage zone with no
    explicit interaction radius gets ``0`` (its traps only store atoms, no
    entangling gates execute there).
    """

    name: str
    band_kind: str                  # "storage" | "entangling"
    rows: int
    interaction_radius: Optional[float] = None
    restriction_radius: Optional[float] = None

    def __post_init__(self) -> None:
        if self.band_kind not in ("storage", "entangling"):
            raise ValueError(
                f"zone kind must be 'storage' or 'entangling', got {self.band_kind!r}")
        if self.rows <= 0:
            raise ValueError("a zone needs at least one row")
        for field_name in ("interaction_radius", "restriction_radius"):
            value = getattr(self, field_name)
            if value is not None and value < 0:
                raise ValueError(f"zone {field_name} must be non-negative")
        if self.band_kind == "storage" and self.interaction_radius:
            # A storage band with interaction adjacency would let SWAP
            # pulses execute on traps the zone predicates report as
            # non-entangling — contradictory semantics.  A band that hosts
            # gates IS an entangling band; declare it as one.
            raise ValueError(
                "a storage zone cannot have a positive interaction radius; "
                "declare the band as 'entangling' instead")

    @property
    def is_entangling(self) -> bool:
        return self.band_kind == "entangling"


def banded_zone_layout(rows: int) -> Tuple[Zone, ...]:
    """Default storage / entangling / storage split of a ``rows``-row grid.

    The entangling band takes the middle third (rounded up); the storage
    bands flank it.  Requires at least three rows.
    """
    if rows < 3:
        raise ValueError("a banded zone layout needs at least three rows")
    storage = max(rows // 3, 1)
    entangling = rows - 2 * storage
    return (
        Zone("storage-top", "storage", storage),
        Zone("entangling", "entangling", entangling),
        Zone("storage-bottom", "storage", storage),
    )


def zones_from_layout(layout: Union[Sequence[Zone], ZoneLayout]) -> Tuple[Zone, ...]:
    """Normalise a zone layout: ``Zone`` instances pass through, ``(kind,
    rows)`` pairs become default-radius zones named ``<kind>-<index>``."""
    zones: List[Zone] = []
    for index, entry in enumerate(layout):
        if isinstance(entry, Zone):
            zones.append(entry)
        else:
            band_kind, band_rows = entry
            zones.append(Zone(f"{band_kind}-{index}", band_kind, int(band_rows)))
    return tuple(zones)


class ZonedTopology(GridTopology):
    """Grid split into horizontal storage and entangling bands.

    Semantics (cf. multi-zone neutral-atom trap systems):

    * **Entangling zones** host 2Q+ gates; their interaction radius is the
      zone override (in units of ``d``) or the architecture default.
    * **Storage zones** hold atoms but host no entangling gates: their
      effective interaction radius defaults to ``0``, so no interaction
      adjacency involves a storage trap and the executability predicate
      (``sites_mutually_interacting``) structurally confines gates to
      entangling zones.
    * A site pair interacts iff its distance is within **both** sites'
      effective radii (``min`` semantics — symmetric by construction).
    * The restriction neighbourhood of a site uses the *executing* site's
      zone radius: a gate firing in an entangling zone still blocks nearby
      storage traps.
    * **Corridor transit**: every zone boundary a shuttle crosses adds
      ``corridor_transit_um`` to its travel distance (and therefore
      ``corridor_transit_um / v`` to its duration).  The travel metric
      (:meth:`rectangular_distance` / :meth:`rectangular_row`) includes the
      penalty; the Euclidean metric stays pure geometry because it feeds
      the interaction-radius predicates.
    """

    kind = "zoned"

    def __init__(self, zones: Union[Sequence[Zone], ZoneLayout],
                 cols: Optional[int] = None, spacing: float = 3.0,
                 corridor_transit_um: float = 0.0) -> None:
        zone_tuple = zones_from_layout(zones)
        if not zone_tuple:
            raise ValueError("a zoned topology needs at least one zone")
        if not any(zone.is_entangling for zone in zone_tuple):
            raise ValueError("a zoned topology needs at least one entangling zone")
        if corridor_transit_um < 0:
            raise ValueError("corridor transit penalty must be non-negative")
        rows = sum(zone.rows for zone in zone_tuple)
        super().__init__(rows, cols if cols is not None else rows,
                         spacing_x=spacing, spacing_y=spacing)
        self.zones: Tuple[Zone, ...] = zone_tuple
        self.corridor_transit_um = float(corridor_transit_um)
        self._zone_of_row: List[int] = []
        for index, zone in enumerate(zone_tuple):
            self._zone_of_row.extend([index] * zone.rows)
        self._zone_of_site: List[int] = [
            self._zone_of_row[site // self.cols] for site in range(self.num_sites)]
        self._entangling_sites: Tuple[int, ...] = tuple(
            site for site in range(self.num_sites)
            if zone_tuple[self._zone_of_site[site]].is_entangling)
        self._travel_rows: List[Optional[List[float]]] = [None] * self.num_sites
        self._interaction_tables: Dict[float, List[Tuple[int, ...]]] = {}
        self._restriction_tables: Dict[float, List[Tuple[int, ...]]] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bands = "+".join(f"{zone.band_kind[0]}{zone.rows}" for zone in self.zones)
        return (f"ZonedTopology({self.rows}x{self.cols}, d={self.spacing} um, "
                f"bands={bands}, corridor={self.corridor_transit_um} um)")

    def cache_key(self) -> Tuple:
        return (self.kind, self.rows, self.cols, self.spacing_x, self.spacing_y,
                self.corridor_transit_um,
                tuple((zone.band_kind, zone.rows, zone.interaction_radius,
                       zone.restriction_radius) for zone in self.zones))

    # ------------------------------------------------------------------
    # Zone structure
    # ------------------------------------------------------------------
    @property
    def num_zones(self) -> int:
        return len(self.zones)

    @property
    def all_sites_entangling(self) -> bool:
        return len(self._entangling_sites) == self.num_sites

    @property
    def has_travel_penalties(self) -> bool:
        return self.corridor_transit_um > 0 and self.num_zones > 1

    def zone_of(self, site: int) -> int:
        self._check_site(site)
        return self._zone_of_site[site]

    def zone(self, site: int) -> Zone:
        return self.zones[self.zone_of(site)]

    def is_entangling_site(self, site: int) -> bool:
        return self.zones[self._zone_of_site[site]].is_entangling

    def entangling_sites(self) -> Tuple[int, ...]:
        return self._entangling_sites

    def zone_partition(self) -> List[Tuple[int, ...]]:
        partition: List[List[int]] = [[] for _ in self.zones]
        for site, zone_index in enumerate(self._zone_of_site):
            partition[zone_index].append(site)
        return [tuple(sites) for sites in partition]

    def zone_crossings(self, site_a: int, site_b: int) -> int:
        """Number of zone corridors a shuttle between the sites crosses."""
        return abs(self._zone_of_site[site_a] - self._zone_of_site[site_b])

    # ------------------------------------------------------------------
    # Effective radii
    # ------------------------------------------------------------------
    def _zone_interaction_um(self, zone: Zone, default_um: float) -> float:
        if zone.interaction_radius is not None:
            return zone.interaction_radius * self.spacing
        return 0.0 if zone.band_kind == "storage" else default_um

    def _zone_restriction_um(self, zone: Zone, default_um: float) -> float:
        if zone.restriction_radius is not None:
            return zone.restriction_radius * self.spacing
        return default_um

    # ------------------------------------------------------------------
    # Capability-aware neighbour tables
    # ------------------------------------------------------------------
    def interaction_neighbour_table(self, radius_um: float
                                    ) -> List[Tuple[int, ...]]:
        cached = self._interaction_tables.get(radius_um)
        if cached is not None:
            return cached
        site_radius = [self._zone_interaction_um(self.zones[index], radius_um)
                       for index in self._zone_of_site]
        max_radius = max(site_radius, default=0.0)
        base = self.neighbour_table(max_radius) if max_radius > 0 else [
            () for _ in range(self.num_sites)]
        table: List[Tuple[int, ...]] = []
        for site in range(self.num_sites):
            radius_a = site_radius[site]
            if radius_a <= 0:
                table.append(())
                continue
            distances = self.euclidean_row(site)
            table.append(tuple(
                other for other in base[site]
                if distances[other] <= min(radius_a, site_radius[other]) + _EPSILON))
        self._interaction_tables[radius_um] = table
        return table

    def restriction_neighbour_table(self, radius_um: float
                                    ) -> List[Tuple[int, ...]]:
        cached = self._restriction_tables.get(radius_um)
        if cached is not None:
            return cached
        table = [tuple(self.sites_within(
            site, self._zone_restriction_um(self.zones[self._zone_of_site[site]],
                                            radius_um)))
            for site in range(self.num_sites)]
        self._restriction_tables[radius_um] = table
        return table

    def can_interact_within(self, site_a: int, site_b: int,
                            radius_um: float) -> bool:
        radius = min(
            self._zone_interaction_um(self.zones[self._zone_of_site[site_a]], radius_um),
            self._zone_interaction_um(self.zones[self._zone_of_site[site_b]], radius_um))
        if radius <= 0:
            return False
        return self.euclidean_distance(site_a, site_b) <= radius + _EPSILON

    def within_restriction_of(self, site_a: int, site_b: int,
                              radius_um: float) -> bool:
        radius = self._zone_restriction_um(
            self.zones[self._zone_of_site[site_a]], radius_um)
        if radius <= 0:
            return False
        return self.euclidean_distance(site_a, site_b) <= radius + _EPSILON

    # ------------------------------------------------------------------
    # Travel metric with corridor penalties
    # ------------------------------------------------------------------
    def rectangular_distance(self, site_a: int, site_b: int) -> float:
        base = super().rectangular_distance(site_a, site_b)
        if not self.has_travel_penalties:
            return base
        return base + self.corridor_transit_um * self.zone_crossings(site_a, site_b)

    def rectangular_row(self, site: int) -> List[float]:
        if not self.has_travel_penalties:
            return super().rectangular_row(site)
        self._check_site(site)
        row = self._travel_rows[site]
        if row is None:
            base = super().rectangular_row(site)
            corridor = self.corridor_transit_um
            zone_of_site = self._zone_of_site
            band = zone_of_site[site]
            # Scalar on purpose: row construction is one-time per site, and
            # the scalar composition is the reference the zoned tests pin.
            row = [value + corridor * abs(zone_of_site[other] - band)
                   for other, value in enumerate(base)]
            self._travel_rows[site] = row
        return row


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Topology kind -> class.  ``"square"`` is registered by
#: :mod:`repro.hardware.lattice` on import (the class lives there for
#: backwards compatibility); importing :mod:`repro.hardware` populates the
#: full registry.
TOPOLOGY_REGISTRY: Dict[str, Type[Topology]] = {}


def register_topology(cls: Type[Topology]) -> Type[Topology]:
    """Class decorator adding a topology family to :data:`TOPOLOGY_REGISTRY`."""
    TOPOLOGY_REGISTRY[cls.kind] = cls
    return cls


register_topology(RectangularLattice)
register_topology(ZonedTopology)


def build_topology(kind: str, rows: int, *, cols: Optional[int] = None,
                   spacing: float = 3.0, spacing_y: Optional[float] = None,
                   zone_layout: Optional[Union[Sequence[Zone], ZoneLayout]] = None,
                   corridor_transit_um: Optional[float] = None) -> Topology:
    """Instantiate a registered topology family from flat parameters.

    The flat signature mirrors :class:`~repro.service.cache.ArchitectureSpec`
    so specs stay picklable; ``corridor_transit_um`` defaults to one lattice
    constant per crossed corridor for zoned layouts.
    """
    lowered = kind.lower()
    if lowered != "zoned" and (zone_layout is not None
                               or corridor_transit_um is not None):
        # Dropping these silently would let two unequal parameter sets build
        # the same physical device (and a corridor sweep report constant
        # results); unzoned families reject them instead.
        raise ValueError(
            f"topology {lowered!r} has no zones; zone_layout and "
            f"corridor_transit_um apply to topology='zoned' only")
    if lowered in ("square", "zoned") and spacing_y is not None \
            and spacing_y != spacing:
        # Silently ignoring the pitch would let two unequal specs describe
        # the same physical device (and a spacing_y sweep report constant
        # results); isotropic families reject it instead.
        raise ValueError(
            f"topology {lowered!r} is isotropic; it cannot honour "
            f"spacing_y={spacing_y} (use topology='rectangular')")
    if lowered == "square":
        from .lattice import SquareLattice
        return SquareLattice(rows, cols if cols is not None else rows, spacing)
    if lowered == "rectangular":
        return RectangularLattice(rows, cols if cols is not None else rows,
                                  spacing_x=spacing, spacing_y=spacing_y)
    if lowered == "zoned":
        zones = (zones_from_layout(zone_layout) if zone_layout is not None
                 else banded_zone_layout(rows))
        layout_rows = sum(zone.rows for zone in zones)
        if layout_rows != rows:
            # Building with the layout's row count while the caller (and any
            # spec keyed on it) believes in ``rows`` would silently measure
            # a different geometry; fail at the source instead.
            raise ValueError(
                f"zone layout spans {layout_rows} rows but rows={rows} was "
                f"requested; make them agree")
        corridor = corridor_transit_um if corridor_transit_um is not None else spacing
        return ZonedTopology(zones, cols, spacing=spacing,
                             corridor_transit_um=corridor)
    known = sorted(set(TOPOLOGY_REGISTRY) | {"square"})
    raise ValueError(f"unknown topology kind {kind!r}; choose from {known}")
