"""Package version, importable without triggering :mod:`repro`'s full import.

Kept in its own module because :mod:`repro.store` bakes the version into
every persistent store key (a new release must never serve artifacts
compiled by an older routing engine), and importing it from
``repro/__init__`` there would be circular.
"""

__version__ = "1.3.0"  # 1.3.0: MapperConfig canonical key v2 (sharding knobs)
