"""Shared sizing rules for scaled-down benchmark workloads.

Every harness in the repository — the Table-1 experiment settings, the
pytest benchmarks, the perf report and the batch-compilation service — runs
the paper's workloads at a fraction of their original size so that the pure
Python mapper finishes in seconds.  The scaling rules live here so that all
consumers agree on them:

* register sizes shrink proportionally to the paper's sizes (Table 1b),
  clamped to a consumer-chosen minimum,
* the atom count keeps the paper's 200-atom register in proportion but never
  drops below the largest circuit,
* the lattice edge grows just past the atom count so the fill factor stays
  comparable to the paper's 200-atom / 15x15 configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from .circuit.library import BENCHMARK_NAMES, default_benchmark_size
from .hardware.architecture import NeutralAtomArchitecture
from .hardware.presets import preset

__all__ = [
    "PAPER_SIZES",
    "PAPER_ATOM_COUNT",
    "scaled_register_size",
    "scaled_atom_count",
    "lattice_rows_for",
    "build_scaled_architecture",
]

#: Register sizes of the paper's evaluation (Table 1b), keyed by benchmark.
PAPER_SIZES: Dict[str, int] = {name: default_benchmark_size(name)
                               for name in BENCHMARK_NAMES}

#: Atom count of the paper's device configurations (Table 1c).
PAPER_ATOM_COUNT = 200


def scaled_register_size(name: str, scale: float, *, min_size: int = 8) -> int:
    """Scaled register size for a named benchmark, clamped to ``min_size``."""
    return max(min_size, round(default_benchmark_size(name) * scale))


def scaled_atom_count(scale: float, circuit_sizes: Iterable[int]) -> int:
    """Atom count for a scaled device hosting circuits of the given sizes.

    The paper's 200 atoms shrink proportionally, but the device always offers
    at least as many atoms as the largest circuit needs.
    """
    sizes = list(circuit_sizes)
    if not sizes:
        raise ValueError("need at least one circuit size to scale the device")
    return max(max(sizes), round(PAPER_ATOM_COUNT * scale))


def lattice_rows_for(num_atoms: int, topology: str = "square") -> int:
    """Grid edge length for a scaled device hosting ``num_atoms`` atoms.

    For unzoned topologies the edge is the smallest ``rows`` (at least 4)
    with ``rows**2 > num_atoms`` plus one extra row, so shuttling always
    finds free traps even at full occupancy of the identity layout.

    Zoned topologies split the grid into storage and entangling bands; the
    entangling band (the middle third under the default layout) must retain
    free traps for gathering gate qubits, so the edge grows until the grid
    offers at least twice as many sites as atoms (and at least six rows, so
    every band spans two or more rows).
    """
    rows = 4
    while rows * rows <= num_atoms:
        rows += 1
    rows += 1
    if topology == "zoned":
        while rows < 6 or rows * rows < 2 * num_atoms:
            rows += 1
    return rows


def build_scaled_architecture(hardware: str, scale: float, *,
                              circuit_names: Sequence[str] = BENCHMARK_NAMES,
                              min_size: int = 8,
                              spacing: float = 3.0,
                              topology: str = "square") -> NeutralAtomArchitecture:
    """Build a hardware preset scaled for the named benchmark circuits."""
    if hardware == "zoned":
        topology = "zoned"
    sizes = [scaled_register_size(name, scale, min_size=min_size)
             for name in circuit_names]
    atoms = scaled_atom_count(scale, sizes)
    return preset(hardware, lattice_rows=lattice_rows_for(atoms, topology),
                  spacing=spacing, num_atoms=atoms, topology=topology)
