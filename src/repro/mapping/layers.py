"""Layer creation (process block (1)).

The :class:`LayerManager` wraps the commutation-aware circuit DAG and exposes
exactly the two layers the hybrid mapper operates on:

* the **front layer** ``f`` of entangling gates whose dependencies are all
  satisfied, and
* the **lookahead layer** ``l`` of entangling gates that follow the front
  layer within a configurable depth.

Non-entangling gates (single-qubit gates, barriers, measurements) never need
routing; the manager drains them from the DAG automatically and reports them
so the mapper can forward them to the output stream in order.

The manager additionally maintains the *routing view* consumed by the
incremental cost engine of :class:`~repro.mapping.gate_router.GateRouter`:
the front layer, the lookahead layer, and a qubit → node inverted index over
both are computed lazily and cached until a gate is executed.  During long
SWAP sequences (many routing rounds without an execution) the layers do not
change, so the cached view makes repeated layer queries and index lookups
O(1) instead of re-walking the DAG every round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import CircuitDAG, DAGNode

__all__ = ["LayerManager", "build_qubit_node_index"]


def build_qubit_node_index(*node_groups) -> Dict[int, List[DAGNode]]:
    """Inverted index: circuit qubit → nodes acting on it, in node order.

    Node order is preserved so float sums taken over a qubit's nodes are
    bit-identical to iterating the original layer lists.  Shared by the
    layer manager and both routers' cost engines.
    """
    index: Dict[int, List[DAGNode]] = {}
    for nodes in node_groups:
        for node in nodes:
            for qubit in node.gate.qubits:
                index.setdefault(qubit, []).append(node)
    return index


class LayerManager:
    """Maintains the front and lookahead layers of entangling gates.

    Parameters
    ----------
    circuit:
        Circuit to map.
    lookahead_depth:
        How many release steps behind the front layer the lookahead extends.
    use_commutation:
        Forwarded to :class:`~repro.circuit.dag.CircuitDAG`.
    """

    def __init__(self, circuit: QuantumCircuit, lookahead_depth: int = 1,
                 use_commutation: bool = True) -> None:
        if lookahead_depth < 0:
            raise ValueError("lookahead depth cannot be negative")
        self.circuit = circuit
        self.lookahead_depth = lookahead_depth
        self.dag = CircuitDAG(circuit, use_commutation=use_commutation)
        self._cached_front: Optional[List[DAGNode]] = None
        self._cached_lookahead: Optional[List[DAGNode]] = None
        self._cached_qubit_index: Optional[Dict[int, List[DAGNode]]] = None

    def _invalidate_routing_view(self) -> None:
        self._cached_front = None
        self._cached_lookahead = None
        self._cached_qubit_index = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def is_finished(self) -> bool:
        return self.dag.is_finished()

    @property
    def num_remaining(self) -> int:
        return self.dag.num_gates - self.dag.num_executed

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def drain_trivial_gates(self) -> List[DAGNode]:
        """Execute and return all currently available non-entangling gates.

        Draining repeats until the front layer contains only entangling gates,
        because executing a single-qubit gate may release further
        single-qubit gates.
        """
        drained: List[DAGNode] = []
        while True:
            trivial = self.dag.executable_trivially()
            if not trivial:
                if drained:
                    self._invalidate_routing_view()
                return drained
            for node in trivial:
                self.dag.execute(node.index)
                drained.append(node)

    def front_layer(self) -> List[DAGNode]:
        """Entangling gates currently ready for routing (cached snapshot).

        The returned list is cached until the next execution; treat it as
        read-only.
        """
        if self._cached_front is None:
            self._cached_front = self.dag.entangling_front()
        return self._cached_front

    def lookahead_layer(self) -> List[DAGNode]:
        """Entangling gates within the lookahead horizon (cached snapshot)."""
        if self.lookahead_depth == 0:
            return []
        if self._cached_lookahead is None:
            self._cached_lookahead = [
                node for node in self.dag.lookahead_layer(self.lookahead_depth)
                if node.gate.is_entangling]
        return self._cached_lookahead

    def qubit_node_index(self) -> Dict[int, List[DAGNode]]:
        """Inverted index: circuit qubit → front/lookahead nodes acting on it.

        The index is what lets the gate-based cost engine score a SWAP
        candidate by re-evaluating only the gates that touch the two swapped
        qubits.  It covers the *entire* front and lookahead layers; consumers
        routing a subset (e.g. after the capability split) filter the listed
        nodes against their own node set.  Cached until the next execution;
        treat it as read-only.
        """
        if self._cached_qubit_index is None:
            self._cached_qubit_index = build_qubit_node_index(
                self.front_layer(), self.lookahead_layer())
        return self._cached_qubit_index

    def layers(self) -> Tuple[List[DAGNode], List[DAGNode]]:
        """Return ``(front, lookahead)`` after draining trivial gates."""
        self.drain_trivial_gates()
        return self.front_layer(), self.lookahead_layer()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, node: DAGNode) -> None:
        """Mark a front-layer gate as executed (invalidates the routing view)."""
        self.dag.execute(node.index)
        self._invalidate_routing_view()
