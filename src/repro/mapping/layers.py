"""Layer creation (process block (1)).

The :class:`LayerManager` wraps the commutation-aware circuit DAG and exposes
exactly the two layers the hybrid mapper operates on:

* the **front layer** ``f`` of entangling gates whose dependencies are all
  satisfied, and
* the **lookahead layer** ``l`` of entangling gates that follow the front
  layer within a configurable depth.

Non-entangling gates (single-qubit gates, barriers, measurements) never need
routing; the manager drains them from the DAG automatically and reports them
so the mapper can forward them to the output stream in order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import CircuitDAG, DAGNode

__all__ = ["LayerManager"]


class LayerManager:
    """Maintains the front and lookahead layers of entangling gates.

    Parameters
    ----------
    circuit:
        Circuit to map.
    lookahead_depth:
        How many release steps behind the front layer the lookahead extends.
    use_commutation:
        Forwarded to :class:`~repro.circuit.dag.CircuitDAG`.
    """

    def __init__(self, circuit: QuantumCircuit, lookahead_depth: int = 1,
                 use_commutation: bool = True) -> None:
        if lookahead_depth < 0:
            raise ValueError("lookahead depth cannot be negative")
        self.circuit = circuit
        self.lookahead_depth = lookahead_depth
        self.dag = CircuitDAG(circuit, use_commutation=use_commutation)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def is_finished(self) -> bool:
        return self.dag.is_finished()

    @property
    def num_remaining(self) -> int:
        return self.dag.num_gates - self.dag.num_executed

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def drain_trivial_gates(self) -> List[DAGNode]:
        """Execute and return all currently available non-entangling gates.

        Draining repeats until the front layer contains only entangling gates,
        because executing a single-qubit gate may release further
        single-qubit gates.
        """
        drained: List[DAGNode] = []
        while True:
            trivial = self.dag.executable_trivially()
            if not trivial:
                return drained
            for node in trivial:
                self.dag.execute(node.index)
                drained.append(node)

    def front_layer(self) -> List[DAGNode]:
        """Entangling gates currently ready for routing."""
        return self.dag.entangling_front()

    def lookahead_layer(self) -> List[DAGNode]:
        """Entangling gates within the lookahead horizon."""
        if self.lookahead_depth == 0:
            return []
        return [node for node in self.dag.lookahead_layer(self.lookahead_depth)
                if node.gate.is_entangling]

    def layers(self) -> Tuple[List[DAGNode], List[DAGNode]]:
        """Return ``(front, lookahead)`` after draining trivial gates."""
        self.drain_trivial_gates()
        return self.front_layer(), self.lookahead_layer()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, node: DAGNode) -> None:
        """Mark a front-layer gate as executed."""
        self.dag.execute(node.index)
