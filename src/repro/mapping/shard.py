"""Sharded intra-circuit routing: parallel slice routing + seam stitching.

The batch layer (:mod:`repro.service.batch`) and the serving gateway
parallelise *across* circuits; one large circuit still routes serially.
:class:`ShardedRouter` parallelises *within* a circuit:

1. **Partition** — :func:`repro.mapping.partition.partition_circuit` cuts the
   gate list into weakly-coupled slices at low-crossing frontiers; with
   ``hierarchical_partition`` the recursive variant
   (:func:`~repro.mapping.partition.partition_circuit_tree`) re-cuts
   oversized slices at their own min-crossing frontiers into a slice tree
   whose every level honours the hard cut-qubit bound.
2. **Slice routing** — each slice is routed as a full-width subcircuit by an
   ordinary serial :class:`~repro.mapping.hybrid_mapper.HybridMapper`.  With
   ``shard_workers >= 2`` (*speculative* scheduler) slices route
   concurrently on a :class:`~repro.resilience.supervisor.SupervisedPool`.
   With ``seed_snapshots`` each worker starts from a **forecast entry map**:
   a cheap placement simulation (:func:`forecast_entry_maps`) walks the
   plan once, predicting where every qubit will sit when its slice begins,
   so slice ``k`` speculates from (approximately) the state it will actually
   inherit instead of the initial snapshot — replay preconditions mostly
   hold and seam rounds shrink to a thin repair pass.  A slice whose
   forecast is missing or infeasible falls back to the initial snapshot.
   With ``shard_workers == 1`` (*chained* scheduler) slices route one after
   another from the true predecessor state; there is no speculation and the
   result is exact — the honest configuration for 1-CPU hosts.
3. **Streaming seam stitching** — completed slice results are consumed in
   deterministic leaf order by a *streaming* stitcher
   (:meth:`ShardedRouter.stream`).  Before replaying a *seeded* slice the
   stitcher emits a **repair pass**: a short deterministic move sequence
   transforming the true merged state into exactly the forecast state the
   worker started from (forecasts never reassign qubits, so aligning the
   atom→site map suffices) — the worker's stream then replays verbatim by
   construction and no seam round is needed.  Unseeded or fallback streams
   are *replayed* against the true merged state the PR-7 way (an operation
   is kept when its preconditions still hold; deferred gates form one
   serial seam round per slice).  Either way the merged operations are
   yielded incrementally.  At most
   ``workers + 1`` slice results exist at any moment — the merged stream
   never holds every slice's op list in memory at once, which is what
   bounds peak RSS on 1000+-qubit circuits (``max_live_results`` in
   ``shard_stats`` records the high-water mark).  :meth:`ShardedRouter.map`
   is simply the stream drained into a :class:`MappingResult`.

Contract (ROADMAP item 2): sharded routing is **not** bit-identical to
serial routing.  It is gated by *metrics parity* (ΔCZ / move counts within
bounds) plus full replay validity (:mod:`repro.mapping.replay`), enforced by
``tests/differential/test_differential_shard.py``.  The emitted stream
depends only on the config (scheduler split, seeding, partition shape —
all fingerprinted), never on how many workers actually ran or whether a
worker crashed mid-slice — a crashed/hung slice worker is recycled by the
supervised pool and its whole slice falls back to the seam path.

The speculative scheduler ships work to process workers via a fork-inherited
module global (:data:`_FORK_CONTEXT`) so the architecture, connectivity,
slice subcircuits and forecast maps never cross a pickle boundary; only the
slice index does.  One sharded map runs per process at a time (guarded by a
module lock).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace as dataclass_replace
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import Gate, GateKind
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..resilience.supervisor import SupervisedPool
from ..shuttling.moves import Move
from ..telemetry import tracing
from ..telemetry.registry import get_registry
from .config import MapperConfig
from .partition import (PartitionPlan, partition_circuit,
                        partition_circuit_tree, slice_subcircuit)
from .result import (CircuitGateOp, MappedOperation, MappingResult, ShuttleOp,
                     SwapOp)
from .state import MappingState

__all__ = ["ShardedRouter", "StitchStream", "forecast_entry_maps"]

#: Pool kind override for tests (``"process"`` / ``"thread"``); ``None``
#: auto-selects: process workers where ``fork`` is available, else threads.
_POOL_KIND: Optional[str] = None

#: Per-slice wall-clock budget handed to the supervised pool (``None`` =
#: unbounded).  Tests shrink it to exercise the hung-worker recycle path.
_SLICE_DEADLINE_S: Optional[float] = None

#: Fork-inherited routing context for speculative slice workers: set (under
#: :data:`_CONTEXT_LOCK`) *before* the pool is constructed so forked workers
#: inherit it; thread workers read it directly.
_FORK_CONTEXT: Dict[str, object] = {}
_CONTEXT_LOCK = threading.Lock()

#: One entry-map forecast: ``(atom_to_site, qubit_to_atom)`` as produced by
#: :meth:`MappingState.export_maps`.
EntryMaps = Tuple[List[int], List[int]]


def _route_slice_worker(slice_index: int) -> Tuple[bool, MappingResult]:
    """Pool task: route one slice subcircuit from its seeded (or snapshot) state.

    Runs inside a forked worker process (or a pool thread); everything but
    the slice index arrives through :data:`_FORK_CONTEXT`.  Returns
    ``(seeded, result)`` — ``seeded`` reports whether the worker actually
    started from the forecast entry map.  A missing forecast, or one the
    :class:`MappingState` constructor rejects as infeasible, falls back to
    the initial-state snapshot.
    """
    from .hybrid_mapper import HybridMapper

    with tracing.span("shard.slice", slice=slice_index) as trace_span:
        context = _FORK_CONTEXT
        mapper = HybridMapper(context["architecture"], context["config"],
                              context["connectivity"])
        state: Optional[MappingState] = None
        seeded = False
        entry_maps = context.get("entry_maps")
        if entry_maps is not None:
            forecast = entry_maps[slice_index]
            if forecast is not None:
                try:
                    state = MappingState.from_maps(
                        context["architecture"], forecast,
                        connectivity=context["connectivity"])
                    seeded = True
                except ValueError:
                    state = None
        if state is None:
            state = context["snapshot"].copy()
        trace_span.set(seeded=seeded)
        result = mapper.map(context["subcircuits"][slice_index],
                            initial_state=state)
        return seeded, result


def _resolve_pool_kind() -> str:
    if _POOL_KIND is not None:
        return _POOL_KIND
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
        return "process"
    except ValueError:  # pragma: no cover - platform without fork
        return "thread"


# ----------------------------------------------------------------------
# Forecast entry maps (predictive snapshot seeding)
# ----------------------------------------------------------------------
def forecast_entry_maps(plan: PartitionPlan,
                        initial_state: MappingState
                        ) -> List[Optional[EntryMaps]]:
    """Cheap placement simulation over the plan → per-slice entry-map forecast.

    Walks every slice's gates once against a simulated state: a gate whose
    qubits are not mutually interacting is "routed" by direct moves only —
    each qubit is placed on the cheapest free site interacting with the
    already-gathered ones, mirroring the shuttling router's direct-move
    choice (``(travel, site)`` tie-break) without chain scoring, move-aways
    or SWAP search.  The entry of slice ``k`` is the simulated state after
    slices ``0..k-1``.  Every returned map is exported from a live
    :class:`MappingState`, so it is legal by construction; a gate the
    simulation cannot place is simply skipped (the forecast degrades, the
    seam rounds absorb the error).
    """
    sim = initial_state.copy()
    architecture = sim.architecture
    lattice = architecture.lattice
    connectivity = sim.connectivity
    gates = plan.circuit.gates
    entries: List[Optional[EntryMaps]] = []
    for piece in plan.slices:
        entries.append(sim.export_maps())
        for index in piece.gate_indices():
            gate = gates[index]
            if not gate.is_entangling or sim.gate_executable(gate):
                continue
            _simulate_gather(sim, gate, architecture, lattice, connectivity)
    return entries


def _simulate_gather(sim: MappingState, gate: Gate, architecture, lattice,
                     connectivity) -> None:
    """Greedy direct-move placement of one gate's qubits in the simulation."""
    anchor = gate.qubits[0]
    anchor_site = sim.site_of_qubit(anchor)
    if not architecture.is_entangling_site(anchor_site):
        # Storage-stranded anchor (zoned topologies): relocate it onto the
        # nearest free entangling site first, like the real router.
        row = lattice.rectangular_row(anchor_site)
        best = None
        for site in architecture.entangling_sites():
            if sim.site_is_free(site):
                key = (row[site], site)
                if best is None or key < best:
                    best = key
        if best is None:
            return
        sim.move_atom(sim.atom_of_qubit(anchor), best[1])
        anchor_site = best[1]

    kept: List[int] = [anchor_site]
    anchor_row = lattice.euclidean_row(anchor_site)
    others = sorted((q for q in gate.qubits if q != anchor),
                    key=lambda q: anchor_row[sim.site_of_qubit(q)])
    for qubit in others:
        current = sim.site_of_qubit(qubit)
        if all(connectivity.are_adjacent(current, site) for site in kept):
            kept.append(current)
            continue
        zone: Optional[Set[int]] = None
        for site in kept:
            neighbours = connectivity.interaction_set(site)
            zone = set(neighbours) if zone is None else zone & neighbours
            if not zone:
                return
        free = zone & sim.free_sites()
        free.discard(current)
        if not free:
            return
        row = lattice.rectangular_row(current)
        destination = min(free, key=lambda site: (row[site], site))
        sim.move_atom(sim.atom_of_qubit(qubit), destination)
        kept.append(destination)


class ShardedRouter:
    """Partition → (parallel) slice routing → streaming seam stitching.

    Constructed by :meth:`HybridMapper.map` when ``config.shard_routing`` is
    set; :meth:`map` returns ``None`` when the circuit partitions into fewer
    than two slices, which tells the caller to take the ordinary serial path
    (bit-identical to the committed goldens — the serial-fallback guard).
    :meth:`stream` exposes the same pipeline as an incremental operation
    generator with bounded slice-result memory.
    """

    def __init__(self, architecture: NeutralAtomArchitecture,
                 config: MapperConfig,
                 connectivity: Optional[SiteConnectivity] = None) -> None:
        self.architecture = architecture
        self.config = config
        self.connectivity = connectivity or SiteConnectivity(architecture)
        # Slice and seam routing always runs the plain serial mapper — the
        # override is what keeps the mutual recursion between HybridMapper
        # and ShardedRouter one level deep.
        self._serial_config = config.with_overrides(shard_routing=False)

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit,
            initial_state: Optional[MappingState] = None
            ) -> Optional[MappingResult]:
        """Sharded mapping of ``circuit``; ``None`` = caller routes serially."""
        stream = self.stream(circuit, initial_state=initial_state)
        if stream is None:
            return None
        with tracing.span("shard.map", circuit=circuit.name,
                          num_slices=stream.stats.get("num_slices")):
            for _ in stream:
                pass
        return stream.result

    def stream(self, circuit: QuantumCircuit,
               initial_state: Optional[MappingState] = None,
               retain: bool = True) -> Optional["StitchStream"]:
        """Streaming stitcher over ``circuit``; ``None`` = route serially.

        The returned :class:`StitchStream` yields merged operations in
        final stream order while slices are still being routed.  With
        ``retain=False`` nothing is accumulated into a
        :class:`MappingResult` — the caller owns each yielded op and the
        stitcher's live memory stays bounded by a per-slice constant
        (validity can be checked on the fly with
        :class:`repro.mapping.replay.StreamValidator`).
        """
        start_time = time.perf_counter()
        if circuit.num_entangling_gates() == 0:
            # Nothing to route — the serial path is pure emission; slicing
            # it would add overhead for a workload with no routing at all.
            return None
        tick = time.perf_counter()
        partition = (partition_circuit_tree if self.config.hierarchical_partition
                     else partition_circuit)
        plan = partition(
            circuit,
            min_slice=self.config.shard_min_slice,
            max_slice=self.config.resolved_shard_max_slice,
            max_cut_qubits=self.config.shard_max_cut_qubits,
        )
        partition_seconds = time.perf_counter() - tick
        if plan.num_slices < 2:
            return None
        state = initial_state or MappingState(
            self.architecture, circuit.num_qubits,
            connectivity=self.connectivity)
        return StitchStream(self, plan, state, retain=retain,
                            start_time=start_time,
                            partition_seconds=partition_seconds)


class StitchStream:
    """One in-flight sharded mapping, consumed as an operation iterator.

    Iterate to drain; ``stats`` (and with ``retain=True`` the filled
    ``result``) are complete once exhaustion finishes the bookkeeping.
    ``final_qubit_map`` / ``final_atom_map`` hold the end-of-stream mapping
    state either way.  Single use: iterating twice raises.
    """

    def __init__(self, router: ShardedRouter, plan: PartitionPlan,
                 state: MappingState, *, retain: bool, start_time: float,
                 partition_seconds: float) -> None:
        self._router = router
        self._plan = plan
        self._state = state
        self._start_time = start_time
        self._started = False
        self.initial_qubit_map = state.qubit_mapping()
        self.initial_atom_map = state.atom_mapping()
        self.final_qubit_map: Optional[Dict[int, int]] = None
        self.final_atom_map: Optional[Dict[int, int]] = None
        self.result: Optional[MappingResult] = None
        if retain:
            self.result = MappingResult(
                circuit=plan.circuit,
                mode=router._serial_config.mode,
                initial_qubit_map=self.initial_qubit_map,
                initial_atom_map=self.initial_atom_map,
            )
            self.stage_seconds = self.result.stage_seconds
            self._coverage: Optional[bytearray] = None
        else:
            self.stage_seconds: Dict[str, float] = {}
            self._coverage = bytearray(len(plan.circuit))
        self.stats: Dict[str, object] = {
            "pool_kind": None,
            "workers": 1,
            "gates_replayed": 0,
            "gates_deferred": 0,
            "swaps_replayed": 0,
            "swaps_dropped": 0,
            "moves_replayed": 0,
            "moves_dropped": 0,
            "seam_rounds": 0,
            "seam_gates": 0,
            "seeded_slices": 0,
            "seeded_fallbacks": 0,
            "repair_moves": 0,
            "max_live_results": 0,
            "slice_failures": [],
            "stitch_seconds": 0.0,
            "partition_seconds": partition_seconds,
            "seed_snapshots": router.config.seed_snapshots,
            "hierarchical_partition": router.config.hierarchical_partition,
        }
        self.stats.update(plan.summary())

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[MappedOperation]:
        if self._started:
            raise RuntimeError("a StitchStream can only be consumed once")
        self._started = True
        return self._run()

    def _run(self) -> Iterator[MappedOperation]:
        stats = self.stats
        if self._router.config.shard_workers <= 1:
            stats["scheduler"] = "chained"
            yield from self._chained()
        else:
            stats["scheduler"] = "speculative"
            yield from self._speculative()
        self._finalise()

    def _emit(self, op: MappedOperation) -> MappedOperation:
        if self.result is not None:
            self.result.append(op)
        elif isinstance(op, CircuitGateOp) and self._coverage[op.gate_index] < 2:
            self._coverage[op.gate_index] += 1
        return op

    # ------------------------------------------------------------------
    # Chained scheduler (shard_workers == 1)
    # ------------------------------------------------------------------
    def _chained(self) -> Iterator[MappedOperation]:
        """Route slices sequentially from the true state — exact, no seams.

        Each slice result is fully drained (and dropped) before the next
        slice routes, so exactly one lives at any moment.
        """
        from .hybrid_mapper import HybridMapper

        router, state = self._router, self._state
        self.stats["max_live_results"] = 1
        for piece in self._plan.slices:
            subcircuit = slice_subcircuit(self._plan.circuit, piece)
            mapper = HybridMapper(router.architecture, router._serial_config,
                                  router.connectivity)
            slice_result = mapper.map(subcircuit, initial_state=state)
            for op in slice_result.operations:
                if isinstance(op, CircuitGateOp):
                    op = dataclass_replace(
                        op, gate_index=op.gate_index + piece.start)
                yield self._emit(op)
            if self.result is not None:
                _merge_counters(self.result, slice_result)
            _merge_stage_seconds(self.stage_seconds,
                                 slice_result.stage_seconds)

    # ------------------------------------------------------------------
    # Speculative scheduler (shard_workers >= 2)
    # ------------------------------------------------------------------
    def _speculative(self) -> Iterator[MappedOperation]:
        """Route slices concurrently from seeded snapshots, stitch in order.

        At most ``workers + 1`` slices are in flight: completed results are
        consumed (replayed and dropped) in leaf order while later slices
        still route, and a new slice is only submitted as one is consumed —
        the memory bound behind ``max_live_results``.  A slice whose worker
        failed (crash, deadline kill, pool shutdown) is deferred wholesale
        to its seam round — serial fallback, not fatal.
        """
        global _FORK_CONTEXT
        router, plan, state = self._router, self._plan, self._state
        stats = self.stats
        subcircuits = [slice_subcircuit(plan.circuit, piece)
                       for piece in plan.slices]
        kind = _resolve_pool_kind()
        workers = min(router.config.shard_workers, plan.num_slices)
        stats["pool_kind"] = kind
        stats["workers"] = workers
        entry_maps: Optional[List[Optional[EntryMaps]]] = None
        if router.config.seed_snapshots:
            tick = time.perf_counter()
            entry_maps = forecast_entry_maps(plan, state)
            stats["forecast_seconds"] = time.perf_counter() - tick
        slice_stage_seconds: Dict[str, float] = {}
        window = workers + 1

        with _CONTEXT_LOCK:
            _FORK_CONTEXT = {
                "architecture": router.architecture,
                "config": router._serial_config,
                "connectivity": router.connectivity,
                "subcircuits": subcircuits,
                "snapshot": state.copy(),
                "entry_maps": entry_maps,
            }
            pool = SupervisedPool(workers, kind=kind,
                                  deadline_s=_SLICE_DEADLINE_S)
            try:
                pending: Deque[Tuple[int, object]] = deque()
                next_index = 0
                while next_index < plan.num_slices or pending:
                    while (next_index < plan.num_slices
                           and len(pending) < window):
                        piece = plan.slices[next_index]
                        pending.append((piece.index, pool.submit(
                            _route_slice_worker, piece.index,
                            label=f"slice-{piece.index}")))
                        next_index += 1
                    stats["max_live_results"] = max(
                        stats["max_live_results"], len(pending))
                    slice_index, future = pending.popleft()
                    piece = plan.slices[slice_index]
                    seeded = False
                    try:
                        seeded, slice_result = future.result()
                    except Exception as exc:  # noqa: BLE001 - any pool fault
                        stats["slice_failures"].append(
                            {"slice": piece.index,
                             "error": f"{type(exc).__name__}: {exc}"})
                        slice_result = None
                    if entry_maps is not None and slice_result is not None:
                        key = "seeded_slices" if seeded else "seeded_fallbacks"
                        stats[key] += 1
                    tick = time.perf_counter()
                    if slice_result is None:
                        deferred = [
                            (piece.start + offset, gate)
                            for offset, gate in enumerate(
                                subcircuits[piece.index].gates)
                            if gate.kind != GateKind.BARRIER
                        ]
                    else:
                        _merge_stage_seconds(slice_stage_seconds,
                                             slice_result.stage_seconds)
                        if seeded and self._repair_pays_off(
                                slice_result, entry_maps[piece.index]):
                            yield from self._repair_to_forecast(
                                entry_maps[piece.index][0], slice_result)
                        deferred = yield from self._replay_slice(
                            slice_result, piece.start)
                        del slice_result
                    stats["stitch_seconds"] += time.perf_counter() - tick
                    if deferred:
                        yield from self._seam_round(deferred)
            finally:
                pool.shutdown(wait=False)
                _FORK_CONTEXT = {}
        # Worker-side stage timings overlap in wall-clock; they are reported
        # separately so stage_seconds stays a serial-time account.
        stats["slice_stage_seconds"] = slice_stage_seconds

    def _repair_pays_off(self, slice_result: MappingResult,
                         forecast: EntryMaps) -> bool:
        """Decide whether to repair the true state to a slice's forecast.

        Repair guarantees a verbatim replay only when the true qubit→atom
        map still agrees with the forecast's (forecasts never model SWAPs;
        replayed SWAPs from earlier slices void the guarantee — then the
        plain replay-plus-seam path is both cheaper and no worse).  And when
        a dry replay of the stream defers nothing, the drift is confined to
        atoms this slice never touches and repair would spend moves for no
        seam reduction.  Both checks depend only on deterministic state, so
        the emitted stream stays independent of worker count and pool kind.
        """
        target_sites, target_qubit_atoms = forecast
        state = self._state
        if any(state.atom_of_qubit(qubit) != atom
               for qubit, atom in enumerate(target_qubit_atoms)):
            return False
        misplaced = sum(1 for atom, site in enumerate(target_sites)
                        if state.site_of_atom(atom) != site)
        if misplaced == 0:
            return False
        probe = state.copy()
        blocked: Set[int] = set()
        would_defer = 0
        for op in slice_result.operations:
            if isinstance(op, CircuitGateOp):
                gate = op.gate
                if any(q in blocked for q in gate.qubits) \
                        or not probe.gate_executable(gate):
                    blocked.update(gate.qubits)
                    would_defer += 1
            elif isinstance(op, SwapOp):
                if (probe.atom_of_qubit(op.qubit_a) == op.atom_a
                        and probe.site_of_atom(op.atom_a) == op.site_a
                        and probe.atom_at_site(op.site_b) == op.atom_b):
                    probe.apply_swap_with_atom(op.qubit_a, op.atom_b)
            elif isinstance(op, ShuttleOp):
                move = op.move
                if (probe.site_of_atom(move.atom) == move.source
                        and probe.site_is_free(move.destination)):
                    probe.apply_move(move)
        # Repair costs at most ~one move per misplaced atom; every deferred
        # gate costs a serial routing pass in the seam round.  Repair when
        # it is the cheaper currency.
        return 0 < misplaced <= would_defer

    def _repair_to_forecast(self, target_sites: Sequence[int],
                            slice_result: MappingResult
                            ) -> Iterator[MappedOperation]:
        """Emit moves aligning the true state with a seeded stream's forecast.

        This is the repair pass that makes a seeded stream replay verbatim.
        It is scoped to the stream's *footprint*: every atom the stream
        references is placed on its forecast site, and every move
        destination that was free in the forecast is cleared of strays.
        That is exactly the precondition set the stream's legality depended
        on in the worker — atoms the stream never touches may keep drifting
        and get repaired only when a later slice actually needs them.
        Deterministic: atoms settle in index order; a blocked atom (its
        target still occupied) is resolved by evicting the occupant to the
        nearest free scratch site outside the footprint, and each eviction
        unblocks a placement, so the pass terminates.
        """
        state, stats = self._state, self.stats
        architecture = self._router.architecture
        lattice = architecture.lattice
        penalised = architecture.topology.has_travel_penalties

        footprint: Set[int] = set()
        destinations: Set[int] = set()
        for op in slice_result.operations:
            if isinstance(op, CircuitGateOp):
                footprint.update(op.atoms)
            elif isinstance(op, SwapOp):
                footprint.add(op.atom_a)
                footprint.add(op.atom_b)
            elif isinstance(op, ShuttleOp):
                footprint.add(op.move.atom)
                destinations.add(op.move.destination)
        # Sites whose occupancy the stream relies on; scratch evictions must
        # stay clear of them.
        reserved = {target_sites[atom] for atom in footprint} | destinations
        forecast_owner = {site: atom
                          for atom, site in enumerate(target_sites)}

        def emit_move(atom: int, destination: int,
                      move_away: bool) -> MappedOperation:
            source = state.site_of_atom(atom)
            move = Move(
                atom=atom, source=source, destination=destination,
                source_position=lattice.position(source),
                destination_position=lattice.position(destination),
                is_move_away=move_away,
                travel_distance_um=(lattice.rectangular_row(source)[destination]
                                    if penalised else None),
            )
            state.apply_move(move)
            stats["repair_moves"] += 1
            return self._emit(ShuttleOp(move=move))

        def scratch_site(near: int, pending: Set[int]) -> int:
            row = lattice.rectangular_row(near)
            avoid = reserved | pending
            best = min((site for site in state.free_sites()
                        if site not in avoid),
                       key=lambda site: (row[site], site), default=None)
            if best is None:
                best = min((site for site in state.free_sites()
                            if site not in pending),
                           key=lambda site: (row[site], site), default=None)
            if best is None:  # pragma: no cover - pathological density
                best = min(state.free_sites(),
                           key=lambda site: (row[site], site))
            return best

        movers = [atom for atom in sorted(footprint)
                  if state.site_of_atom(atom) != target_sites[atom]]
        while movers:
            progress = False
            for atom in list(movers):
                target = target_sites[atom]
                if state.site_is_free(target):
                    yield emit_move(atom, target, False)
                    movers.remove(atom)
                    progress = True
            if progress or not movers:
                continue
            # Every remaining target is occupied (permutation cycles, or a
            # stray atom squatting on a mover's home).  Evict the occupant
            # of the first blocked mover's target; the mover settles on the
            # next sweep.
            target = target_sites[movers[0]]
            occupant = state.atom_at_site(target)
            scratch = scratch_site(target, {target_sites[m] for m in movers})
            yield emit_move(occupant, scratch, True)
            if occupant in movers and target_sites[occupant] == scratch:
                movers.remove(occupant)
        # Clear strays off destinations the worker saw as free; a
        # destination owned by a footprint atom in the forecast is vacated
        # by the stream itself before its move needs it.
        for destination in sorted(destinations):
            if forecast_owner.get(destination) is not None:
                continue
            occupant = state.atom_at_site(destination)
            if occupant is not None and occupant not in footprint:
                yield emit_move(occupant, scratch_site(destination, set()),
                                True)

    def _replay_slice(self, slice_result: MappingResult,
                      offset: int) -> Iterator[MappedOperation]:
        """Replay one speculative stream against the true state.

        Yields the surviving operations; returns the deferred gates as
        ``(global_gate_index, gate)`` in stream order (a valid execution
        order of the slice, so dependencies among deferred gates are
        preserved).  ``blocked`` tracks qubits with a deferred gate
        pending: any later gate touching a blocked qubit is deferred too,
        which conservatively preserves per-qubit gate order (stricter than
        the commutation-aware DAG, never weaker).
        """
        state, stats = self._state, self.stats
        blocked: Set[int] = set()
        deferred: List[Tuple[int, Gate]] = []
        for op in slice_result.operations:
            if isinstance(op, CircuitGateOp):
                gate = op.gate
                if any(q in blocked for q in gate.qubits) \
                        or not state.gate_executable(gate):
                    blocked.update(gate.qubits)
                    deferred.append((offset + op.gate_index, gate))
                    stats["gates_deferred"] += 1
                    continue
                atoms = tuple(state.atom_of_qubit(q) for q in gate.qubits)
                sites = tuple(state.site_of_atom(a) for a in atoms)
                yield self._emit(CircuitGateOp(
                    gate=gate, gate_index=offset + op.gate_index,
                    atoms=atoms, sites=sites))
                stats["gates_replayed"] += 1
            elif isinstance(op, SwapOp):
                # A SWAP survives when both recorded atoms still sit in their
                # recorded traps and the qubit is still on its recorded atom
                # (site adjacency is geometric, so it carries over).  The
                # partner qubit is re-read from the true state: an auxiliary
                # atom in the speculative run may hold a real qubit now.
                if (state.atom_of_qubit(op.qubit_a) == op.atom_a
                        and state.site_of_atom(op.atom_a) == op.site_a
                        and state.atom_at_site(op.site_b) == op.atom_b):
                    partner = state.qubit_of_atom(op.atom_b)
                    state.apply_swap_with_atom(op.qubit_a, op.atom_b)
                    yield self._emit(SwapOp(
                        qubit_a=op.qubit_a,
                        qubit_b=partner if partner is not None else -1,
                        atom_a=op.atom_a, atom_b=op.atom_b,
                        site_a=op.site_a, site_b=op.site_b))
                    stats["swaps_replayed"] += 1
                else:
                    stats["swaps_dropped"] += 1
            elif isinstance(op, ShuttleOp):
                move = op.move
                if (state.site_of_atom(move.atom) == move.source
                        and state.site_is_free(move.destination)):
                    state.apply_move(move)
                    yield self._emit(op)
                    stats["moves_replayed"] += 1
                else:
                    stats["moves_dropped"] += 1
        return deferred

    def _seam_round(self, deferred: Sequence[Tuple[int, Gate]]
                    ) -> Iterator[MappedOperation]:
        """Serially re-route one slice's deferred gates against the true state."""
        from .hybrid_mapper import HybridMapper

        router, state, stats = self._router, self._state, self.stats
        seam = QuantumCircuit(self._plan.circuit.num_qubits,
                              name=f"{self._plan.circuit.name}[seam]")
        for _, gate in deferred:
            seam.append(gate)
        mapper = HybridMapper(router.architecture, router._serial_config,
                              router.connectivity)
        with tracing.span("shard.seam_round", num_gates=len(deferred)):
            seam_result = mapper.map(seam, initial_state=state)
        for op in seam_result.operations:
            if isinstance(op, CircuitGateOp):
                op = dataclass_replace(op,
                                       gate_index=deferred[op.gate_index][0])
            yield self._emit(op)
        if self.result is not None:
            _merge_counters(self.result, seam_result)
        _merge_stage_seconds(self.stage_seconds, seam_result.stage_seconds)
        stats["seam_rounds"] += 1
        stats["seam_gates"] += len(deferred)

    # ------------------------------------------------------------------
    def _finalise(self) -> None:
        stats = self.stats
        replayed = stats["gates_replayed"]
        attempted = replayed + stats["gates_deferred"]
        if stats["scheduler"] == "speculative":
            stats["seeded_hit_ratio"] = (replayed / attempted if attempted
                                         else 1.0)
        circuit = self._plan.circuit
        routable = sum(1 for gate in circuit
                       if gate.kind != GateKind.BARRIER)
        stats["seam_gate_ratio"] = (stats["seam_gates"] / routable
                                    if routable else 0.0)
        self.final_qubit_map = self._state.qubit_mapping()
        self.final_atom_map = self._state.atom_mapping()
        self.stage_seconds["partition"] = stats["partition_seconds"]
        self.stage_seconds["stitch"] = stats["stitch_seconds"]
        registry = get_registry()
        registry.counter(
            "repro_shard_runs_total",
            help="Sharded mapping runs completed").inc()
        for counter in ("gates_replayed", "gates_deferred", "seam_rounds",
                        "seam_gates", "seeded_slices", "seeded_fallbacks",
                        "repair_moves"):
            amount = int(stats[counter])
            if amount:
                registry.counter(
                    f"repro_shard_{counter}_total",
                    help=f"Sharded stitcher: {counter.replace('_', ' ')}"
                ).inc(amount)
        for stage in ("partition", "stitch"):
            registry.histogram(
                "repro_shard_stage_seconds",
                help="Wall time per sharded-routing stage",
                labels={"stage": stage}).observe(
                    float(stats[f"{stage}_seconds"]))
        if self.result is not None:
            self.result.verify_complete()
            self.result.final_qubit_map = self.final_qubit_map
            self.result.final_atom_map = self.final_atom_map
            self.result.shard_stats = stats
            self.result.runtime_seconds = time.perf_counter() - self._start_time
        else:
            missing = [index for index, gate in enumerate(circuit)
                       if gate.kind != GateKind.BARRIER
                       and self._coverage[index] != 1]
            if missing:
                raise AssertionError(
                    f"streamed stitch incomplete: gates {missing[:10]} not "
                    "emitted exactly once")


def _merge_counters(result: MappingResult, part: MappingResult) -> None:
    """Aggregate capability-attribution counters from a sub-route.

    Exact in chained mode (every gate routes through exactly one slice
    mapper).  In speculative mode only seam rounds contribute — replayed
    gates have no per-gate attribution (their routing happened in a
    worker against a speculated state), which ``shard_stats`` documents
    via ``gates_replayed``.  ``num_swaps``/``num_moves`` are counted by
    ``append`` and stay exact everywhere.
    """
    result.num_gate_routed += part.num_gate_routed
    result.num_shuttle_routed += part.num_shuttle_routed
    result.num_trivially_executable += part.num_trivially_executable
    result.num_fallback_reroutes += part.num_fallback_reroutes


def _merge_stage_seconds(target: Dict[str, float],
                         source: Dict[str, float]) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0.0) + value
